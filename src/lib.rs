//! Umbrella crate for the ConTutto reproduction workspace.
//!
//! Re-exports the member crates so integration tests and examples can
//! use one import root.

pub use contutto_centaur as centaur;
pub use contutto_core as contutto;
pub use contutto_dmi as dmi;
pub use contutto_memdev as memdev;
pub use contutto_power8 as power8;
pub use contutto_sim as sim;
pub use contutto_storage as storage;
pub use contutto_workloads as workloads;
