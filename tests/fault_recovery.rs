//! Integration: the degradation ladder end to end — typed timeouts,
//! tag quarantine and reclamation, retry escalation to retrain, and
//! deterministic replay of it all under seed sweeps.

use contutto_bench::faults::{run_scenario, CampaignConfig, Outcome, Scenario};
use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::protocol::LinkEndpointConfig;
use contutto_system::dmi::{BitErrorInjector, CacheLine, CommandOp, DmiError};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel, RetryPolicy};
use contutto_system::sim::SimTime;

fn clean_contutto() -> DmiChannel {
    DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    )
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        op_timeout: SimTime::from_us(20),
        max_attempts: 3,
        base_backoff: SimTime::from_us(4),
        max_retrains: 1,
    }
}

// ---------------------------------------------------------- satellite 1

#[test]
fn blocking_read_preserves_other_tags_completions() {
    // Submit A, then block on B via read_line_blocking. A's completion
    // must survive in the queue — delivered exactly once, with data.
    let mut ch = clean_contutto();
    let line_a = CacheLine::patterned(77);
    ch.write_line_blocking(0, line_a).expect("write A");
    let line_b = CacheLine::patterned(88);
    ch.write_line_blocking(128, line_b).expect("write B");

    let tag_a = ch.submit(CommandOp::Read { addr: 0 }).expect("submit A");
    let (got_b, _) = ch.read_line_blocking(128).expect("read B");
    assert_eq!(got_b, line_b);

    // A completed while we waited on B (same memory, same latency) —
    // it must still be queued, exactly once.
    let drained = ch.take_completions();
    let a_completions: Vec<_> = drained.iter().filter(|c| c.tag == tag_a).collect();
    assert_eq!(a_completions.len(), 1, "A delivered exactly once");
    assert_eq!(a_completions[0].data, Some(line_a), "A's data intact");
    assert_eq!(ch.tags_available(), 32);
}

#[test]
fn interleaved_blocking_reads_both_correct() {
    // Two in-flight tags, waited on in the opposite order of
    // submission: both reads must return their own line.
    let mut ch = clean_contutto();
    let line0 = CacheLine::patterned(1);
    let line1 = CacheLine::patterned(2);
    ch.write_line_blocking(0, line0).expect("write 0");
    ch.write_line_blocking(128, line1).expect("write 1");

    let tag0 = ch.submit(CommandOp::Read { addr: 0 }).expect("submit 0");
    let (got1, _) = ch.read_line_blocking(128).expect("read 1");
    assert_eq!(got1, line1);
    let deadline = ch.now() + SimTime::from_ms(1);
    let c0 = ch.next_completion(deadline).expect("0 completes");
    assert_eq!(c0.tag, tag0);
    assert_eq!(c0.data, Some(line0));
}

// ---------------------------------------------------------- satellite 2

#[test]
fn next_completion_deadline_is_inclusive() {
    // Measure the exact completion time of a read, then replay the
    // identical schedule in a fresh channel with the deadline set to
    // exactly that instant: the completion must still be delivered.
    let exact = {
        let mut ch = clean_contutto();
        ch.submit(CommandOp::Read { addr: 0 }).expect("submit");
        let c = ch.next_completion(SimTime::from_ms(1)).expect("completes");
        c.completed_at
    };
    let mut ch = clean_contutto();
    ch.submit(CommandOp::Read { addr: 0 }).expect("submit");
    let c = ch.next_completion(exact);
    assert!(
        c.is_some(),
        "completion arriving exactly at the deadline is delivered"
    );
    // One slot earlier must miss it.
    let mut ch = clean_contutto();
    ch.submit(CommandOp::Read { addr: 0 }).expect("submit");
    assert!(ch.next_completion(exact - SimTime::from_ns(2)).is_none());
}

// ---------------------------------------------------------- satellite 3

#[test]
fn invalid_endpoint_configs_are_typed_errors() {
    let mut cfg = LinkEndpointConfig::host();
    cfg.ack_timeout_frames = 0;
    assert!(matches!(cfg.validate(), Err(DmiError::Config(_))));

    let mut cfg = LinkEndpointConfig::host();
    cfg.replay_buffer_frames = cfg.ack_timeout_frames as usize;
    assert!(matches!(cfg.validate(), Err(DmiError::Config(_))));

    let mut ch_cfg = ChannelConfig::contutto();
    ch_cfg.buffer_endpoint.ack_timeout_frames = 0;
    let built = DmiChannel::try_new(
        ch_cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    assert!(matches!(built, Err(DmiError::Config(_))));
}

// ------------------------------------------------- the ladder, end to end

#[test]
fn dead_link_times_out_typed_and_recovers_tags() {
    let mut cfg = ChannelConfig::contutto();
    cfg.down_errors = BitErrorInjector::bernoulli(1.0, 9);
    cfg.up_errors = BitErrorInjector::bernoulli(1.0, 10);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    ch.set_retry_policy(fast_policy());

    let err = ch.read_line_blocking(0).expect_err("link is dead");
    assert!(matches!(err, DmiError::Timeout { .. }), "{err}");
    assert!(ch.link_retrains() >= 1, "ladder escalated to retrain");
    assert!(ch.retries_scheduled() >= 1, "ladder retried first");

    // Quarantined tags age back into the pool within 2x the op
    // timeout even though no response will ever arrive.
    ch.run_until(ch.now() + fast_policy().op_timeout * 2 + SimTime::from_us(1));
    assert_eq!(ch.quarantined_tags(), 0, "quarantine drained");
    assert_eq!(ch.tags_available(), 32, "no tag leaked");

    // Heal the link: traffic flows again on the same channel, proving
    // the reclaimed tags are reusable.
    ch.set_down_injector(BitErrorInjector::never());
    ch.set_up_injector(BitErrorInjector::never());
    let line = CacheLine::patterned(5);
    ch.write_line_blocking(0, line).expect("healed write");
    let (back, _) = ch.read_line_blocking(0).expect("healed read");
    assert_eq!(back, line);
    assert_eq!(ch.tags_available(), 32);
}

#[test]
fn timeout_retry_ladder_counts_and_recovers() {
    // A 30 us downstream blackout outlasts the 20 us op timeout: the
    // first attempt is abandoned (tag quarantined), the retried
    // attempt succeeds after the window, and the late response to the
    // abandoned command releases its quarantined tag.
    let mut cfg = ChannelConfig::contutto();
    cfg.down_errors = BitErrorInjector::at_frames((200..15_200).collect());
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    ch.set_retry_policy(fast_policy());

    // Several lines so traffic is in flight when the window opens.
    for i in 0..4u64 {
        let line = CacheLine::patterned(42 + i);
        ch.write_line_blocking(i * 128, line)
            .expect("write retried");
        let (back, _) = ch.read_line_blocking(i * 128).expect("read");
        assert_eq!(back, line, "retried op {i} is byte-identical");
    }
    assert!(ch.retries_scheduled() >= 1, "a retry was scheduled");
    assert_eq!(ch.link_retrains(), 0, "retry alone sufficed");
    assert!(ch.tags_reclaimed() >= 1, "quarantined tag reclaimed");
    ch.run_until(ch.now() + fast_policy().op_timeout * 2 + SimTime::from_us(1));
    assert_eq!(ch.tags_available(), 32);
}

// ---------------------------------------------------------- satellite 4

#[test]
fn ladder_seed_sweep_is_byte_identical() {
    for seed in 1..=5u64 {
        let a = run_scenario(Scenario::RetrainLadder, seed, 3);
        let b = run_scenario(Scenario::RetrainLadder, seed, 3);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}");
        assert_eq!(a.outcome, b.outcome, "seed {seed}");
        assert_eq!(a.outcome, Outcome::Degraded, "seed {seed}");
        assert!(a.retrains >= 1, "seed {seed} escalated to retrain");
        assert!(a.reclaimed >= 1, "seed {seed} reclaimed tags");
        assert_eq!(a.tags_free_after, 32, "seed {seed} leaked no tags");
    }
}

#[test]
fn scrub_seed_sweep_is_byte_identical() {
    // Media-RAS determinism: with patrol scrub enabled, the same seed
    // must replay to a byte-identical trace fingerprint — the scrub
    // scheduler, fault injector and ECC pipeline contain no hidden
    // nondeterminism. Eight seeds, each run twice.
    use contutto_bench::media;
    for seed in 1..=8u64 {
        let scenario = media::Scenario {
            media: media::Media::Dram,
            scrub: true,
        };
        let a = media::run_scenario(scenario, seed, 8);
        let b = media::run_scenario(scenario, seed, 8);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}");
        assert_eq!(a.outcome, b.outcome, "seed {seed}");
        assert_eq!(a.corrected, b.corrected, "seed {seed}");
        assert_eq!(a.uncorrectable, b.uncorrectable, "seed {seed}");
        assert_eq!(a.scrub_passes, b.scrub_passes, "seed {seed}");
        assert!(!a.is_violation(), "seed {seed}: {}", a.outcome);
        assert!(a.scrub_passes > 0, "seed {seed}: scrub must run");
    }
}

#[test]
fn campaign_smoke_is_deterministic_and_violation_free() {
    let cfg = CampaignConfig::smoke();
    let runs_a = contutto_bench::faults::run_campaign(&cfg);
    let runs_b = contutto_bench::faults::run_campaign(&cfg);
    assert!(runs_a.violations().is_empty());
    let fps = |r: &contutto_bench::faults::CampaignReport| {
        r.runs.iter().map(|x| x.fingerprint).collect::<Vec<_>>()
    };
    assert_eq!(fps(&runs_a), fps(&runs_b), "campaign replays identically");
    assert_eq!(runs_a.render_table(), runs_b.render_table());
}

// ---------------------------------------------------------- PR-4: channel failover

#[test]
fn budget_exhaustion_without_spare_is_contained_not_fatal() {
    // A noisy channel blows the FSP error budget mid-workload with no
    // redundancy configured: the verdict must be contained — typed
    // errors on every subsequent access — never a panic.
    use contutto_system::power8::firmware::layouts;
    use contutto_system::power8::system::{Power8System, SystemError};
    use contutto_system::power8::FspError;

    let mut sys = Power8System::boot(
        layouts::failover_pair(
            contutto_system::contutto::ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        ),
        13,
    )
    .unwrap();
    let base = sys
        .memory_map()
        .regions()
        .iter()
        .find(|r| r.channel == 2)
        .unwrap()
        .base;
    let written: Vec<_> = (0..12u64)
        .map(|i| (base + i * 128, CacheLine::patterned(300 + i)))
        .collect();
    for (addr, line) in &written {
        sys.store_line(*addr, *line).unwrap();
    }
    // Rot four lines in place: each demand read of one is an
    // unrecovered machine check charged against the channel's budget
    // of 3, so the fourth read deconfigures the slot.
    for i in 0..4u64 {
        let ch = sys.channel_mut(2).unwrap();
        let now = ch.channel.now();
        let (bytes, _) = ch
            .channel
            .buffer_mut()
            .sideband_read_line(now, i * 128)
            .unwrap();
        ch.channel
            .buffer_mut()
            .sideband_write_line(i * 128, &bytes, true);
    }
    let mut poisoned = 0;
    let mut deconfigured = 0;
    for (addr, _) in &written {
        match sys.load_line(*addr) {
            Ok(_) => {}
            Err(SystemError::Dmi(DmiError::Poisoned { .. })) => poisoned += 1,
            Err(SystemError::Fsp(FspError::ChannelDeconfigured { channel: 2 })) => {
                deconfigured += 1
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(poisoned, 4, "every rotted read surfaced as typed poison");
    assert_eq!(
        sys.fsp().deconfigured_channels(),
        &[2],
        "budget exhaustion deconfigured the victim"
    );
    assert!(deconfigured > 0, "later accesses see the typed FSP verdict");
    // The verdict is sticky and still typed.
    assert!(matches!(
        sys.load_line(base),
        Err(SystemError::Fsp(FspError::ChannelDeconfigured {
            channel: 2
        }))
    ));
}

#[test]
fn budget_exhaustion_with_spare_loses_no_line() {
    // The same noisy channel, but a hot spare is configured: the FSP
    // verdict triggers quiesce → evacuate → remap, and afterwards every
    // line ever written is either byte-identical or explicit poison.
    use contutto_system::power8::failover::FailoverMode;
    use contutto_system::power8::firmware::layouts;
    use contutto_system::power8::system::{Power8System, SystemError};

    let mut sys = Power8System::boot_with_failover(
        layouts::failover_pair(
            contutto_system::contutto::ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        ),
        13,
        FailoverMode::Spare { spare: 4 },
    )
    .unwrap();
    let base = sys
        .memory_map()
        .regions()
        .iter()
        .find(|r| r.channel == 2)
        .unwrap()
        .base;
    let written: Vec<_> = (0..12u64)
        .map(|i| (base + i * 128, CacheLine::patterned(600 + i)))
        .collect();
    for (addr, line) in &written {
        sys.store_line(*addr, *line).unwrap();
    }
    for i in 0..4u64 {
        let ch = sys.channel_mut(2).unwrap();
        let now = ch.channel.now();
        let (bytes, _) = ch
            .channel
            .buffer_mut()
            .sideband_read_line(now, i * 128)
            .unwrap();
        ch.channel
            .buffer_mut()
            .sideband_write_line(i * 128, &bytes, true);
    }
    // The read pass blows the budget mid-stream; accesses after the
    // failover are served through the spare (demand-pulled ahead of
    // the copy frontier where needed).
    for (addr, _) in &written {
        let _ = sys.load_line(*addr);
    }
    assert_eq!(sys.fsp().deconfigured_channels(), &[2]);
    assert_eq!(sys.failover_stats().failovers, 1);
    sys.complete_migration();
    assert_eq!(sys.migration_backlog(), 0);
    let mut clean = 0;
    let mut poisoned = 0;
    for (addr, line) in &written {
        match sys.load_line(*addr) {
            Ok((back, _)) => {
                assert_eq!(back, *line, "line {addr:#x} must be byte-identical");
                clean += 1;
            }
            Err(SystemError::Dmi(DmiError::Poisoned { .. })) => poisoned += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(clean, 8, "every untouched line survived byte-identical");
    assert_eq!(poisoned, 4, "rotted lines travelled as explicit poison");
    assert!(
        !sys.fsp().is_deconfigured(4),
        "inherited poison must not charge the spare"
    );
}

#[test]
fn failover_campaign_smoke_is_deterministic_and_violation_free() {
    use contutto_bench::failover;
    let cfg = failover::CampaignConfig::smoke();
    let a = failover::run_campaign(&cfg);
    let b = failover::run_campaign(&cfg);
    assert!(
        a.violations().is_empty(),
        "{}",
        a.violations()
            .iter()
            .map(|r| format!("{} seed {}: {}", r.scenario.name(), r.seed, r.outcome))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let fps =
        |r: &failover::CampaignReport| r.runs.iter().map(|x| x.fingerprint).collect::<Vec<_>>();
    assert_eq!(fps(&a), fps(&b), "campaign replays identically");
    assert_eq!(a.render_table(), b.render_table());
}
