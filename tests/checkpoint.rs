//! Integration: the deterministic checkpoint/restore contract.
//!
//! For every (seed, phase) cell the matrix runs the same workload
//! twice: once straight through, and once cut at the phase's snapshot
//! point, restored into a freshly booted system, and continued. The
//! two legs must agree on every observable — request results, the
//! trace fingerprint, and the full metrics registry (minus the
//! `system.snapshot.*` observer namespace, which exists precisely to
//! tell the legs apart).
//!
//! The four phases pin the snapshot point to the hairiest moments the
//! simulator knows: steady state with loads in flight, a fault ladder
//! mid-climb (error budget partially charged, poison planted), an
//! evacuation mid-copy (migration backlog live), and the powered-off
//! window between an EPOW power cut and the reboot.

use contutto_system::contutto::{ContuttoConfig, MemoryKind, MemoryPopulation};
use contutto_system::dmi::CacheLine;
use contutto_system::power8::failover::FailoverMode;
use contutto_system::power8::firmware::layouts;
use contutto_system::power8::system::{Power8System, ReqId};
use contutto_system::sim::SimTime;

const SEEDS: [u64; 8] = [3, 5, 7, 9, 11, 13, 17, 19];
const TRACE_CAP: usize = 1 << 10;

/// A small NVDIMM population so EPOW save/restore sweeps stay fast.
fn nvdimm_small() -> MemoryPopulation {
    MemoryPopulation {
        kind: MemoryKind::NvdimmN,
        dimm_capacity: 512 << 10,
        dimms: 2,
    }
}

/// Rendered metrics minus the `system.snapshot.*` namespace.
fn metrics_digest(sys: &Power8System) -> String {
    sys.metrics()
        .render()
        .lines()
        .filter(|l| !l.contains("system.snapshot."))
        .collect::<Vec<_>>()
        .join("\n")
}

/// One matrix cell: run `prefix` then `suffix` straight; separately
/// run `prefix`, snapshot, restore into a fresh boot, run `suffix`.
/// Both legs must produce identical digests, fingerprints and
/// metrics.
fn double_run(
    seed: u64,
    boot: &dyn Fn(u64) -> Power8System,
    prefix: &dyn Fn(&mut Power8System, u64) -> Vec<ReqId>,
    suffix: &dyn Fn(&mut Power8System, u64, &[ReqId]) -> String,
) {
    // Straight leg.
    let mut straight = boot(seed);
    straight.enable_tracing(TRACE_CAP);
    let ids = prefix(&mut straight, seed);
    let straight_digest = suffix(&mut straight, seed, &ids);

    // Checkpointed leg: prefix on one system, suffix on another.
    let mut source = boot(seed);
    source.enable_tracing(TRACE_CAP);
    let source_ids = prefix(&mut source, seed);
    assert_eq!(ids, source_ids, "seed {seed}: prefix must be deterministic");
    let image = source.snapshot();
    drop(source);

    let mut resumed = boot(seed);
    resumed
        .restore(&image)
        .unwrap_or_else(|e| panic!("seed {seed}: restore failed: {e}"));
    assert!(resumed.tracer().is_enabled(), "tracer survives the image");
    let resumed_digest = suffix(&mut resumed, seed, &ids);

    assert_eq!(
        straight_digest, resumed_digest,
        "seed {seed}: results diverge after restore"
    );
    assert_eq!(
        straight.tracer().fingerprint(),
        resumed.tracer().fingerprint(),
        "seed {seed}: trace fingerprints diverge after restore"
    );
    assert_eq!(
        metrics_digest(&straight),
        metrics_digest(&resumed),
        "seed {seed}: metrics diverge after restore"
    );
}

/// First line-granular physical addresses routed to `slot`.
fn slot_base(sys: &Power8System, slot: usize) -> u64 {
    sys.memory_map()
        .regions()
        .iter()
        .find(|r| r.channel == slot)
        .expect("slot backs a region")
        .base
}

/// Plants poison on channel 2's line `idx` via the sideband path.
fn poison_line(sys: &mut Power8System, idx: u64) {
    let ch = sys.channel_mut(2).expect("channel 2 is live");
    let now = ch.channel.now();
    let (bytes, _) = ch
        .channel
        .buffer_mut()
        .sideband_read_line(now, idx * 128)
        .expect("sideband read");
    assert!(ch
        .channel
        .buffer_mut()
        .sideband_write_line(idx * 128, &bytes, true));
}

// --------------------------------------------------------- mid-steady

#[test]
fn matrix_mid_steady() {
    let boot = |seed| {
        Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            seed,
        )
        .expect("boots")
    };
    let prefix = |sys: &mut Power8System, seed: u64| {
        for i in 0..6u64 {
            sys.store_line(0x10_0000 + i * 128, CacheLine::patterned(seed * 31 + i))
                .unwrap();
        }
        // Leave four pipelined loads in flight across the cut.
        (0..4u64)
            .map(|i| sys.submit_load(0x10_0000 + i * 128).unwrap())
            .collect()
    };
    let suffix = |sys: &mut Power8System, seed: u64, ids: &[ReqId]| {
        let mut digest = String::new();
        for &id in ids {
            digest.push_str(&format!("{:?}\n", sys.wait_req(id)));
        }
        for i in 0..4u64 {
            let t = sys
                .store_line(0x20_0000 + i * 128, CacheLine::patterned(seed + 100 + i))
                .unwrap();
            digest.push_str(&format!("store@{t}\n"));
        }
        for i in 0..4u64 {
            digest.push_str(&format!("{:?}\n", sys.load_line(0x20_0000 + i * 128)));
        }
        digest
    };
    for seed in SEEDS {
        double_run(seed, &boot, &prefix, &suffix);
    }
}

// ---------------------------------------------------------- mid-fault

#[test]
fn matrix_mid_fault() {
    let boot = |seed| {
        Power8System::boot_with_failover(
            layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            seed,
            FailoverMode::Spare { spare: 4 },
        )
        .expect("boots")
    };
    let prefix = |sys: &mut Power8System, seed: u64| {
        let base = slot_base(sys, 2);
        for i in 0..8u64 {
            sys.store_line(base + i * 128, CacheLine::patterned(seed * 7 + i))
                .unwrap();
        }
        // Two poisoned reads: the error budget (3) is part-charged at
        // the cut, the ladder mid-climb but the channel still alive.
        poison_line(sys, 0);
        poison_line(sys, 1);
        let _ = sys.load_line(base);
        let _ = sys.load_line(base + 128);
        Vec::new()
    };
    let suffix = |sys: &mut Power8System, _seed: u64, _ids: &[ReqId]| {
        let base = slot_base(sys, 2);
        // The third strike deconfigures channel 2 → failover → spare.
        poison_line(sys, 2);
        let mut digest = String::new();
        for i in 0..8u64 {
            digest.push_str(&format!("{:?}\n", sys.load_line(base + i * 128)));
        }
        sys.complete_migration();
        for i in 0..8u64 {
            digest.push_str(&format!("{:?}\n", sys.load_line(base + i * 128)));
        }
        digest.push_str(&format!(
            "deconf={:?} stats={:?}\n",
            sys.fsp().deconfigured_channels(),
            sys.failover_stats()
        ));
        digest
    };
    for seed in SEEDS {
        double_run(seed, &boot, &prefix, &suffix);
    }
}

// ----------------------------------------------------- mid-evacuation

#[test]
fn matrix_mid_evacuation() {
    let boot = |seed| {
        Power8System::boot_with_failover(
            layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            seed,
            FailoverMode::Spare { spare: 4 },
        )
        .expect("boots")
    };
    let prefix = |sys: &mut Power8System, seed: u64| {
        let base = slot_base(sys, 2);
        for i in 0..12u64 {
            sys.store_line(base + i * 128, CacheLine::patterned(seed * 13 + i))
                .unwrap();
        }
        // Concurrent maintenance pulls the card; the snapshot lands
        // with the evacuation's backlog still live.
        sys.maintenance_pull(2).unwrap();
        assert!(sys.migration_backlog() > 0, "cut must land mid-copy");
        Vec::new()
    };
    let suffix = |sys: &mut Power8System, _seed: u64, _ids: &[ReqId]| {
        // The pull already rebound channel 2's regions onto the spare.
        let base = slot_base(sys, 4);
        let mut digest = String::new();
        // Demand accesses pull lines ahead of the copy frontier.
        for i in 0..4u64 {
            digest.push_str(&format!("{:?}\n", sys.load_line(base + i * 128)));
        }
        sys.complete_migration();
        for i in 0..12u64 {
            digest.push_str(&format!("{:?}\n", sys.load_line(base + i * 128)));
        }
        digest.push_str(&format!(
            "backlog={} stats={:?}\n",
            sys.migration_backlog(),
            sys.failover_stats()
        ));
        digest
    };
    for seed in SEEDS {
        double_run(seed, &boot, &prefix, &suffix);
    }
}

// ------------------------------------------------------- post-EPOW

#[test]
fn matrix_post_epow() {
    let boot = |seed| {
        Power8System::boot(
            layouts::one_contutto_six_cdimm(ContuttoConfig::base(), nvdimm_small()),
            seed,
        )
        .expect("boots")
    };
    let prefix = |sys: &mut Power8System, seed: u64| {
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        for i in 0..4u64 {
            sys.store_line(nv_base + i * 128, CacheLine::patterned(seed + i))
                .unwrap();
        }
        sys.store_line(0x10_0000, CacheLine::patterned(seed ^ 0xDEAD))
            .unwrap();
        // EPOW cascade, then the cut: the snapshot is taken in the
        // dark window with the machine off and saves on the media.
        let epow = sys.epow();
        sys.power_cut(epow.done_at + SimTime::from_us(1));
        assert!(!sys.powered(), "cut must land powered off");
        Vec::new()
    };
    let suffix = |sys: &mut Power8System, _seed: u64, _ids: &[ReqId]| {
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        let at = sys.now() + SimTime::from_ms(50);
        let report = sys.reboot(at).expect("reboots");
        let mut digest = format!("{report:?}\n");
        for i in 0..4u64 {
            digest.push_str(&format!("{:?}\n", sys.load_line(nv_base + i * 128)));
        }
        digest.push_str(&format!("{:?}\n", sys.load_line(0x10_0000)));
        digest
    };
    for seed in SEEDS {
        double_run(seed, &boot, &prefix, &suffix);
    }
}
