//! Integration: the DMI replay machinery under injected faults, end
//! to end through buffer models — data integrity is the invariant.

use contutto_system::centaur::{Centaur, CentaurConfig};
use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::{BitErrorInjector, CacheLine, DmiError};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};

fn noisy_contutto(down_p: f64, up_p: f64, seed: u64) -> DmiChannel {
    let mut cfg = ChannelConfig::contutto();
    if down_p > 0.0 {
        cfg.down_errors = BitErrorInjector::bernoulli(down_p, seed);
    }
    if up_p > 0.0 {
        cfg.up_errors = BitErrorInjector::bernoulli(up_p, seed.wrapping_add(1));
    }
    DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    )
}

#[test]
fn integrity_under_bidirectional_errors_contutto() {
    // The freeze workaround is on this path (buffer side).
    let mut ch = noisy_contutto(0.02, 0.02, 424242);
    for i in 0..30u64 {
        let line = CacheLine::patterned(i * 31 + 7);
        ch.write_line_blocking(i * 128, line).expect("write");
        let (back, _) = ch.read_line_blocking(i * 128).expect("read");
        assert_eq!(back, line, "iteration {i}");
    }
    let s = ch.host_stats();
    assert!(s.replays_triggered > 0, "errors must have caused replays");
}

#[test]
fn integrity_under_errors_centaur() {
    let mut cfg = ChannelConfig::centaur();
    cfg.down_errors = BitErrorInjector::bernoulli(0.02, 7);
    cfg.up_errors = BitErrorInjector::bernoulli(0.02, 8);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
    );
    for i in 0..30u64 {
        let line = CacheLine::patterned(i);
        ch.write_line_blocking(0x8000 + i * 128, line)
            .expect("write");
        let (back, _) = ch.read_line_blocking(0x8000 + i * 128).expect("read");
        assert_eq!(back, line);
    }
}

#[test]
fn noisy_channel_is_slower_but_correct() {
    let run = |noise: f64, seed: u64| {
        let mut ch = noisy_contutto(noise, 0.0, seed);
        for i in 0..20u64 {
            ch.write_line_blocking(i * 128, CacheLine::patterned(i))
                .expect("write");
        }
        ch.now()
    };
    let clean = run(0.0, 1);
    let noisy = run(0.03, 1);
    assert!(noisy > clean, "replays cost time: {noisy} !> {clean}");
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = || {
        let mut ch = noisy_contutto(0.02, 0.02, 99);
        for i in 0..10u64 {
            ch.write_line_blocking(i * 128, CacheLine::patterned(i))
                .expect("write");
        }
        (ch.now(), ch.host_stats().clone())
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2, "bit-reproducible timing");
    assert_eq!(s1, s2, "bit-reproducible protocol stats");
}

#[test]
fn tag_exhaustion_reports_not_hangs() {
    let mut ch = noisy_contutto(0.0, 0.0, 1);
    let mut acquired = 0;
    loop {
        match ch.submit(contutto_system::dmi::CommandOp::Read { addr: 0 }) {
            Ok(_) => acquired += 1,
            Err(DmiError::NoFreeTag) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(acquired, 32, "exactly the paper's 32 tags");
}

#[test]
fn randomized_ops_against_reference_model() {
    // Random mixed read/write traffic with a windowed submission
    // pattern, on a noisy channel, checked against a flat reference
    // model: the strongest end-to-end integrity property we can state.
    use contutto_system::dmi::CommandOp;
    use std::collections::HashMap;

    let mut ch = noisy_contutto(0.01, 0.01, 31337);
    let mut reference: HashMap<u64, CacheLine> = HashMap::new();
    let mut lcg: u64 = 0xACE1;
    let mut next = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg
    };
    for op in 0..120u64 {
        let r = next();
        let addr = (r % 64) * 128; // 64-line working set
        if r & (1 << 40) != 0 {
            let line = CacheLine::patterned(op);
            ch.write_line_blocking(addr, line).expect("write");
            reference.insert(addr, line);
        } else {
            let (got, _) = ch.read_line_blocking(addr).expect("read");
            let want = reference.get(&addr).copied().unwrap_or(CacheLine::ZERO);
            assert_eq!(got, want, "op {op} at {addr:#x}");
        }
    }
    // Interleaved window: fire 16 reads at once over written lines and
    // match them back by tag.
    let mut expected_by_tag = HashMap::new();
    let addrs: Vec<u64> = reference.keys().copied().take(16).collect();
    for addr in &addrs {
        let tag = ch.submit(CommandOp::Read { addr: *addr }).expect("submit");
        expected_by_tag.insert(tag, reference[addr]);
    }
    let deadline = ch.now() + contutto_system::sim::SimTime::from_ms(10);
    for _ in 0..addrs.len() {
        let c = ch.next_completion(deadline).expect("completion");
        let want = expected_by_tag.remove(&c.tag).expect("our tag");
        assert_eq!(c.data.expect("read data"), want);
    }
}

#[test]
fn burst_errors_on_consecutive_frames_recover() {
    // Five consecutive corrupted downstream frames — the replay must
    // rewind far enough (FRTL-based) to recover all of them.
    let mut cfg = ChannelConfig::contutto();
    cfg.down_errors = BitErrorInjector::at_frames(vec![40, 41, 42, 43, 44]);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    for i in 0..20u64 {
        let line = CacheLine::patterned(i + 100);
        ch.write_line_blocking(i * 128, line).expect("write");
        let (back, _) = ch.read_line_blocking(i * 128).expect("read");
        assert_eq!(back, line);
    }
}

#[test]
fn burst_plus_bernoulli_noise_on_both_directions_recover() {
    // A multi-frame burst on one wire while the other wire carries
    // continuous Bernoulli noise — replays fire in both directions at
    // once and data must still arrive intact. Run both assignments of
    // burst/noise to the two wires.
    let scenarios = [
        (
            BitErrorInjector::at_frames(vec![40, 41, 42, 43, 44]),
            BitErrorInjector::bernoulli(0.03, 555),
        ),
        (
            BitErrorInjector::bernoulli(0.03, 777),
            BitErrorInjector::at_frames(vec![60, 61, 62, 63]),
        ),
    ];
    for (down, up) in scenarios {
        let mut cfg = ChannelConfig::contutto();
        cfg.down_errors = down;
        cfg.up_errors = up;
        let mut ch = DmiChannel::new(
            cfg,
            Box::new(ConTutto::new(
                ContuttoConfig::base(),
                MemoryPopulation::dram_8gb(),
            )),
        );
        for i in 0..20u64 {
            let line = CacheLine::patterned(i * 13 + 5);
            ch.write_line_blocking(i * 128, line).expect("write");
            let (back, _) = ch.read_line_blocking(i * 128).expect("read");
            assert_eq!(back, line, "iteration {i}");
        }
        let m = ch.metrics();
        assert!(
            m.counter("dmi.host.replays_triggered") + m.counter("dmi.buffer.replays_triggered") > 0,
            "errors on both wires must have caused replays"
        );
    }
}

#[test]
fn trace_captures_every_replay_crc_and_tag_event() {
    // The burst scenario again, now with the tracer on: every replay
    // trigger, CRC failure and tag lifecycle event the counters report
    // must appear in the trace, one for one.
    use contutto_system::sim::TraceEvent;

    let mut cfg = ChannelConfig::contutto();
    cfg.down_errors = BitErrorInjector::at_frames(vec![40, 41, 42, 43, 44]);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    let tracer = ch.enable_tracing(1 << 16);
    let commands = 40; // 20 writes + 20 reads
    for i in 0..20u64 {
        let line = CacheLine::patterned(i + 100);
        ch.write_line_blocking(i * 128, line).expect("write");
        let (back, _) = ch.read_line_blocking(i * 128).expect("read");
        assert_eq!(back, line);
    }
    assert_eq!(tracer.dropped(), 0, "ring must retain the whole run");

    let m = ch.metrics();
    let traced_crc = tracer.count_matching(|e| matches!(e, TraceEvent::CrcFailure { .. })) as u64;
    assert!(traced_crc > 0, "the burst must surface CRC failures");
    assert_eq!(
        traced_crc,
        m.counter("dmi.host.crc_errors") + m.counter("dmi.buffer.crc_errors"),
        "every CRC failure is traced"
    );

    let traced_triggers =
        tracer.count_matching(|e| matches!(e, TraceEvent::ReplayTrigger { .. })) as u64;
    assert!(traced_triggers > 0, "the burst must trigger replays");
    assert_eq!(
        traced_triggers,
        m.counter("dmi.host.replays_triggered") + m.counter("dmi.buffer.replays_triggered"),
        "every replay trigger is traced"
    );
    let traced_rewinds =
        tracer.count_matching(|e| matches!(e, TraceEvent::ReplayRewind { .. })) as u64;
    assert_eq!(traced_rewinds, traced_triggers, "each trigger rewinds once");

    let acquires = tracer.count_matching(|e| matches!(e, TraceEvent::TagAcquire { .. }));
    let releases = tracer.count_matching(|e| matches!(e, TraceEvent::TagRelease { .. }));
    assert_eq!(acquires, commands, "every command's tag acquire is traced");
    assert_eq!(releases, commands, "every command's tag release is traced");

    let replayed_tx =
        tracer.count_matching(|e| matches!(e, TraceEvent::FrameTx { replayed: true, .. })) as u64;
    assert!(replayed_tx > 0, "replayed frames are marked in the trace");
}

#[test]
fn same_seed_runs_produce_byte_identical_traces_and_metrics() {
    let run = || {
        let mut ch = noisy_contutto(0.02, 0.02, 2024);
        let tracer = ch.enable_tracing(4096);
        for i in 0..10u64 {
            let line = CacheLine::patterned(i);
            ch.write_line_blocking(i * 128, line).expect("write");
            let (back, _) = ch.read_line_blocking(i * 128).expect("read");
            assert_eq!(back, line);
        }
        (tracer.render(), ch.metrics().render(), tracer.fingerprint())
    };
    let (trace_a, metrics_a, fp_a) = run();
    let (trace_b, metrics_b, fp_b) = run();
    assert_eq!(trace_a, trace_b, "byte-identical trace render");
    assert_eq!(metrics_a, metrics_b, "byte-identical metrics snapshot");
    assert_eq!(fp_a, fp_b, "identical trace fingerprints");
    // The trace is non-trivial: it carries frame traffic and stamps.
    assert!(trace_a.lines().count() > 100, "trace has real content");
}
