//! Integration: the DMI replay machinery under injected faults, end
//! to end through buffer models — data integrity is the invariant.

use contutto_system::centaur::{Centaur, CentaurConfig};
use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::{BitErrorInjector, CacheLine, DmiError};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};

fn noisy_contutto(down_p: f64, up_p: f64, seed: u64) -> DmiChannel {
    let mut cfg = ChannelConfig::contutto();
    if down_p > 0.0 {
        cfg.down_errors = BitErrorInjector::bernoulli(down_p, seed);
    }
    if up_p > 0.0 {
        cfg.up_errors = BitErrorInjector::bernoulli(up_p, seed.wrapping_add(1));
    }
    DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb())),
    )
}

#[test]
fn integrity_under_bidirectional_errors_contutto() {
    // The freeze workaround is on this path (buffer side).
    let mut ch = noisy_contutto(0.02, 0.02, 424242);
    for i in 0..30u64 {
        let line = CacheLine::patterned(i * 31 + 7);
        ch.write_line_blocking(i * 128, line).expect("write");
        let (back, _) = ch.read_line_blocking(i * 128).expect("read");
        assert_eq!(back, line, "iteration {i}");
    }
    let s = ch.host_stats();
    assert!(s.replays_triggered > 0, "errors must have caused replays");
}

#[test]
fn integrity_under_errors_centaur() {
    let mut cfg = ChannelConfig::centaur();
    cfg.down_errors = BitErrorInjector::bernoulli(0.02, 7);
    cfg.up_errors = BitErrorInjector::bernoulli(0.02, 8);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
    );
    for i in 0..30u64 {
        let line = CacheLine::patterned(i);
        ch.write_line_blocking(0x8000 + i * 128, line).expect("write");
        let (back, _) = ch.read_line_blocking(0x8000 + i * 128).expect("read");
        assert_eq!(back, line);
    }
}

#[test]
fn noisy_channel_is_slower_but_correct() {
    let run = |noise: f64, seed: u64| {
        let mut ch = noisy_contutto(noise, 0.0, seed);
        for i in 0..20u64 {
            ch.write_line_blocking(i * 128, CacheLine::patterned(i))
                .expect("write");
        }
        ch.now()
    };
    let clean = run(0.0, 1);
    let noisy = run(0.03, 1);
    assert!(noisy > clean, "replays cost time: {noisy} !> {clean}");
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = || {
        let mut ch = noisy_contutto(0.02, 0.02, 99);
        for i in 0..10u64 {
            ch.write_line_blocking(i * 128, CacheLine::patterned(i))
                .expect("write");
        }
        (ch.now(), ch.host_stats().clone())
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2, "bit-reproducible timing");
    assert_eq!(s1, s2, "bit-reproducible protocol stats");
}

#[test]
fn tag_exhaustion_reports_not_hangs() {
    let mut ch = noisy_contutto(0.0, 0.0, 1);
    let mut acquired = 0;
    loop {
        match ch.submit(contutto_system::dmi::CommandOp::Read { addr: 0 }) {
            Ok(_) => acquired += 1,
            Err(DmiError::NoFreeTag) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(acquired, 32, "exactly the paper's 32 tags");
}

#[test]
fn randomized_ops_against_reference_model() {
    // Random mixed read/write traffic with a windowed submission
    // pattern, on a noisy channel, checked against a flat reference
    // model: the strongest end-to-end integrity property we can state.
    use contutto_system::dmi::CommandOp;
    use std::collections::HashMap;

    let mut ch = noisy_contutto(0.01, 0.01, 31337);
    let mut reference: HashMap<u64, CacheLine> = HashMap::new();
    let mut lcg: u64 = 0xACE1;
    let mut next = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg
    };
    for op in 0..120u64 {
        let r = next();
        let addr = (r % 64) * 128; // 64-line working set
        if r & (1 << 40) != 0 {
            let line = CacheLine::patterned(op);
            ch.write_line_blocking(addr, line).expect("write");
            reference.insert(addr, line);
        } else {
            let (got, _) = ch.read_line_blocking(addr).expect("read");
            let want = reference.get(&addr).copied().unwrap_or(CacheLine::ZERO);
            assert_eq!(got, want, "op {op} at {addr:#x}");
        }
    }
    // Interleaved window: fire 16 reads at once over written lines and
    // match them back by tag.
    let mut expected_by_tag = HashMap::new();
    let addrs: Vec<u64> = reference.keys().copied().take(16).collect();
    for addr in &addrs {
        let tag = ch.submit(CommandOp::Read { addr: *addr }).expect("submit");
        expected_by_tag.insert(tag, reference[addr]);
    }
    let deadline = ch.now() + contutto_system::sim::SimTime::from_ms(10);
    for _ in 0..addrs.len() {
        let c = ch.next_completion(deadline).expect("completion");
        let want = expected_by_tag.remove(&c.tag).expect("our tag");
        assert_eq!(c.data.expect("read data"), want);
    }
}

#[test]
fn burst_errors_on_consecutive_frames_recover() {
    // Five consecutive corrupted downstream frames — the replay must
    // rewind far enough (FRTL-based) to recover all of them.
    let mut cfg = ChannelConfig::contutto();
    cfg.down_errors = BitErrorInjector::at_frames(vec![40, 41, 42, 43, 44]);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb())),
    );
    for i in 0..20u64 {
        let line = CacheLine::patterned(i + 100);
        ch.write_line_blocking(i * 128, line).expect("write");
        let (back, _) = ch.read_line_blocking(i * 128).expect("read");
        assert_eq!(back, line);
    }
}
