//! Integration: persistence semantics across the stack — pmem flush,
//! NVDIMM save/restore, MRAM retention and endurance accounting.

use contutto_system::centaur::CentaurConfig;
use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryKind, MemoryPopulation};
use contutto_system::dmi::command::CacheLine;
use contutto_system::memdev::{MemoryDevice, MramGeneration, NvdimmN, RestoreError, SaveState};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};
use contutto_system::power8::firmware::SlotPopulation;
use contutto_system::power8::system::{Power8System, PowerConfig, SystemError};
use contutto_system::sim::SimTime;
use contutto_system::storage::blockdev::{mram_contutto_device, BlockDevice};
use contutto_system::storage::pmem::PmemDriver;
use contutto_system::storage::writecache::WriteCache;

fn mram_channel() -> DmiChannel {
    DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
        )),
    )
}

#[test]
fn pmem_flush_orders_after_all_stores() {
    let mut ch = mram_channel();
    let driver = PmemDriver::default();
    // Many posted writes, then one flush: the durable time must be at
    // or after the last write's completion.
    let posted_done = driver.write_posted(&mut ch, 0, &vec![0x11u8; 8192]);
    let durable = driver.write_persistent(&mut ch, 8192, &[0x22u8; 128]);
    assert!(durable > posted_done);
    // And the data is all there.
    let mut buf = vec![0u8; 8192];
    driver.read(&mut ch, 0, &mut buf);
    assert!(buf.iter().all(|&b| b == 0x11));
}

#[test]
fn nvdimm_full_power_cycle_preserves_filesystem_image() {
    let mut nv = NvdimmN::new(1 << 20, Default::default());
    // Simulate a filesystem: superblock + a few inodes.
    nv.write(SimTime::ZERO, 0, b"SUPERBLOCKv1");
    for i in 0..16u64 {
        let inode = [i as u8; 64];
        nv.write(SimTime::from_us(i), 4096 + i * 64, &inode);
    }
    let quiesced = nv.power_loss(SimTime::from_ms(1));
    assert!(matches!(nv.save_state(), SaveState::Saving { .. }));
    let usable = nv
        .power_restore(quiesced)
        .expect("clean power cycle restores intact");
    let mut sb = [0u8; 12];
    nv.read(usable, 0, &mut sb);
    assert_eq!(&sb, b"SUPERBLOCKv1");
    for i in 0..16u64 {
        let mut inode = [0u8; 64];
        nv.read(usable, 4096 + i * 64, &mut inode);
        assert_eq!(inode, [i as u8; 64], "inode {i}");
    }
}

#[test]
fn nvdimm_torn_save_fails_loudly_not_silently() {
    let mut nv = NvdimmN::new(1 << 20, Default::default());
    nv.write(SimTime::ZERO, 0, b"CRITICAL");
    let quiesced = nv.power_loss(SimTime::from_ms(1));
    // Power returns before the supercap-backed save finished: the
    // image is torn and the restore must refuse it, typed, instead of
    // serving partial data.
    let early = SimTime::from_ms(1) + SimTime::from_us(1);
    assert!(early < quiesced, "save takes longer than 1 us");
    let err = nv.power_restore(early).expect_err("torn save must fail");
    assert!(matches!(err, RestoreError::TornSave { .. }), "{err}");
    assert!(!nv.is_durable(early), "a lost image is not durable");
}

#[test]
fn nvdimm_corrupted_save_image_is_rejected_end_to_end() {
    let mut nv = NvdimmN::new(1 << 20, Default::default());
    nv.write(SimTime::ZERO, 0, &[0xA5u8; 128]);
    let quiesced = nv.power_loss(SimTime::from_ms(1));
    // Flash rot while the system was off.
    nv.corrupt_saved_image(7, 0x10);
    let err = nv
        .power_restore(quiesced)
        .expect_err("corrupted image must not restore");
    assert!(matches!(err, RestoreError::CrcMismatch { .. }), "{err}");
    // The failed restore wiped DRAM: the garbage is never readable as
    // if it were valid data.
    let mut buf = [0xFFu8; 128];
    nv.read(quiesced, 0, &mut buf);
    assert!(buf.iter().all(|&b| b == 0), "no stale bytes survive");
}

fn nvdimm_system_seeded(seed: u64) -> Result<Power8System, contutto_system::power8::BootError> {
    Power8System::boot(
        vec![
            SlotPopulation::Cdimm {
                config: CentaurConfig::optimized(),
                capacity: 4 << 30,
            },
            SlotPopulation::Empty,
            SlotPopulation::ConTutto {
                config: ContuttoConfig::base(),
                population: MemoryPopulation {
                    kind: MemoryKind::NvdimmN,
                    dimm_capacity: 512 << 10,
                    dimms: 2,
                },
            },
            SlotPopulation::Empty,
        ],
        seed,
    )
}

fn nvdimm_system() -> Result<Power8System, contutto_system::power8::BootError> {
    nvdimm_system_seeded(42)
}

#[test]
fn whole_system_power_cycle_preserves_nvdimm_and_zeroes_dram() {
    let mut sys = nvdimm_system().expect("boots");
    let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
    let nv_line = CacheLine::patterned(0xC0FFEE);
    let dram_line = CacheLine::patterned(0xDEAD);
    sys.store_line(nv_base, nv_line).unwrap();
    sys.store_line(0x10_0000, dram_line).unwrap();

    // Orderly shutdown: EPOW cascade, then the cut.
    let epow = sys.epow();
    assert!(epow.completed, "ideal energy completes all four stages");
    let quiet = sys.power_cut(epow.done_at + SimTime::from_us(1));
    assert!(
        matches!(sys.load_line(nv_base), Err(SystemError::PoweredOff)),
        "a powered-off system serves nothing"
    );

    let report = sys.reboot(quiet + SimTime::from_ms(50)).expect("reboots");
    assert!(report.data_loss.is_empty(), "{:?}", report.data_loss);
    let (back, _) = sys.load_line(nv_base).unwrap();
    assert_eq!(back, nv_line, "NVDIMM line survives the power cycle");
    let (back, _) = sys.load_line(0x10_0000).unwrap();
    assert_eq!(back, CacheLine::default(), "DRAM does not survive");
}

#[test]
fn starved_save_energy_reports_torn_loss_end_to_end() {
    let mut sys = nvdimm_system().expect("boots");
    sys.configure_power(PowerConfig {
        holdup_budget_nj: None,
        nvdimm_supercap_nj: Some(contutto_system::memdev::SAVE_COST_PER_PAGE_NJ * 4),
    });
    let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
    sys.store_line(nv_base, CacheLine::patterned(7)).unwrap();
    let now = sys
        .channels()
        .iter()
        .map(|c| c.channel.now())
        .max()
        .unwrap();
    // Surprise cut: no EPOW warning at all.
    let quiet = sys.power_cut(now + SimTime::from_us(1));
    let report = sys.reboot(quiet + SimTime::from_ms(50)).expect("reboots");
    // The loss is typed and attributed, never silent.
    assert_eq!(report.data_loss.len(), 1);
    assert!(report.data_loss[0].outcome.is_data_loss());
    let (back, _) = sys.load_line(nv_base).unwrap();
    assert_eq!(
        back,
        CacheLine::default(),
        "no stale bytes after a torn save"
    );
}

#[test]
fn same_seed_power_cycles_are_byte_identical() {
    let fingerprint = |seed: u64, lines: u64| {
        let mut sys = nvdimm_system_seeded(seed).expect("boots");
        let tracer = sys.enable_tracing(1 << 12);
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        for i in 0..lines {
            sys.store_line(nv_base + i * 128, CacheLine::patterned(seed + i))
                .unwrap();
        }
        let epow = sys.epow();
        let quiet = sys.power_cut(epow.done_at + SimTime::from_us(1));
        sys.reboot(quiet + SimTime::from_ms(50)).expect("reboots");
        tracer.fingerprint()
    };
    assert_eq!(
        fingerprint(9, 4),
        fingerprint(9, 4),
        "same seed, same trace"
    );
    assert_ne!(
        fingerprint(9, 4),
        fingerprint(9, 5),
        "the workload reaches the trace — equality above is not vacuous"
    );
}

#[test]
fn write_cache_contents_survive_and_destage_correctly() {
    let mut cache = WriteCache::new(
        mram_contutto_device(),
        contutto_system::storage::blockdev::SasHdd::new(),
    );
    let mut expected = Vec::new();
    let mut now = SimTime::ZERO;
    for i in 0..12u64 {
        let lba = (i * 7919) % 100_000;
        let mut data = [0u8; 4096];
        data[0] = i as u8;
        data[4095] = !(i as u8);
        now = cache.write(now, lba, &data);
        expected.push((lba, data));
    }
    // Before destage: reads come from the log.
    for (lba, data) in &expected {
        let mut buf = [0u8; 4096];
        now = cache.read(now, *lba, &mut buf);
        assert_eq!(&buf, data);
    }
    // After destage: reads come from the disk, identically.
    now = cache.destage(now);
    assert_eq!(cache.pending_records(), 0);
    for (lba, data) in &expected {
        let mut buf = [0u8; 4096];
        now = cache.read(now, *lba, &mut buf);
        assert_eq!(&buf, data, "lba {lba} after destage");
    }
}

#[test]
fn mram_block_device_tracks_wear_in_the_media_model() {
    let mut dev = mram_contutto_device();
    let data = [0u8; 4096];
    for _ in 0..5 {
        dev.write_block(SimTime::ZERO, 3, &data);
    }
    // The wear counters live in the MRAM device behind the channel;
    // verify the block device stayed functional and persistent.
    let mut buf = [1u8; 4096];
    dev.read_block(SimTime::from_ms(1), 3, &mut buf);
    assert_eq!(buf, data);
    assert!(dev.is_persistent());
}

#[test]
fn mram_endurance_never_threatened_by_storage_workloads() {
    use contutto_system::memdev::SttMram;
    let mut mram = SttMram::new(1 << 20, MramGeneration::Pmtj);
    // A hot log block rewritten 10k times.
    for _ in 0..10_000 {
        mram.write(SimTime::ZERO, 0, &[0u8; 64]);
    }
    assert_eq!(mram.max_line_wear(), 10_000);
    assert!(
        !mram.is_worn_out(),
        "10k writes is 8 orders below MRAM endurance (Figure 8)"
    );
}
