//! Integration: the full experiment runners regenerate every table
//! and figure with the paper's shape. These are the end-to-end
//! acceptance tests of the reproduction (EXPERIMENTS.md documents the
//! numbers side by side).

use contutto_bench as bench;

#[test]
fn table1_regenerates_exactly() {
    let report = bench::table1();
    let total = report.total();
    assert_eq!(
        (total.alms, total.registers, total.m20k),
        (136_856, 191_403, 244)
    );
    assert_eq!(total.percent_of_device(), (43, 30, 9));
}

#[test]
fn table2_rows_track_paper_anchors() {
    let rows = bench::table2();
    assert_eq!(rows.len(), 4);
    // Latency column: 79 / 83 / 116 / 249 ns within a few ns.
    let paper = [79.0, 83.0, 116.0, 249.0];
    for (row, target) in rows.iter().zip(paper) {
        let err = (row.latency_ns - target).abs() / target;
        assert!(
            err < 0.05,
            "{}: {} vs {}",
            row.setting,
            row.latency_ns,
            target
        );
    }
    // DB2 column: monotone, 5387 → ~5800, <8% total increase.
    assert!((rows[0].db2_seconds - 5387.0).abs() < 5.0);
    assert!(rows.windows(2).all(|w| w[0].db2_seconds < w[1].db2_seconds));
    assert!(rows[3].db2_seconds / rows[0].db2_seconds - 1.0 < 0.08);
}

#[test]
fn table3_rows_track_paper_anchors() {
    let rows = bench::table3();
    let get = |needle: &str| {
        rows.iter()
            .find(|r| r.configuration.contains(needle))
            .unwrap_or_else(|| panic!("missing {needle}"))
            .latency_ns
    };
    let checks = [
        ("Centaur", 97.0),
        ("ConTutto base", 390.0),
        ("knob @ 2", 438.0),
        ("knob @ 6", 534.0),
        ("knob @ 7", 558.0),
        ("matched", 293.0),
    ];
    for (needle, target) in checks {
        let measured = get(needle);
        let err = (measured - target).abs() / target;
        assert!(err < 0.05, "{needle}: {measured} vs paper {target}");
    }
}

#[test]
fn figure7_summary_matches_paper_prose() {
    let s = bench::figure7_summary();
    assert!(
        (0.33..=0.58).contains(&s.under_2pct),
        "~half <2%: {}",
        s.under_2pct
    );
    assert!(
        (0.58..=0.75).contains(&s.under_10pct),
        "~two-thirds <10%: {}",
        s.under_10pct
    );
    assert!(s.over_50pct > 0.0 && s.over_50pct < 0.17, "one app >50%");
}

#[test]
fn figure8_covers_all_technologies_in_order() {
    let rows = bench::figure8();
    assert_eq!(rows.len(), 7);
    let mram = rows
        .iter()
        .find(|r| r.technology.to_string() == "STT-MRAM")
        .unwrap();
    let nand = rows
        .iter()
        .find(|r| r.technology.to_string() == "NAND (MLC)")
        .unwrap();
    assert!(
        mram.log10_min - nand.log10_max >= 7.0,
        "MRAM >= 7 decades above NAND"
    );
}

#[test]
fn table4_ordering_and_factors() {
    let rows = bench::table4();
    let (hdd, ssd, mram) = (rows[0].iops, rows[1].iops, rows[2].iops);
    assert!(hdd < ssd && ssd < mram);
    let mram_over_ssd = mram / ssd;
    assert!(
        (5.0..12.0).contains(&mram_over_ssd),
        "paper: 8.3x, measured {mram_over_ssd}"
    );
}

#[test]
fn figures9_10_orderings_hold() {
    let results = bench::figure9_10();
    let find = |device: &str, read: bool| {
        results
            .iter()
            .find(|r| {
                r.device == device
                    && (matches!(r.pattern, contutto_workloads::fio::FioPattern::RandRead) == read)
            })
            .unwrap_or_else(|| panic!("missing {device}"))
    };
    for read in [true, false] {
        let flash = find("flash-x4-pcie", read);
        let nvram = find("nvram-pcie", read);
        let mram_pcie = find("mram-pcie", read);
        let mram_ct = find("mram-contutto", read);
        let nvdimm_ct = find("nvdimm-contutto", read);
        // Latency ordering: memory bus < PCIe MRAM < NVRAM < flash.
        assert!(mram_ct.latency.mean() < mram_pcie.latency.mean());
        assert!(nvdimm_ct.latency.mean() < mram_pcie.latency.mean());
        assert!(mram_pcie.latency.mean() < nvram.latency.mean());
        assert!(nvram.latency.mean() < flash.latency.mean());
        // IOPS ordering mirrors it.
        assert!(mram_ct.iops > mram_pcie.iops);
        assert!(mram_pcie.iops > nvram.iops);
    }
    // The headline factors (ConTutto vs NVRAM PCIe).
    let read_gain = find("nvram-pcie", true).latency.mean().as_ns_f64()
        / find("mram-contutto", true).latency.mean().as_ns_f64();
    assert!(
        (4.0..9.0).contains(&read_gain),
        "paper 6.6x, measured {read_gain}"
    );
    let write_gain = find("nvram-pcie", false).latency.mean().as_ns_f64()
        / find("mram-contutto", false).latency.mean().as_ns_f64();
    assert!(write_gain > read_gain, "write gains exceed read gains");
}

#[test]
fn table5_factors_match() {
    let rows = bench::table5();
    let factor = |i: usize| rows[i].contutto / rows[i].software;
    // Paper: memcpy 1.9x, min/max 21x, FFT 1.9x.
    assert!((1.4..2.5).contains(&factor(0)), "memcpy {}", factor(0));
    assert!((15.0..30.0).contains(&factor(1)), "minmax {}", factor(1));
    assert!((1.4..2.5).contains(&factor(2)), "fft {}", factor(2));
    // And absolute values are close to the paper's.
    assert!((rows[0].contutto - 6.0).abs() < 0.5);
    assert!((rows[1].contutto - 10.5).abs() < 1.0);
    assert!((rows[2].contutto - 1.3).abs() < 0.15);
}
