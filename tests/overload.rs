//! Integration: the overload-resilience layer.
//!
//! Three contracts are pinned here. **Hedging is exactly-once**: a
//! hedged read races the primary against its mirror, the first clean
//! completion wins, and the loser is absorbed — one delivery per
//! request, correct bytes, never a double-apply. **The no-progress
//! watchdogs are typed and loud**: a wedged channel turns into
//! [`SystemError::Stalled`], an unknown request id into
//! [`SystemError::UnknownRequest`] — never a hang, never a livelock.
//! **The defenses are deterministic policy**: for every overload-config
//! combination × 8 seeds, two same-seed runs of traffic-under-trigger
//! must produce identical trace fingerprints AND identical reports,
//! histograms included.

use contutto_system::centaur::{Centaur, CentaurConfig};
use contutto_system::contutto::{ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::CacheLine;
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};
use contutto_system::power8::failover::FailoverMode;
use contutto_system::power8::firmware::layouts;
use contutto_system::power8::inject::FaultAction;
use contutto_system::power8::system::SystemError;
use contutto_system::power8::{
    AdmissionConfig, BreakerConfig, HedgeConfig, OverloadConfig, Power8System, RetryBudgetConfig,
};
use contutto_system::sim::SimTime;
use contutto_system::workloads::traffic::{
    ArrivalProcess, LoopMode, Phase, TrafficConfig, TrafficEngine, TrafficReport,
};

/// ConTutto slot backing live regions in [`layouts::failover_pair`].
const PRIMARY: usize = 2;
/// Its mirror.
const MIRROR: usize = 4;

fn boot_mirrored(seed: u64) -> Power8System {
    Power8System::boot_with_failover(
        layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        seed,
        FailoverMode::Mirrored {
            primary: PRIMARY,
            mirror: MIRROR,
        },
    )
    .expect("mirrored testbed boots")
}

/// First `n` line-granular physical addresses routed to `slot`.
fn slot_addrs(sys: &Power8System, slot: usize, n: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let mut phys = 0u64;
    while out.len() < n && phys < 64 << 30 {
        if sys.route(phys).is_some_and(|(s, _)| s == slot) {
            out.push(phys);
        }
        phys += 128 * 1024;
    }
    assert_eq!(out.len(), n, "slot {slot} backs too little memory");
    out
}

/// A hedged read delivers exactly once with the correct bytes: lines
/// are written first (the mirror shadows every store by construction),
/// the primary is then made slow-not-dead, and every read must come
/// back once, clean, and pattern-correct — with the hedge machinery
/// demonstrably engaged and every loser absorbed.
#[test]
fn hedged_reads_deliver_exactly_once_with_correct_data() {
    let mut sys = boot_mirrored(7);
    sys.set_mlp_window(16);
    let mut cfg = OverloadConfig::off();
    cfg.hedge = Some(HedgeConfig {
        after: SimTime::from_ns(300),
        max_in_flight: 8,
    });
    sys.set_overload_config(cfg);

    let addrs = slot_addrs(&sys, PRIMARY, 16);
    for (i, &a) in addrs.iter().enumerate() {
        let id = sys
            .submit_store(a, CacheLine::patterned(i as u64 + 1))
            .expect("store submits");
        sys.wait_req(id).expect("store completes");
    }

    // Slow — not dead. The primary still answers, just late enough
    // that every read ages past the hedge threshold.
    sys.apply_fault_action(
        sys.now(),
        &FaultAction::SlowChannel {
            slot: PRIMARY,
            window: SimTime::from_us(50),
        },
    );

    let mut ids = Vec::new();
    for &a in &addrs {
        ids.push(sys.submit_load(a).expect("read submits"));
    }
    let done = sys.drain();

    assert_eq!(done.len(), ids.len(), "every read delivers exactly once");
    for (i, id) in ids.iter().enumerate() {
        let matches: Vec<_> = done.iter().filter(|(r, _)| r == id).collect();
        assert_eq!(matches.len(), 1, "request {id:?} delivered once");
        let completion = matches[0].1.as_ref().expect("read succeeds");
        assert_eq!(
            completion.data,
            Some(CacheLine::patterned(i as u64 + 1)),
            "request {id:?} returned the written bytes"
        );
    }

    let st = sys.overload_stats();
    assert!(st.hedges_issued >= 1, "the slow primary forces hedges");
    assert!(st.hedges_won >= 1, "at least one hedge wins the race");
    assert!(
        st.hedges_won <= st.hedges_issued,
        "wins never exceed issues ({} > {})",
        st.hedges_won,
        st.hedges_issued
    );
    assert!(
        st.hedges_cancelled <= st.hedges_issued,
        "cancellations never exceed issues ({} > {})",
        st.hedges_cancelled,
        st.hedges_issued
    );
    assert_eq!(sys.outstanding_reqs(), 0, "nothing left behind");
}

/// Without a mirror there is nothing safe to hedge against: the same
/// slow primary on a spare-less, mirror-less testbed must finish every
/// read on its own, with zero hedge activity.
#[test]
fn hedging_requires_a_mirror() {
    let mut sys = Power8System::boot_with_failover(
        layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        7,
        FailoverMode::None,
    )
    .expect("boot");
    let mut cfg = OverloadConfig::off();
    cfg.hedge = Some(HedgeConfig {
        after: SimTime::from_ns(300),
        max_in_flight: 8,
    });
    sys.set_overload_config(cfg);
    sys.apply_fault_action(
        sys.now(),
        &FaultAction::SlowChannel {
            slot: PRIMARY,
            window: SimTime::from_us(50),
        },
    );
    let addrs = slot_addrs(&sys, PRIMARY, 8);
    let ids: Vec<_> = addrs
        .iter()
        .map(|&a| sys.submit_load(a).expect("submit"))
        .collect();
    let done = sys.drain();
    assert_eq!(done.len(), ids.len());
    assert!(done.iter().all(|(_, r)| r.is_ok()));
    assert_eq!(sys.overload_stats().hedges_issued, 0, "no mirror, no hedge");
}

/// The drain watchdog: a channel that loses its in-flight state (here:
/// the buffer is hot-swapped under outstanding requests) must surface
/// every stranded request as a typed [`SystemError::Stalled`] — and the
/// system must stay fully usable afterwards.
#[test]
fn drain_watchdog_fails_wedged_requests_typed() {
    let mut sys = Power8System::boot(layouts::all_cdimm(CentaurConfig::optimized(), 4 << 30), 3)
        .expect("boot");
    let addrs = slot_addrs(&sys, 0, 4);
    let ids: Vec<_> = addrs
        .iter()
        .map(|&a| sys.submit_load(a).expect("submit"))
        .collect();
    // Swap in a fresh idle channel: the in-flight commands vanish, the
    // clock freezes, and without the watchdog `drain` would spin
    // forever.
    sys.channel_mut(0).expect("slot 0 exists").channel = DmiChannel::new(
        ChannelConfig::centaur(),
        Box::new(Centaur::new(CentaurConfig::optimized(), 4 << 30)),
    );
    let done = sys.drain();
    assert_eq!(done.len(), ids.len(), "every stranded request surfaces");
    for (id, r) in &done {
        assert!(
            matches!(r, Err(SystemError::Stalled)),
            "{id:?} must be Stalled, got {r:?}"
        );
    }
    assert_eq!(sys.overload_stats().stalls, 1, "one watchdog verdict");
    assert_eq!(sys.outstanding_reqs(), 0);
    // The wedge is cleared, not smeared: new work completes normally.
    let id = sys.submit_load(addrs[0]).expect("resubmit");
    sys.wait_req(id).expect("post-stall request completes");
}

/// The blocking-wait watchdog: same wedge, same typed verdict —
/// `wait_req` returns [`SystemError::Stalled`] instead of hanging.
#[test]
fn wait_req_watchdog_returns_stalled() {
    let mut sys = Power8System::boot(layouts::all_cdimm(CentaurConfig::optimized(), 4 << 30), 3)
        .expect("boot");
    let addr = slot_addrs(&sys, 0, 1)[0];
    let id = sys.submit_load(addr).expect("submit");
    sys.channel_mut(0).expect("slot 0 exists").channel = DmiChannel::new(
        ChannelConfig::centaur(),
        Box::new(Centaur::new(CentaurConfig::optimized(), 4 << 30)),
    );
    assert!(matches!(sys.wait_req(id), Err(SystemError::Stalled)));
    assert_eq!(sys.overload_stats().stalls, 1);
}

/// `wait_req` on an id whose result was already collected — by a prior
/// `wait_req` or by `drain` — is a typed [`SystemError::UnknownRequest`],
/// not a hang and not someone else's completion.
#[test]
fn wait_req_on_collected_id_is_unknown_request() {
    let mut sys = Power8System::boot(layouts::all_cdimm(CentaurConfig::optimized(), 4 << 30), 3)
        .expect("boot");
    let addr = slot_addrs(&sys, 0, 1)[0];

    let id = sys.submit_load(addr).expect("submit");
    sys.wait_req(id).expect("first wait succeeds");
    assert!(matches!(sys.wait_req(id), Err(SystemError::UnknownRequest)));

    let id = sys.submit_load(addr).expect("submit");
    let drained = sys.drain();
    assert!(drained.iter().any(|(r, res)| *r == id && res.is_ok()));
    assert!(matches!(sys.wait_req(id), Err(SystemError::UnknownRequest)));
}

/// A total link blackout with work in flight must stay *live*: the
/// recovery ladder, failover and watchdog between them turn every
/// request into a completion or a typed error — `drain` terminates
/// with nothing left outstanding.
#[test]
fn blackout_drain_terminates_with_typed_errors() {
    let mut sys = boot_mirrored(42);
    sys.set_mlp_window(16);
    let addrs = slot_addrs(&sys, PRIMARY, 8);
    let ids: Vec<_> = addrs
        .iter()
        .map(|&a| sys.submit_load(a).expect("submit"))
        .collect();
    for slot in [PRIMARY, MIRROR] {
        sys.apply_fault_action(
            sys.now(),
            &FaultAction::LinkNoise {
                slot,
                down: 1.0,
                up: 1.0,
                seed: 9 + slot as u64,
            },
        );
    }
    let done = sys.drain();
    assert_eq!(done.len(), ids.len(), "every request is accounted for");
    assert_eq!(sys.outstanding_reqs(), 0, "drain left nothing behind");
}

// ---------------------------------------------------------------------
// The determinism matrix: every overload-config combination × 8 seeds,
// run twice under traffic with a mid-run slow-channel trigger. The
// defenses are deterministic policy — fingerprints and full reports
// (histograms included) must be byte-identical.
// ---------------------------------------------------------------------

fn matrix_traffic(deadline: Option<SimTime>, seed: u64) -> TrafficConfig {
    TrafficConfig {
        mode: LoopMode::Open,
        arrival: ArrivalProcess::Poisson,
        requests: 72,
        users: 256,
        per_user_rps: 20_000.0,
        think: SimTime::from_us(1),
        keys: 512,
        zipf_theta: 0.99,
        read_fraction: 0.9,
        mlp_window: 16,
        slo: SimTime::from_us(4),
        deadline,
        client_retries: 2,
        client_backoff: SimTime::from_us(2),
        seed,
    }
}

fn matrix_run(cfg: OverloadConfig, deadline: Option<SimTime>, seed: u64) -> (TrafficReport, u64) {
    let mut sys = boot_mirrored(seed);
    sys.set_overload_config(cfg);
    let tracer = sys.enable_tracing(1 << 14);
    let engine = TrafficEngine::new(matrix_traffic(deadline, seed), &sys);
    let mut fired = false;
    let report = engine.run(&mut sys, |sys, tick| {
        if !fired && tick.completed >= 24 {
            fired = true;
            sys.apply_fault_action(
                tick.now,
                &FaultAction::SlowChannel {
                    slot: PRIMARY,
                    window: SimTime::from_us(10),
                },
            );
        }
        if fired {
            Phase::Fault
        } else {
            Phase::Steady
        }
    });
    (report, tracer.fingerprint())
}

fn assert_deterministic(name: &str, cfg: OverloadConfig, deadline: Option<SimTime>) {
    for seed in 1..=8u64 {
        let (a, fp_a) = matrix_run(cfg, deadline, seed);
        let (b, fp_b) = matrix_run(cfg, deadline, seed);
        assert_eq!(fp_a, fp_b, "{name} seed {seed}: fingerprint diverged");
        assert_eq!(a, b, "{name} seed {seed}: report diverged");
        assert_eq!(
            a.completed + a.errors + a.orphaned,
            a.submitted,
            "{name} seed {seed}: accounting leak"
        );
        assert_eq!(a.duplicate_completions, 0, "{name} seed {seed}");
    }
}

#[test]
fn matrix_no_defenses_is_deterministic() {
    assert_deterministic("off", OverloadConfig::off(), None);
}

#[test]
fn matrix_admission_only_is_deterministic() {
    let cfg = OverloadConfig {
        admission: Some(AdmissionConfig::default()),
        ..OverloadConfig::off()
    };
    assert_deterministic("admission", cfg, Some(SimTime::from_us(2)));
}

#[test]
fn matrix_retry_budget_only_is_deterministic() {
    let cfg = OverloadConfig {
        retry_budget: Some(RetryBudgetConfig::default()),
        ..OverloadConfig::off()
    };
    assert_deterministic("budget", cfg, None);
}

#[test]
fn matrix_breaker_only_is_deterministic() {
    let cfg = OverloadConfig {
        breaker: Some(BreakerConfig::default()),
        ..OverloadConfig::off()
    };
    assert_deterministic("breaker", cfg, None);
}

#[test]
fn matrix_hedge_only_is_deterministic() {
    let cfg = OverloadConfig {
        hedge: Some(HedgeConfig {
            after: SimTime::from_ns(600),
            max_in_flight: 8,
        }),
        ..OverloadConfig::off()
    };
    assert_deterministic("hedge", cfg, None);
}

#[test]
fn matrix_full_protective_is_deterministic() {
    let mut cfg = OverloadConfig::protective();
    cfg.hedge = Some(HedgeConfig {
        after: SimTime::from_ns(600),
        max_in_flight: 8,
    });
    assert_deterministic("protective", cfg, Some(SimTime::from_us(2)));
}
