//! Integration: the service-level traffic generator.
//!
//! The contract under test is *byte-identical determinism of the whole
//! serving report*: for every loop mode × arrival process × seed, two
//! runs from the same seed must produce the same trace fingerprint and
//! a structurally identical [`TrafficReport`] — latency histograms
//! included, which is exactly the identity the old `p99=0` bug class
//! would have broken. Plus sanity on the zipfian skew and the
//! SLO-accounting arithmetic.

use contutto_system::centaur::CentaurConfig;
use contutto_system::power8::firmware::layouts;
use contutto_system::power8::Power8System;
use contutto_system::sim::SimTime;
use contutto_system::workloads::traffic::{
    ArrivalProcess, LoopMode, TrafficConfig, TrafficEngine, TrafficReport,
};

fn boot(seed: u64) -> Power8System {
    Power8System::boot(
        layouts::all_cdimm(CentaurConfig::optimized(), 4 << 30),
        seed,
    )
    .expect("boot")
}

fn config(mode: LoopMode, arrival: ArrivalProcess, seed: u64) -> TrafficConfig {
    TrafficConfig {
        mode,
        arrival,
        requests: 120,
        users: 16,
        per_user_rps: 250_000.0,
        think: SimTime::from_ns(400),
        keys: 512,
        zipf_theta: 0.99,
        read_fraction: 0.9,
        mlp_window: 16,
        slo: SimTime::from_us(2),
        deadline: None,
        client_retries: 0,
        client_backoff: SimTime::from_us(2),
        seed,
    }
}

fn run_once(mode: LoopMode, arrival: ArrivalProcess, seed: u64) -> (TrafficReport, u64) {
    let mut sys = boot(seed);
    let tracer = sys.enable_tracing(1 << 16);
    let cfg = config(mode, arrival, seed);
    let engine = TrafficEngine::new(cfg, &sys);
    let report = engine.run_steady(&mut sys);
    (report, tracer.fingerprint())
}

/// The tentpole determinism matrix: {open, closed} × {poisson, bursty}
/// × 4 seeds, each run twice — fingerprints AND full reports
/// (histograms included) must be identical.
#[test]
fn same_seed_identity_across_modes_arrivals_and_seeds() {
    let modes = [LoopMode::Open, LoopMode::Closed];
    let arrivals = [
        ArrivalProcess::Poisson,
        ArrivalProcess::Bursty { burst_len: 8 },
    ];
    for mode in modes {
        for arrival in arrivals {
            for seed in [3, 11, 42, 9001] {
                let (a, fp_a) = run_once(mode, arrival, seed);
                let (b, fp_b) = run_once(mode, arrival, seed);
                assert_eq!(
                    fp_a, fp_b,
                    "fingerprint diverged for {mode:?}/{arrival:?} seed {seed}"
                );
                assert_eq!(a, b, "report diverged for {mode:?}/{arrival:?} seed {seed}");
                assert_eq!(a.completed, 120, "{mode:?}/{arrival:?} seed {seed}");
                assert_eq!(a.errors, 0);
                assert_eq!(a.orphaned, 0);
            }
        }
    }
}

/// Different seeds must actually produce different traffic — otherwise
/// the identity test above proves nothing.
#[test]
fn different_seeds_diverge() {
    let (a, fp_a) = run_once(LoopMode::Open, ArrivalProcess::Poisson, 3);
    let (b, fp_b) = run_once(LoopMode::Open, ArrivalProcess::Poisson, 4);
    assert_ne!(fp_a, fp_b, "two seeds produced the same trace");
    assert_ne!(a, b, "two seeds produced the same report");
}

/// Zipfian skew at theta=0.99: the hot keys must take a far larger
/// completion share than a uniform draw would give them.
#[test]
fn zipf_hot_keys_dominate() {
    let (report, _) = run_once(LoopMode::Open, ArrivalProcess::Poisson, 7);
    let share = report.hot_key_share();
    // The engine tracks its hottest 1% of keys; uniform traffic would
    // give them ~1% of completions. Zipf(0.99) gives them many times
    // that.
    assert!(
        share > 0.05,
        "hot-key completion share {share:.3} is not skewed"
    );
    assert!(share < 1.0, "all traffic on hot keys is a sampling bug");
}

/// Bursty arrivals stretch the tail relative to Poisson at the same
/// offered load: a burst of back-to-back arrivals queues behind
/// itself.
#[test]
fn bursty_arrivals_have_a_longer_tail_than_poisson() {
    let (poisson, _) = run_once(LoopMode::Open, ArrivalProcess::Poisson, 5);
    let (bursty, _) = run_once(LoopMode::Open, ArrivalProcess::Bursty { burst_len: 16 }, 5);
    let p = poisson.steady.quantile(0.999);
    let b = bursty.steady.quantile(0.999);
    assert!(
        b > p,
        "bursty p99.9 ({b} ns) should exceed poisson p99.9 ({p} ns)"
    );
}

/// SLO accounting arithmetic: with the SLO below the minimum observed
/// latency every completion violates; with it above the maximum, none
/// do.
#[test]
fn slo_violation_counting_brackets() {
    let mut sys = boot(3);
    let mut cfg = config(LoopMode::Open, ArrivalProcess::Poisson, 3);
    cfg.slo = SimTime::from_ps(1);
    let tight = TrafficEngine::new(cfg, &sys).run_steady(&mut sys);
    assert_eq!(
        tight.steady_slo_violations, tight.completed,
        "a 1 ps SLO must be violated by every completion"
    );

    let mut sys = boot(3);
    cfg.slo = SimTime::from_ms(10);
    let loose = TrafficEngine::new(cfg, &sys).run_steady(&mut sys);
    assert_eq!(
        loose.steady_slo_violations, 0,
        "a 10 ms SLO must never be violated in steady state"
    );
}

/// The closed loop can never exceed its population's concurrency: at
/// any instant at most `users` requests are outstanding, so a tiny
/// population with long think times completes strictly slower than a
/// big one.
#[test]
fn closed_loop_throughput_scales_with_population() {
    let mut small_cfg = config(LoopMode::Closed, ArrivalProcess::Poisson, 13);
    small_cfg.users = 1;
    small_cfg.think = SimTime::from_us(2);
    let mut sys = boot(13);
    let small = TrafficEngine::new(small_cfg, &sys).run_steady(&mut sys);

    let mut big_cfg = config(LoopMode::Closed, ArrivalProcess::Poisson, 13);
    big_cfg.users = 32;
    big_cfg.think = SimTime::from_us(2);
    let mut sys = boot(13);
    let big = TrafficEngine::new(big_cfg, &sys).run_steady(&mut sys);

    assert_eq!(small.completed, 120);
    assert_eq!(big.completed, 120);
    assert!(
        big.elapsed < small.elapsed,
        "32 users ({}) should finish before 1 user ({})",
        big.elapsed,
        small.elapsed
    );
}
