//! Integration: the non-blocking submit/poll memory pipeline.
//!
//! Exercises the memory-level-parallelism path end to end — many
//! tagged commands in flight per channel, out-of-order completions
//! across channels, per-tag timeout isolation, retrain bystander
//! requeue, and the determinism invariant (same seed → byte-identical
//! trace fingerprint) at every in-flight window depth.

use contutto_system::centaur::{Centaur, CentaurConfig};
use contutto_system::contutto::ContuttoConfig;
use contutto_system::dmi::{BitErrorInjector, CacheLine, CommandOp, DmiError};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel, RetryPolicy};
use contutto_system::power8::firmware::layouts;
use contutto_system::power8::Power8System;
use contutto_system::sim::SimTime;

/// The §4.1 latency layout: a minimal CDIMM at slot 0 and the ConTutto
/// card at slot 2.
fn boot(seed: u64) -> Power8System {
    Power8System::boot(
        layouts::single_contutto_for_latency(ContuttoConfig::base()),
        seed,
    )
    .expect("boot")
}

fn region_base(sys: &Power8System, slot: usize) -> u64 {
    sys.memory_map()
        .regions()
        .iter()
        .find(|r| r.channel == slot)
        .expect("region for slot")
        .base
}

fn channel_now(sys: &Power8System, slot: usize) -> SimTime {
    sys.channels()
        .iter()
        .find(|c| c.slot == slot)
        .expect("channel for slot")
        .channel
        .now()
}

#[test]
fn sixteen_tracked_reads_interleave_and_overlap() {
    let mut sys = boot(17);
    let base = region_base(&sys, 2);
    for i in 0..16u64 {
        sys.store_line(base + i * 128, CacheLine::patterned(i + 1))
            .unwrap();
    }
    // Pipelined: all sixteen in flight on the one ConTutto channel.
    let t0 = channel_now(&sys, 2);
    let mut ids = Vec::new();
    for i in 0..16u64 {
        ids.push(sys.submit_load(base + i * 128).unwrap());
    }
    assert_eq!(sys.outstanding_reqs(), 16);
    let done = sys.drain();
    let pipelined = channel_now(&sys, 2) - t0;
    assert_eq!(done.len(), 16);
    for (_, result) in &done {
        let c = result.as_ref().expect("load completes");
        let i = (c.phys - base) / 128;
        assert_eq!(
            c.data.expect("read data"),
            CacheLine::patterned(i + 1),
            "line {i} data survived interleaving"
        );
    }
    // Serialized baseline: same sixteen lines one at a time.
    let mut sys2 = boot(17);
    let base2 = region_base(&sys2, 2);
    for i in 0..16u64 {
        sys2.store_line(base2 + i * 128, CacheLine::patterned(i + 1))
            .unwrap();
    }
    let t0 = channel_now(&sys2, 2);
    for i in 0..16u64 {
        sys2.load_line(base2 + i * 128).unwrap();
    }
    let serialized = channel_now(&sys2, 2) - t0;
    assert!(
        pipelined * 2 < serialized,
        "pipelined {pipelined} vs serialized {serialized}"
    );
}

#[test]
fn cross_channel_completions_arrive_out_of_submit_order() {
    // Submit to the slow ConTutto first, then the fast Centaur: the
    // Centaur's completion must surface first even though it was
    // submitted second.
    let mut sys = boot(23);
    let slow = region_base(&sys, 2);
    let fast = region_base(&sys, 0);
    sys.store_line(slow, CacheLine::patterned(0xAA)).unwrap();
    sys.store_line(fast, CacheLine::patterned(0x55)).unwrap();
    let slow_id = sys.submit_load(slow).unwrap();
    let fast_id = sys.submit_load(fast).unwrap();
    let mut order = Vec::new();
    while order.len() < 2 {
        for (id, result) in sys.poll() {
            result.expect("load completes");
            order.push(id);
        }
    }
    assert_eq!(order, vec![fast_id, slow_id], "fast channel finishes first");
}

fn centaur_channel() -> DmiChannel {
    DmiChannel::new(
        ChannelConfig::centaur(),
        Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
    )
}

#[test]
fn one_tag_timeout_leaves_other_completions_untouched() {
    let mut ch = centaur_channel();
    ch.set_retry_policy(RetryPolicy {
        op_timeout: SimTime::from_us(3),
        max_attempts: 1,
        base_backoff: SimTime::from_ns(500),
        max_retrains: 0,
    });
    for i in 0..3u64 {
        ch.write_line_blocking(i * 128, CacheLine::patterned(i + 1))
            .unwrap();
    }
    let healthy: Vec<_> = (0..3u64)
        .map(|i| ch.enqueue_command(CommandOp::Read { addr: i * 128 }))
        .collect();
    // Let the healthy reads land, then kill the link and time out one
    // straggler.
    while ch.tracked_in_flight() > 0 || ch.queued_commands() > 0 {
        ch.step();
    }
    ch.set_down_injector(BitErrorInjector::bernoulli(1.0, 5));
    ch.set_up_injector(BitErrorInjector::bernoulli(1.0, 6));
    let doomed = ch.enqueue_command(CommandOp::Read { addr: 0x8000 });
    let err = ch.wait_for_command(doomed).unwrap_err();
    assert!(matches!(err, DmiError::Timeout { .. }), "got {err:?}");
    // The three earlier completions are all still indexed, in order,
    // with their data intact.
    for (i, id) in healthy.iter().enumerate() {
        let (got, result) = ch.poll_command().expect("completion retained");
        assert_eq!(got, *id, "completion order preserved");
        let c = result.expect("healthy read ok");
        assert_eq!(c.data.unwrap(), CacheLine::patterned(i as u64 + 1));
    }
    assert!(ch.poll_command().is_none());
}

#[test]
fn retrain_requeues_in_flight_bystanders() {
    let mut ch = centaur_channel();
    ch.set_inflight_window(4);
    for i in 0..4u64 {
        ch.write_line_blocking(i * 128, CacheLine::patterned(i + 9))
            .unwrap();
    }
    let ids: Vec<_> = (0..4u64)
        .map(|i| ch.enqueue_command(CommandOp::Read { addr: i * 128 }))
        .collect();
    // Issue them onto link tags, then yank the link out from under
    // them with a full retrain: every in-flight read is an innocent
    // bystander and must be requeued, not dropped or errored.
    ch.step();
    assert!(ch.tracked_in_flight() > 0, "reads issued before retrain");
    let retrains_before = ch.link_retrains();
    ch.retrain().expect("healthy link retrains");
    assert!(ch.link_retrains() > retrains_before);
    for (i, id) in ids.iter().enumerate() {
        let c = ch
            .wait_for_command(*id)
            .expect("bystander survives retrain");
        assert_eq!(c.data.unwrap(), CacheLine::patterned(i as u64 + 9));
    }
}

#[test]
fn same_seed_fingerprints_identical_at_every_window_depth() {
    fn run(seed: u64, depth: usize) -> u64 {
        let mut sys = boot(seed);
        let tracer = sys.enable_tracing(1 << 14);
        sys.set_mlp_window(depth);
        let base = region_base(&sys, 2);
        for i in 0..8u64 {
            sys.store_line(base + i * 128, CacheLine::patterned(i + 1))
                .unwrap();
        }
        let mut ids = Vec::new();
        for i in 0..64u64 {
            ids.push(sys.submit_load(base + (i % 8) * 128).unwrap());
        }
        for (_, result) in sys.drain() {
            result.expect("load completes");
        }
        tracer.fingerprint()
    }
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        for depth in [1usize, 4, 16, 32] {
            assert_eq!(
                run(seed, depth),
                run(seed, depth),
                "seed {seed} depth {depth} must replay byte-identically"
            );
        }
    }
}
