//! Randomized property tests on the core data structures and protocol
//! invariants, driven by the kernel's deterministic [`SimRng`] (fixed
//! seeds, fixed case counts — every run exercises the same inputs).

use contutto_system::dmi::command::{CacheLine, RmwOp, TagPool};
use contutto_system::dmi::crc::crc16;
use contutto_system::dmi::frame::{
    line_to_downstream_beats, line_to_upstream_beats, CommandHeader, DownstreamFrame,
    DownstreamPayload, LineAssembler, UpstreamFrame, UpstreamPayload,
};
use contutto_system::dmi::Tag;
use contutto_system::memdev::SparseMemory;
use contutto_system::sim::SimRng;
use contutto_system::sim::{DelayQueue, EventQueue, SimTime};

const CASES: u64 = 64;

fn arb_line(rng: &mut SimRng) -> CacheLine {
    CacheLine::patterned(rng.next_u64())
}

fn arb_tag(rng: &mut SimRng) -> Tag {
    Tag::new(rng.gen_index(32) as u8).expect("in range")
}

#[test]
fn downstream_frames_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x0707_0000);
    for case in 0..CASES {
        let seq = rng.gen_index(128) as u8;
        let tag = arb_tag(&mut rng);
        let addr = rng.next_u64();
        let line = arb_line(&mut rng);
        let frames = vec![
            DownstreamFrame {
                seq,
                ack: None,
                payload: DownstreamPayload::Idle,
            },
            DownstreamFrame {
                seq,
                ack: Some((seq + 5) % 128),
                payload: DownstreamPayload::Command {
                    tag,
                    header: CommandHeader::Read { addr },
                },
            },
            DownstreamFrame {
                seq,
                ack: None,
                payload: DownstreamPayload::WriteData {
                    tag,
                    beat: seq % 8,
                    data: line.0[0..16].try_into().expect("16 bytes"),
                },
            },
        ];
        for f in frames {
            let back = DownstreamFrame::from_bytes(&f.to_bytes()).expect("clean frame");
            assert_eq!(back, f, "case {case}");
        }
    }
}

#[test]
fn upstream_frames_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x0707_1000);
    for case in 0..CASES {
        let seq = rng.gen_index(128) as u8;
        let tag = arb_tag(&mut rng);
        let second = if rng.gen_bool(0.5) {
            Some(arb_tag(&mut rng))
        } else {
            None
        };
        let f = UpstreamFrame {
            seq,
            ack: Some(seq),
            payload: UpstreamPayload::Done { first: tag, second },
        };
        let back = UpstreamFrame::from_bytes(&f.to_bytes()).expect("clean frame");
        assert_eq!(back, f, "case {case}");
    }
}

#[test]
fn any_single_bitflip_is_detected() {
    let mut rng = SimRng::seed_from_u64(0x0707_2000);
    for case in 0..CASES * 4 {
        let payload_seed = rng.next_u64();
        let byte = rng.gen_index(28);
        let bit = rng.gen_index(8);
        let f = DownstreamFrame {
            seq: (payload_seed % 128) as u8,
            ack: None,
            payload: DownstreamPayload::WriteData {
                tag: Tag::new((payload_seed % 32) as u8).expect("in range"),
                beat: (payload_seed % 8) as u8,
                data: CacheLine::patterned(payload_seed).0[0..16]
                    .try_into()
                    .expect("16"),
            },
        };
        let mut bytes = f.to_bytes();
        bytes[byte] ^= 1 << bit;
        assert!(
            DownstreamFrame::from_bytes(&bytes).is_err(),
            "case {case}: single bit flip at byte {byte} bit {bit} went undetected"
        );
    }
}

#[test]
fn crc16_is_a_pure_function() {
    let mut rng = SimRng::seed_from_u64(0x0707_3000);
    for case in 0..CASES {
        let len = rng.gen_index(64);
        let a: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert_eq!(crc16(&a), crc16(&a.clone()), "case {case}");
    }
}

#[test]
fn line_beats_reassemble_in_any_order() {
    let mut rng = SimRng::seed_from_u64(0x0707_4000);
    for case in 0..CASES {
        let line = arb_line(&mut rng);
        let tag = arb_tag(&mut rng);
        let mut order: Vec<usize> = (0..8).collect();
        rng.shuffle(&mut order);
        let beats = line_to_downstream_beats(tag, &line);
        let mut asm = LineAssembler::downstream();
        for &i in &order {
            if let DownstreamPayload::WriteData { beat, data, .. } = &beats[i] {
                asm.add_beat(*beat, data);
            }
        }
        assert!(asm.is_complete(), "case {case}");
        assert_eq!(asm.into_line(), line, "case {case}");
    }
}

#[test]
fn upstream_beats_reassemble() {
    let mut rng = SimRng::seed_from_u64(0x0707_5000);
    for case in 0..CASES {
        let line = arb_line(&mut rng);
        let tag = arb_tag(&mut rng);
        let beats = line_to_upstream_beats(tag, &line, false);
        let mut asm = LineAssembler::upstream();
        for p in beats.iter().rev() {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.add_beat(*beat, data);
            }
        }
        assert_eq!(asm.into_line(), line, "case {case}");
    }
}

#[test]
fn rmw_partial_write_only_touches_masked_sectors() {
    let mut rng = SimRng::seed_from_u64(0x0707_6000);
    for case in 0..CASES {
        let old = arb_line(&mut rng);
        let new = arb_line(&mut rng);
        let mask = rng.next_u64() as u8;
        let merged = RmwOp::PartialWrite { sector_mask: mask }.apply(old, new);
        for sector in 0..8 {
            let range = sector * 16..(sector + 1) * 16;
            if mask & (1 << sector) != 0 {
                assert_eq!(&merged.0[range.clone()], &new.0[range], "case {case}");
            } else {
                assert_eq!(&merged.0[range.clone()], &old.0[range], "case {case}");
            }
        }
    }
}

#[test]
fn rmw_min_then_max_brackets() {
    let mut rng = SimRng::seed_from_u64(0x0707_7000);
    for case in 0..CASES {
        let old = arb_line(&mut rng);
        let new = arb_line(&mut rng);
        let mn = RmwOp::MinStore.apply(old, new);
        let mx = RmwOp::MaxStore.apply(old, new);
        for w in 0..16 {
            assert!(mn.word(w) <= old.word(w), "case {case}");
            assert!(mn.word(w) <= new.word(w), "case {case}");
            assert!(mx.word(w) >= old.word(w), "case {case}");
            assert!(mx.word(w) >= new.word(w), "case {case}");
            assert!(
                mn.word(w) == old.word(w) || mn.word(w) == new.word(w),
                "case {case}"
            );
        }
    }
}

#[test]
fn min_store_is_idempotent() {
    let mut rng = SimRng::seed_from_u64(0x0707_8000);
    for case in 0..CASES {
        let old = arb_line(&mut rng);
        let new = arb_line(&mut rng);
        let once = RmwOp::MinStore.apply(old, new);
        let twice = RmwOp::MinStore.apply(once, new);
        assert_eq!(once, twice, "case {case}");
    }
}

#[test]
fn tag_pool_never_double_allocates() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x0707_9000 + case);
        let n = rng.gen_range(1..200) as usize;
        let mut pool = TagPool::new();
        let mut held: Vec<Tag> = Vec::new();
        for _ in 0..n {
            if rng.gen_bool(0.5) {
                if let Ok(t) = pool.acquire() {
                    assert!(!held.contains(&t), "double allocation of {t} (case {case})");
                    held.push(t);
                }
            } else if let Some(t) = held.pop() {
                pool.release(t).expect("held tag releases");
            }
        }
        assert_eq!(pool.in_flight(), held.len(), "case {case}");
    }
}

#[test]
fn sparse_memory_matches_reference() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x0707_A000 + case);
        let n = rng.gen_range(1..40) as usize;
        let mut mem = SparseMemory::new();
        let mut reference = vec![0u8; 101_000];
        for _ in 0..n {
            let addr = rng.gen_range(0..100_000);
            let len = rng.gen_range(1..128) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            mem.write(addr, &data);
            reference[addr as usize..addr as usize + data.len()].copy_from_slice(&data);
        }
        // Check a window covering everything.
        let mut out = vec![0u8; 101_000];
        mem.read(0, &mut out);
        assert_eq!(out, reference, "case {case}");
    }
}

#[test]
fn event_queue_pops_sorted() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x0707_B000 + case);
        let n = rng.gen_range(1..100) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_ps(rng.gen_range(0..1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}");
            last = t;
        }
    }
}

#[test]
fn delay_queue_preserves_fifo() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x0707_C000 + case);
        let n = rng.gen_range(1..50) as usize;
        let mut q = DelayQueue::with_latency(SimTime::from_ns(5));
        let mut t = SimTime::ZERO;
        for i in 0..n {
            t += SimTime::from_ps(rng.gen_range(0..1000));
            q.push(t, i).expect("unbounded");
        }
        let mut out = Vec::new();
        while let Some(v) = q.pop_ready(SimTime::from_secs(1)) {
            out.push(v);
        }
        let expected: Vec<usize> = (0..n).collect();
        assert_eq!(out, expected, "case {case}");
    }
}

#[test]
fn fft_roundtrip_via_inverse_energy() {
    use contutto_system::contutto::accel::fft::{fft_in_place, Complex32};
    let mut rng = SimRng::seed_from_u64(0x0707_D000);
    for case in 0..8 {
        let seeds: Vec<u32> = (0..8).map(|_| rng.next_u64() as u32).collect();
        // Parseval: energy preserved (up to 1/N normalization).
        let n = 256usize;
        let input: Vec<Complex32> = (0..n)
            .map(|i| {
                let s = seeds[i % seeds.len()] as f32 / u32::MAX as f32 - 0.5;
                Complex32::new(s, -s * 0.5)
            })
            .collect();
        let time_energy: f32 = input.iter().map(|c| c.abs() * c.abs()).sum();
        let mut freq = input.clone();
        fft_in_place(&mut freq);
        let freq_energy: f32 = freq.iter().map(|c| c.abs() * c.abs()).sum::<f32>() / n as f32;
        if time_energy > 1e-3 {
            let rel = (time_energy - freq_energy).abs() / time_energy;
            assert!(rel < 1e-2, "energy drift {rel} (case {case})");
        }
    }
}

// ------------------------------------------------ snapshot corruption

/// A booted system with enough activity that every snapshot section
/// has meat: tracing on, stores landed, pipelined loads in flight.
fn snapshot_testbed() -> (contutto_system::power8::system::Power8System, Vec<u8>) {
    use contutto_system::contutto::{ContuttoConfig, MemoryPopulation};
    use contutto_system::power8::firmware::layouts;
    use contutto_system::power8::system::Power8System;

    let mut sys = Power8System::boot(
        layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        23,
    )
    .expect("boots");
    sys.enable_tracing(256);
    for i in 0..6u64 {
        sys.store_line(0x10_0000 + i * 128, CacheLine::patterned(900 + i))
            .unwrap();
    }
    for i in 0..3u64 {
        sys.submit_load(0x10_0000 + i * 128).unwrap();
    }
    let image = sys.snapshot();
    (sys, image)
}

#[test]
fn snapshot_truncation_at_every_boundary_is_a_typed_error() {
    use contutto_system::power8::system::Power8System;
    use contutto_system::sim::snapshot::SnapshotImage;

    let (_, image) = snapshot_testbed();
    let boundaries = SnapshotImage::boundaries(&image);
    assert!(boundaries.len() > 2, "multi-section image");
    let mut rng = SimRng::seed_from_u64(0x0BAD_C0DE);
    let mut cuts: Vec<usize> = boundaries
        .iter()
        .copied()
        .filter(|&b| b < image.len())
        .collect();
    // Plus mid-frame cuts: truncation must be typed anywhere, not
    // just on the seams.
    for _ in 0..32 {
        cuts.push(rng.gen_index(image.len()));
    }
    for cut in cuts {
        let mut victim = Power8System::boot(
            contutto_system::power8::firmware::layouts::one_contutto_six_cdimm(
                contutto_system::contutto::ContuttoConfig::base(),
                contutto_system::contutto::MemoryPopulation::dram_8gb(),
            ),
            23,
        )
        .expect("boots");
        let err = victim
            .restore(&image[..cut])
            .expect_err("truncated image must never restore");
        // Any typed error is acceptable; reaching here at all proves
        // no panic. The Display impl must render, too.
        let _ = err.to_string();
    }
}

#[test]
fn snapshot_bitflip_sweep_is_a_typed_error() {
    use contutto_system::power8::system::Power8System;
    use contutto_system::sim::snapshot::RestoreError;

    let (_, image) = snapshot_testbed();
    let mut rng = SimRng::seed_from_u64(0x0F11_F1A9);
    // Every header byte, then a sampled sweep over the body: one bit
    // per chosen byte. CRC32 catches every single-bit flip, so the
    // only acceptable outcomes are typed errors — never Ok, never a
    // panic.
    let mut positions: Vec<usize> = (0..14.min(image.len())).collect();
    for _ in 0..96 {
        positions.push(rng.gen_index(image.len()));
    }
    for pos in positions {
        let bit = rng.gen_index(8) as u8;
        let mut corrupt = image.clone();
        corrupt[pos] ^= 1 << bit;
        let mut victim = Power8System::boot(
            contutto_system::power8::firmware::layouts::one_contutto_six_cdimm(
                contutto_system::contutto::ContuttoConfig::base(),
                contutto_system::contutto::MemoryPopulation::dram_8gb(),
            ),
            23,
        )
        .expect("boots");
        let err = victim
            .restore(&corrupt)
            .expect_err("corrupt image must never be silently accepted");
        match pos {
            0..=3 => assert!(
                matches!(err, RestoreError::BadMagic),
                "magic flip at {pos}: {err:?}"
            ),
            4..=5 => assert!(
                matches!(err, RestoreError::VersionMismatch { .. }),
                "version flip at {pos}: {err:?}"
            ),
            6..=13 => assert!(
                matches!(err, RestoreError::SectionCrcMismatch { ref section } if section == "header")
                    || matches!(err, RestoreError::Truncated { .. }),
                "header flip at {pos}: {err:?}"
            ),
            _ => {
                let _ = err.to_string();
            }
        }
    }
}
