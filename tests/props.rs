//! Property-based tests on the core data structures and protocol
//! invariants.

use proptest::prelude::*;

use contutto_system::dmi::command::{CacheLine, RmwOp, TagPool};
use contutto_system::dmi::crc::crc16;
use contutto_system::dmi::frame::{
    line_to_downstream_beats, line_to_upstream_beats, CommandHeader, DownstreamFrame,
    DownstreamPayload, LineAssembler, UpstreamFrame, UpstreamPayload,
};
use contutto_system::dmi::Tag;
use contutto_system::memdev::SparseMemory;
use contutto_system::sim::{DelayQueue, EventQueue, SimTime};

fn arb_line() -> impl Strategy<Value = CacheLine> {
    any::<u64>().prop_map(CacheLine::patterned)
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    (0u8..32).prop_map(|t| Tag::new(t).expect("in range"))
}

proptest! {
    #[test]
    fn downstream_frames_roundtrip(seq in 0u8..128, tag in arb_tag(), addr: u64, line in arb_line()) {
        let frames = vec![
            DownstreamFrame { seq, ack: None, payload: DownstreamPayload::Idle },
            DownstreamFrame {
                seq,
                ack: Some((seq + 5) % 128),
                payload: DownstreamPayload::Command { tag, header: CommandHeader::Read { addr } },
            },
            DownstreamFrame {
                seq,
                ack: None,
                payload: DownstreamPayload::WriteData {
                    tag,
                    beat: seq % 8,
                    data: line.0[0..16].try_into().expect("16 bytes"),
                },
            },
        ];
        for f in frames {
            let back = DownstreamFrame::from_bytes(&f.to_bytes()).expect("clean frame");
            prop_assert_eq!(back, f);
        }
    }

    #[test]
    fn upstream_frames_roundtrip(seq in 0u8..128, tag in arb_tag(), second in proptest::option::of(arb_tag())) {
        let f = UpstreamFrame {
            seq,
            ack: Some(seq),
            payload: UpstreamPayload::Done { first: tag, second },
        };
        let back = UpstreamFrame::from_bytes(&f.to_bytes()).expect("clean frame");
        prop_assert_eq!(back, f);
    }

    #[test]
    fn any_single_bitflip_is_detected(payload_seed: u64, byte in 0usize..28, bit in 0u8..8) {
        let f = DownstreamFrame {
            seq: (payload_seed % 128) as u8,
            ack: None,
            payload: DownstreamPayload::WriteData {
                tag: Tag::new((payload_seed % 32) as u8).expect("in range"),
                beat: (payload_seed % 8) as u8,
                data: CacheLine::patterned(payload_seed).0[0..16].try_into().expect("16"),
            },
        };
        let mut bytes = f.to_bytes();
        bytes[byte] ^= 1 << bit;
        prop_assert!(DownstreamFrame::from_bytes(&bytes).is_err());
    }

    #[test]
    fn crc16_differs_for_different_inputs(a: Vec<u8>, b: Vec<u8>) {
        if a != b && a.len() == b.len() && a.len() < 64 {
            // Not a guarantee in general, but collisions in short
            // random pairs are ~2^-16; treat equality as suspicious
            // only when inputs are identical.
            if crc16(&a) == crc16(&b) {
                // allowed, but must be rare; just don't fail the build
            }
        }
        prop_assert_eq!(crc16(&a), crc16(&a.clone()));
    }

    #[test]
    fn line_beats_reassemble_in_any_order(line in arb_line(), tag in arb_tag(), order in Just(()).prop_perturb(|_, mut rng| {
        use proptest::test_runner::RngAlgorithm;
        let _ = RngAlgorithm::default();
        let mut idx: Vec<usize> = (0..8).collect();
        for i in (1..8).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            idx.swap(i, j);
        }
        idx
    })) {
        let beats = line_to_downstream_beats(tag, &line);
        let mut asm = LineAssembler::downstream();
        for &i in &order {
            if let DownstreamPayload::WriteData { beat, data, .. } = &beats[i] {
                asm.add_beat(*beat, data);
            }
        }
        prop_assert!(asm.is_complete());
        prop_assert_eq!(asm.into_line(), line);
    }

    #[test]
    fn upstream_beats_reassemble(line in arb_line(), tag in arb_tag()) {
        let beats = line_to_upstream_beats(tag, &line);
        let mut asm = LineAssembler::upstream();
        for p in beats.iter().rev() {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.add_beat(*beat, data);
            }
        }
        prop_assert_eq!(asm.into_line(), line);
    }

    #[test]
    fn rmw_partial_write_only_touches_masked_sectors(old in arb_line(), new in arb_line(), mask: u8) {
        let merged = RmwOp::PartialWrite { sector_mask: mask }.apply(old, new);
        for sector in 0..8 {
            let range = sector * 16..(sector + 1) * 16;
            if mask & (1 << sector) != 0 {
                prop_assert_eq!(&merged.0[range.clone()], &new.0[range]);
            } else {
                prop_assert_eq!(&merged.0[range.clone()], &old.0[range]);
            }
        }
    }

    #[test]
    fn rmw_min_then_max_brackets(old in arb_line(), new in arb_line()) {
        let mn = RmwOp::MinStore.apply(old, new);
        let mx = RmwOp::MaxStore.apply(old, new);
        for w in 0..16 {
            prop_assert!(mn.word(w) <= old.word(w));
            prop_assert!(mn.word(w) <= new.word(w));
            prop_assert!(mx.word(w) >= old.word(w));
            prop_assert!(mx.word(w) >= new.word(w));
            prop_assert!(mn.word(w) == old.word(w) || mn.word(w) == new.word(w));
        }
    }

    #[test]
    fn min_store_is_idempotent(old in arb_line(), new in arb_line()) {
        let once = RmwOp::MinStore.apply(old, new);
        let twice = RmwOp::MinStore.apply(once, new);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tag_pool_never_double_allocates(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut pool = TagPool::new();
        let mut held: Vec<Tag> = Vec::new();
        for acquire in ops {
            if acquire {
                if let Ok(t) = pool.acquire() {
                    prop_assert!(!held.contains(&t), "double allocation of {t}");
                    held.push(t);
                }
            } else if let Some(t) = held.pop() {
                pool.release(t).expect("held tag releases");
            }
        }
        prop_assert_eq!(pool.in_flight(), held.len());
    }

    #[test]
    fn sparse_memory_matches_reference(model_ops in proptest::collection::vec(
        (0u64..100_000, proptest::collection::vec(any::<u8>(), 1..128)), 1..40)) {
        let mut mem = SparseMemory::new();
        let mut reference = vec![0u8; 101_000];
        for (addr, data) in &model_ops {
            mem.write(*addr, data);
            reference[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        // Check a window covering everything.
        let mut out = vec![0u8; 101_000];
        mem.read(0, &mut out);
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn delay_queue_preserves_fifo(latencies in proptest::collection::vec(0u64..1000, 1..50)) {
        let mut q = DelayQueue::with_latency(SimTime::from_ns(5));
        let mut t = SimTime::ZERO;
        for (i, l) in latencies.iter().enumerate() {
            t += SimTime::from_ps(*l);
            q.push(t, i).expect("unbounded");
        }
        let mut out = Vec::new();
        while let Some(v) = q.pop_ready(SimTime::from_secs(1)) {
            out.push(v);
        }
        let expected: Vec<usize> = (0..latencies.len()).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn fft_roundtrip_via_inverse_energy(seeds in proptest::collection::vec(any::<u32>(), 8)) {
        use contutto_system::contutto::accel::fft::{fft_in_place, Complex32};
        // Parseval: energy preserved (up to 1/N normalization).
        let n = 256usize;
        let input: Vec<Complex32> = (0..n)
            .map(|i| {
                let s = seeds[i % seeds.len()] as f32 / u32::MAX as f32 - 0.5;
                Complex32::new(s, -s * 0.5)
            })
            .collect();
        let time_energy: f32 = input.iter().map(|c| c.abs() * c.abs()).sum();
        let mut freq = input.clone();
        fft_in_place(&mut freq);
        let freq_energy: f32 = freq.iter().map(|c| c.abs() * c.abs()).sum::<f32>() / n as f32;
        if time_energy > 1e-3 {
            let rel = (time_energy - freq_energy).abs() / time_energy;
            prop_assert!(rel < 1e-2, "energy drift {rel}");
        }
    }
}
