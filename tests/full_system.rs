//! Integration: whole-system boot and end-to-end memory operations
//! across mixed Centaur/ConTutto configurations.

use contutto_system::centaur::CentaurConfig;
use contutto_system::contutto::{ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::CacheLine;
use contutto_system::memdev::MediaKind;
use contutto_system::power8::firmware::{layouts, Firmware, SlotPopulation};
use contutto_system::power8::fsp::ServiceProcessor;
use contutto_system::power8::Power8System;

#[test]
fn two_contutto_four_cdimm_configuration_boots() {
    // Paper §3.1: "we have tested system configurations with one
    // ConTutto card and six CDIMMs as well as two ConTutto cards and
    // four CDIMMs."
    let sys = Power8System::boot(
        layouts::two_contutto_four_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        13,
    )
    .expect("boot");
    assert_eq!(sys.channels().len(), 6);
    // All DRAM → one contiguous volatile map.
    let regions = sys.memory_map().regions();
    assert_eq!(regions.len(), 6);
    let mut cursor = 0;
    let mut sorted: Vec<_> = regions.iter().collect();
    sorted.sort_by_key(|r| r.base);
    for r in sorted {
        assert_eq!(r.base, cursor, "contiguous volatile map");
        cursor += r.hw_size;
    }
}

#[test]
fn data_written_on_one_boot_region_is_isolated_from_others() {
    let mut sys = Power8System::boot(
        layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        7,
    )
    .expect("boot");
    let regions: Vec<(u64, usize)> = sys
        .memory_map()
        .regions()
        .iter()
        .map(|r| (r.base, r.channel))
        .collect();
    // Write a distinct line at the base of every region; read back all.
    for (i, (base, _)) in regions.iter().enumerate() {
        sys.store_line(*base + 0x2000, CacheLine::patterned(i as u64))
            .expect("store");
    }
    for (i, (base, _)) in regions.iter().enumerate() {
        let (line, _) = sys.load_line(*base + 0x2000).expect("load");
        assert_eq!(line, CacheLine::patterned(i as u64), "region {i}");
    }
}

#[test]
fn mram_system_persists_through_the_whole_stack() {
    let mut sys = Power8System::boot(layouts::mram_storage_system(), 5).expect("boot");
    let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
    assert_eq!(sys.media_at(nv_base), Some(MediaKind::SttMram));
    let record = CacheLine::patterned(0xDEAD);
    sys.store_line(nv_base, record).expect("store");
    let (back, _) = sys.load_line(nv_base).expect("load");
    assert_eq!(back, record);
}

#[test]
fn latency_knob_is_visible_through_the_full_system() {
    let slow = Power8System::boot(
        layouts::single_contutto_for_latency(ContuttoConfig::with_knob(7)),
        3,
    )
    .expect("boot");
    let fast = Power8System::boot(
        layouts::single_contutto_for_latency(ContuttoConfig::base()),
        3,
    )
    .expect("boot");
    let measure = |mut sys: Power8System| {
        let region = sys
            .memory_map()
            .regions()
            .iter()
            .find(|r| r.channel == 2)
            .unwrap()
            .base;
        sys.load_line(region).unwrap(); // warm
        let t0 = sys.channel_mut(2).unwrap().channel.now();
        sys.load_line(region).unwrap();
        sys.channel_mut(2).unwrap().channel.now() - t0
    };
    let slow_lat = measure(slow);
    let fast_lat = measure(fast);
    let delta = slow_lat.saturating_sub(fast_lat);
    // 7 knob steps x 24 ns = 168 ns, quantized to frame slots.
    assert!(
        (160..=176).contains(&delta.as_ns()),
        "knob delta {delta} (fast {fast_lat}, slow {slow_lat})"
    );
}

#[test]
fn plug_rule_violations_fail_boot() {
    let mut fsp = ServiceProcessor::new(3);
    let bad = vec![
        SlotPopulation::Cdimm {
            config: CentaurConfig::optimized(),
            capacity: 32 << 30,
        },
        SlotPopulation::ConTutto {
            config: ContuttoConfig::base(),
            population: MemoryPopulation::dram_8gb(),
        },
    ];
    assert!(Firmware::new().boot(bad, &mut fsp, 1).is_err());
}

#[test]
fn nvdimm_channel_counts_as_nonvolatile_in_the_map() {
    let slots = vec![
        SlotPopulation::Cdimm {
            config: CentaurConfig::optimized(),
            capacity: 32 << 30,
        },
        SlotPopulation::Empty,
        SlotPopulation::ConTutto {
            config: ContuttoConfig::base(),
            population: MemoryPopulation::nvdimm_8gb(),
        },
        SlotPopulation::Empty,
    ];
    let sys = Power8System::boot(slots, 9).expect("boot");
    assert_eq!(sys.nonvolatile_slots(), vec![2]);
    let nv = sys.memory_map().nonvolatile_regions();
    assert_eq!(nv.len(), 1);
    assert_eq!(nv[0].flags.kind, MediaKind::NvdimmN);
    assert!(nv[0].flags.preserved);
    assert!(nv[0].flags.needs_driver);
    // 8 GB NVDIMM: hardware window == media size (no lying needed).
    assert!(!nv[0].is_undersized_media());
}
