//! Fault injection on the DMI link: CRC errors, replay recovery with
//! the ConTutto freeze workaround (§3.3(ii)), training retries, and
//! FSP deconfiguration after the error budget (§3.2).
//!
//! ```text
//! cargo run --release --example link_errors
//! ```

use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::training::{LinkTrainer, TrainerConfig};
use contutto_system::dmi::{BitErrorInjector, CacheLine, DmiBuffer};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};
use contutto_system::power8::firmware::P8_MAX_FRTL_BUS_CYCLES;
use contutto_system::power8::fsp::{ServiceProcessor, Severity};
use contutto_system::sim::SimTime;

fn main() {
    // 1. A noisy channel: 1 % of frames corrupted each way.
    println!("-- replay under a 1% frame-error rate --");
    let mut cfg = ChannelConfig::contutto();
    cfg.down_errors = BitErrorInjector::bernoulli(0.01, 1234);
    cfg.up_errors = BitErrorInjector::bernoulli(0.01, 5678);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    for i in 0..50u64 {
        let line = CacheLine::patterned(i);
        ch.write_line_blocking(i * 128, line).expect("write");
        let (back, _) = ch.read_line_blocking(i * 128).expect("read");
        assert_eq!(back, line, "data integrity under errors");
    }
    let stats = ch.host_stats();
    println!("50 write+read pairs completed with zero data corruption");
    println!(
        "host saw {} CRC errors, {} sequence errors, triggered {} replays ({} frames replayed)",
        stats.crc_errors, stats.seq_errors, stats.replays_triggered, stats.frames_replayed
    );

    // 2. The FRTL design story: the naive FPGA design fails training.
    println!("\n-- FRTL budget: optimized vs naive FPGA design --");
    let trainer_cfg = TrainerConfig {
        max_frtl_bus_cycles: P8_MAX_FRTL_BUS_CYCLES,
        ..TrainerConfig::default()
    };
    for cfg in [ContuttoConfig::base(), ContuttoConfig::naive()] {
        let card = ConTutto::new(cfg, MemoryPopulation::dram_8gb());
        let roundtrip = card.frtl_turnaround() + SimTime::from_ns(8); // + wire/frames
        let result = LinkTrainer::new(trainer_cfg.clone(), 7).train(roundtrip);
        println!(
            "{:<16} turnaround {:>5}  -> {}",
            card.name(),
            card.frtl_turnaround(),
            match result {
                Ok(o) => format!("trained (FRTL {} bus cycles)", o.frtl_bus_cycles.count()),
                Err(e) => format!("REJECTED: {e}"),
            }
        );
    }
    println!(
        "(the paper's workarounds — direct clock capture + 2-stage CRC — exist to pass this check)"
    );

    // 3. FSP error budget: a flapping channel gets deconfigured.
    println!("\n-- FSP: error budget and deconfiguration --");
    let mut fsp = ServiceProcessor::new(2);
    for attempt in 0..4u64 {
        match fsp.check_channel(3) {
            Ok(()) => {
                fsp.log(
                    SimTime::from_ms(attempt),
                    3,
                    Severity::Unrecovered,
                    "persistent training failure",
                );
                println!("attempt {attempt}: channel 3 errored (logged)");
            }
            Err(e) => {
                println!("attempt {attempt}: {e}");
            }
        }
    }
    println!("FSP log:");
    for entry in fsp.entries() {
        println!(
            "  [{}] ch{} {:?}: {}",
            entry.at, entry.channel, entry.severity, entry.message
        );
    }
}
