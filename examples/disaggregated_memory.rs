//! The motivation behind the §4.1 experiments: "One such model is
//! disaggregated remote memory whereby a large pool of memory is
//! maintained as a shared resource ... it also increases the latency
//! to memory. Understanding the effects of such increase in memory
//! latency on end-to-end application performance is vital to knowing
//! the viability of such models."
//!
//! This example sweeps "remote-memory distance" (added latency, via
//! the ConTutto knob and beyond) and reports what fraction of the
//! SPEC CINT2006 suite stays viable at different tolerance thresholds
//! — and contrasts it with pointer chasing, where the verdict flips.
//!
//! ```text
//! cargo run --release --example disaggregated_memory
//! ```

use contutto_system::centaur::{Centaur, CentaurConfig};
use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::power8::caches::CacheHierarchy;
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};
use contutto_system::power8::latency::{LatencyProbe, MeasurementLevel};
use contutto_system::sim::SimTime;
use contutto_system::workloads::pointer_chase::PointerChase;
use contutto_system::workloads::spec::{self, remote_memory_viability, SpecModel};

fn main() {
    let probe = LatencyProbe::default();
    let model = SpecModel::default();

    // Local baseline: the optimized Centaur.
    let mut local = DmiChannel::new(
        ChannelConfig::centaur(),
        Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
    );
    let base = probe.measure(&mut local, MeasurementLevel::Software);
    println!(
        "local memory latency: {:.0} ns (measured)",
        base.as_ns_f64()
    );

    println!("\n-- SPEC viability vs remote-memory distance --");
    println!(
        "{:>12} {:>16} {:>16} {:>16}",
        "added (ns)", "viable @2%", "viable @10%", "viable @35%"
    );
    for added_ns in [100u64, 300, 500, 1000, 2000, 5000] {
        let added = SimTime::from_ns(added_ns);
        println!(
            "{:>12} {:>15.0}% {:>15.0}% {:>15.0}%",
            added_ns,
            remote_memory_viability(&model, base, added, 0.02) * 100.0,
            remote_memory_viability(&model, base, added, 0.10) * 100.0,
            remote_memory_viability(&model, base, added, 0.35) * 100.0,
        );
    }
    println!("paper: \"a case for remote, disaggregated memory can be made, at least for a class of applications\"");

    // The knob provides the hardware for exactly this study: measure
    // real per-knob latencies and show per-benchmark degradation.
    println!("\n-- measured knob sweep (the experiment ConTutto enables) --");
    for knob in [0u8, 3, 7] {
        let mut ch = DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(
                ContuttoConfig::with_knob(knob),
                MemoryPopulation::dram_8gb(),
            )),
        );
        let lat = probe.measure(&mut ch, MeasurementLevel::Software);
        let s = spec::summarize(&model, lat, base);
        println!(
            "knob {knob}: {:>5.0} ns -> {:>2.0}% of suite <2% slower, worst {:.0}%",
            lat.as_ns_f64(),
            s.under_2pct * 100.0,
            s.worst * 100.0
        );
    }

    // The counterexample the paper warns about: pointer chasing.
    println!("\n-- but pointer chasing eats the full latency per hop --");
    let chase = PointerChase {
        nodes: 512,
        ..PointerChase::default()
    };
    let mut fast = DmiChannel::new(
        ChannelConfig::centaur(),
        Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
    );
    let list = chase.build(&mut fast);
    let mut caches = CacheHierarchy::power8_core();
    let near = chase.traverse(&mut fast, &mut caches, &list, 256);

    let mut slow = DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(
            ContuttoConfig::with_knob(7),
            MemoryPopulation::dram_8gb(),
        )),
    );
    let list = chase.build(&mut slow);
    let mut caches = CacheHierarchy::power8_core();
    let far = chase.traverse(&mut slow, &mut caches, &list, 256);
    println!(
        "linked-list hop: {:.0} ns local vs {:.0} ns remote ({:.1}x slower — vs <2% for half of SPEC)",
        near.ns_per_hop,
        far.ns_per_hop,
        far.ns_per_hop / near.ns_per_hop
    );
    println!("paper: \"graph and pointer chasing ... degradation could be much higher\"");
}
