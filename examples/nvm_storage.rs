//! The §4.2 experiments: storage-class memory on the memory bus —
//! pmem on STT-MRAM, the FIO attach-point comparison (Figures 9/10),
//! the GPFS write cache (Table 4), and an NVDIMM power-loss drill.
//!
//! ```text
//! cargo run --release --example nvm_storage
//! ```

use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::memdev::MramGeneration;
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};
use contutto_system::sim::SimTime;
use contutto_system::storage::blockdev::{mram_contutto_device, BlockDevice, PcieCard, SasHdd};
use contutto_system::storage::pmem::PmemDriver;
use contutto_system::storage::writecache::WriteCache;
use contutto_system::workloads::fio::{FioEngine, FioPattern};
use contutto_system::workloads::gpfs::GpfsExperiment;

fn main() {
    // 1. The pmem driver on MRAM behind ConTutto.
    println!("-- pmem on STT-MRAM behind ConTutto --");
    let mut ch = DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
        )),
    );
    let pmem = PmemDriver::default();
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    let t0 = ch.now();
    let durable = pmem.write_persistent(&mut ch, 0x10_0000, &payload);
    println!(
        "4 KiB persistent write (stores + flush): {:.2} us",
        (durable - t0).as_us_f64()
    );
    let mut back = vec![0u8; 4096];
    let t0 = ch.now();
    let done = pmem.read(&mut ch, 0x10_0000, &mut back);
    assert_eq!(back, payload);
    println!(
        "4 KiB read back: {:.2} us (verified)",
        (done - t0).as_us_f64()
    );

    // 2. FIO across attach points (Figures 9/10).
    println!("\n-- FIO 4 KiB random IO, QD1 (Figures 9 & 10) --");
    let engine = FioEngine::default();
    let mut devices: Vec<Box<dyn BlockDevice>> = vec![
        Box::new(PcieCard::flash_x4()),
        Box::new(PcieCard::nvram()),
        Box::new(PcieCard::mram()),
        Box::new(mram_contutto_device()),
    ];
    println!(
        "{:<18} {:>12} {:>14} {:>12} {:>14}",
        "device", "read IOPS", "read lat (us)", "write IOPS", "write lat (us)"
    );
    for dev in &mut devices {
        let r = engine.run(dev.as_mut(), FioPattern::RandRead);
        let w = engine.run(dev.as_mut(), FioPattern::RandWrite);
        println!(
            "{:<18} {:>12.0} {:>14.2} {:>12.0} {:>14.2}",
            r.device,
            r.iops,
            r.latency.mean().as_us_f64(),
            w.iops,
            w.latency.mean().as_us_f64()
        );
    }

    // 3. GPFS write cache (Table 4).
    println!("\n-- GPFS small-random-write IOPS (Table 4) --");
    for row in GpfsExperiment::default().table4() {
        println!(
            "{:<28} {:>18} {:>10.0} IOPS",
            row.technology, row.interface, row.iops
        );
    }

    // 4. NVDIMM power-loss drill: writes survive via the save engine.
    println!("\n-- NVDIMM-N power-loss drill --");
    let mut nv = contutto_system::memdev::NvdimmN::new(1 << 20, Default::default());
    nv.write(SimTime::ZERO, 0, b"committed transaction log record");
    let quiesced = nv.power_loss(SimTime::from_ms(5));
    println!("power lost at 5 ms; on-DIMM save engine done at {quiesced}");
    let usable = nv
        .power_restore(quiesced + SimTime::from_ms(1))
        .expect("clean power cycle restores intact");
    let mut buf = [0u8; 32];
    nv.read(usable, 0, &mut buf);
    assert_eq!(&buf, b"committed transaction log record");
    println!("contents restored and verified after power returns at {usable}");

    // 5. A write-cache in action: watch the destage pattern.
    println!("\n-- write-cache destage (random writes become sequential) --");
    let mut cache = WriteCache::new(mram_contutto_device(), SasHdd::new());
    let mut now = SimTime::ZERO;
    for lba in [909_000u64, 12, 13, 500_000, 11, 14] {
        now = cache.write(now, lba, &[0u8; 4096]);
    }
    println!(
        "6 scattered writes acknowledged in {:.1} us total",
        now.as_us_f64()
    );
    let end = cache.destage(now);
    println!(
        "destage (sorted, mostly sequential at the platter) finished at {:.2} ms",
        end.as_secs_f64() * 1e3
    );
}

use contutto_system::memdev::MemoryDevice;
