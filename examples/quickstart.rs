//! Quickstart: boot a POWER8 system with one ConTutto card and six
//! CDIMMs, train the links, and issue loads/stores to both memory
//! regions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use contutto_system::contutto::{ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::CacheLine;
use contutto_system::power8::firmware::layouts;
use contutto_system::power8::Power8System;

fn main() {
    // Boot the paper's tested mixed configuration (§3.1): one ConTutto
    // card (which blocks its adjacent slot) plus six Centaur CDIMMs.
    let slots =
        layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
    let mut system = Power8System::boot(slots, 42).expect("IPL");

    println!("booted: {} channels trained", system.channels().len());
    for ch in system.channels() {
        println!(
            "  slot {}: {:>8} behind a {} (FRTL {} in {} training attempt(s))",
            ch.slot,
            format!("{} GB", ch.capacity >> 30),
            ch.kind,
            ch.training.frtl,
            ch.training.attempts,
        );
    }
    println!("memory map:");
    for r in system.memory_map().regions() {
        println!(
            "  {:#014x}..{:#014x}  {:>9}  slot {}{}",
            r.base,
            r.base + r.os_size,
            r.flags.kind.to_string(),
            r.channel,
            if r.is_undersized_media() {
                "  (hardware decodes a 4 GB window)"
            } else {
                ""
            }
        );
    }

    // Store + load through a CDIMM channel.
    let line = CacheLine::patterned(7);
    system.store_line(0x100_0000, line).expect("store");
    let (back, t) = system.load_line(0x100_0000).expect("load");
    assert_eq!(back, line);
    println!("\nCDIMM store+load roundtrip verified at t={t}");

    // And through the ConTutto channel (its region sits after the
    // CDIMM DRAM in the map).
    let contutto_region = system
        .memory_map()
        .regions()
        .iter()
        .find(|r| r.channel == 0)
        .expect("contutto plugs slot 0")
        .base;
    let line2 = CacheLine::patterned(9);
    system.store_line(contutto_region, line2).expect("store");
    let (back2, t2) = system.load_line(contutto_region).expect("load");
    assert_eq!(back2, line2);
    println!("ConTutto store+load roundtrip verified at t={t2}");
    println!("\n(The FPGA path is several times slower than the ASIC — that");
    println!(" is the price of a reprogrammable memory buffer, paper §4.1.)");
}
