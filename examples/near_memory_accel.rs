//! The §4.3 experiments: acceleration close to memory — in-line
//! command engines (Figure 11), block accelerators driven by control
//! blocks through the Access processor (Figure 12), and the Table 5
//! comparison against single-thread software.
//!
//! ```text
//! cargo run --release --example near_memory_accel
//! ```

use contutto_system::contutto::accel::block::{BlockAccelDriver, BlockOp, ControlBlock};
use contutto_system::contutto::accel::inline::min_store_command;
use contutto_system::contutto::access::{assemble, AccessConfig, AccessProcessor};
use contutto_system::contutto::avalon::AvalonBus;
use contutto_system::contutto::memctl::{MemoryController, MemoryKind};
use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::dmi::{CacheLine, Tag};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};
use contutto_system::sim::SimTime;
use contutto_system::workloads::baseline::SoftwareBaselines;

fn accel_bus() -> AvalonBus {
    AvalonBus::new(
        vec![
            MemoryController::new(MemoryKind::Ddr3Dram, 1 << 30),
            MemoryController::new(MemoryKind::Ddr3Dram, 1 << 30),
        ],
        5,
    )
}

fn main() {
    // 1. In-line acceleration (Figure 11): a min-store executes as one
    //    atomic round trip instead of software's read-modify-write.
    println!("-- in-line acceleration: min-store through the full channel --");
    let mut ch = DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    let mut initial = CacheLine::ZERO;
    for w in 0..16 {
        initial.set_word(w, 1000 + w as u64);
    }
    ch.write_line_blocking(0x4000, initial).expect("seed");
    let mut candidate = CacheLine::ZERO;
    for w in 0..16 {
        candidate.set_word(w, if w % 2 == 0 { 5 } else { 5000 });
    }
    let cmd = min_store_command(Tag::new(0).unwrap(), 0x4000, candidate);
    // (The channel assigns its own tag; reuse the op.)
    let op = cmd.op;
    let t0 = ch.now();
    let tag = ch.submit(op).expect("submit min-store");
    let deadline = ch.now() + SimTime::from_ms(1);
    while let Some(c) = ch.next_completion(deadline) {
        if c.tag == tag {
            break;
        }
    }
    println!(
        "min-store completed in {:.0} ns (one command round trip)",
        (ch.now() - t0).as_ns_f64()
    );
    let (result, _) = ch.read_line_blocking(0x4000).expect("read back");
    assert_eq!(result.word(0), 5);
    assert_eq!(result.word(1), 1001);
    println!(
        "word0 = min(1000, 5) = {}, word1 = min(1001, 5000) = {} (verified)",
        result.word(0),
        result.word(1)
    );

    // 2. The programmable Access processor (Figure 12): write, load
    //    and run a real program.
    println!("\n-- Access processor: a hand-written block-copy program --");
    let program_text = "set r1, 0          ; source
set r2, 0x1000000  ; destination
set r3, 1048576    ; one MiB
copy r1, r2, r3
fence
halt";
    println!("{program_text}\n");
    let program = assemble(program_text).expect("assembles");
    let mut avalon = accel_bus();
    let mut ap = AccessProcessor::new(AccessConfig::default(), &mut avalon);
    let payload: Vec<u8> = (0..1_048_576u32).map(|i| (i % 253) as u8).collect();
    ap.dma_write(0, &payload);
    let done = ap.run(&program, 1, SimTime::ZERO).expect("program runs");
    let mut back = vec![0u8; payload.len()];
    ap.dma_read(0x100_0000, &mut back);
    assert_eq!(back, payload);
    println!(
        "copied 1 MiB in {:.1} us ({:.2} GB/s), {} instructions, verified",
        done.as_us_f64(),
        payload.len() as f64 / done.as_secs_f64() / 1e9,
        ap.perf().instructions
    );

    // 3. Table 5: the three accelerated functions vs software.
    println!("\n-- Table 5: near-memory accelerators vs software --");
    let size: u64 = 32 << 20;
    let sw = SoftwareBaselines;

    let mut avalon = accel_bus();
    let cb = BlockAccelDriver
        .execute(
            &mut avalon,
            ControlBlock::new(BlockOp::Memcpy {
                src: 0,
                dst: 1 << 29,
                len: size,
            }),
            SimTime::ZERO,
        )
        .expect("memcpy");
    let (_, sw_memcpy) = sw.memcpy(&vec![0u8; 1 << 20], &mut vec![0u8; 1 << 20]);
    println!(
        "memcpy:  ConTutto {:.2} GB/s  vs software {:.2} GB/s (paper: 6 vs 3.2)",
        cb.throughput_bytes_per_sec(SimTime::ZERO) / 1e9,
        sw_memcpy
    );

    let mut avalon = accel_bus();
    let cb = BlockAccelDriver
        .execute(
            &mut avalon,
            ControlBlock::new(BlockOp::MinMax { addr: 0, len: size }),
            SimTime::ZERO,
        )
        .expect("minmax");
    let (_, _, _, sw_minmax) = sw.minmax(&vec![9u32; 1 << 18]);
    println!(
        "min/max: ConTutto {:.2} GB/s  vs software {:.2} GB/s (paper: 10.5 vs 0.5)",
        cb.throughput_bytes_per_sec(SimTime::ZERO) / 1e9,
        sw_minmax
    );

    let mut avalon = accel_bus();
    let fft_len: u64 = 8 << 20;
    let cb = BlockAccelDriver
        .execute(
            &mut avalon,
            ControlBlock::new(BlockOp::Fft {
                src: 0,
                dst: 1 << 29,
                len: fft_len,
            }),
            SimTime::ZERO,
        )
        .expect("fft");
    let gs = (fft_len as f64 / 8.0) / cb.completed_at.as_secs_f64() / 1e9;
    let mut samples = vec![contutto_system::contutto::accel::fft::Complex32::default(); 8192];
    let (_, sw_fft) = sw.fft_blocks(&mut samples);
    println!(
        "FFT:     ConTutto {gs:.2} Gsamples/s vs software {sw_fft:.2} Gsamples/s (paper: 1.3 vs 0.68)"
    );
    println!(
        "         ({} x 1024-point blocks transformed and deposited)",
        cb.blocks_done
    );
}
