//! The §4.1 experiment: characterize application performance under
//! varying memory latency — Tables 2 & 3 and Figures 6 & 7.
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use contutto_system::centaur::{Centaur, CentaurConfig};
use contutto_system::contutto::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_system::power8::channel::{ChannelConfig, DmiChannel};
use contutto_system::power8::latency::{LatencyProbe, MeasurementLevel};
use contutto_system::workloads::db2::Db2Workload;
use contutto_system::workloads::spec::{self, SpecModel};

fn main() {
    let probe = LatencyProbe::default();
    let db2 = Db2Workload::paper_suite();
    let model = SpecModel::default();

    println!("-- Centaur latency knobs (Table 2) --");
    let mut base_latency = None;
    for cfg in CentaurConfig::table2_settings() {
        let name = cfg.name;
        let mut ch = DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(cfg, 8 << 30)),
        );
        let lat = probe.measure(&mut ch, MeasurementLevel::Nest);
        base_latency.get_or_insert(lat);
        println!(
            "{name:<24} latency {:>7.1} ns   DB2 BLU suite {:>6.0} s",
            lat.as_ns_f64(),
            db2.total_seconds(lat)
        );
    }

    println!("\n-- ConTutto latency knob (Table 3) --");
    let mut centaur = DmiChannel::new(
        ChannelConfig::centaur(),
        Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
    );
    let centaur_sw = probe.measure(&mut centaur, MeasurementLevel::Software);
    println!(
        "centaur-optimized        latency {:>7.1} ns (software level)",
        centaur_sw.as_ns_f64()
    );
    let mut contutto_latencies = Vec::new();
    for knob in [0u8, 2, 6, 7] {
        let cfg = ContuttoConfig::with_knob(knob);
        let name = cfg.name;
        let mut ch = DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(cfg, MemoryPopulation::dram_8gb())),
        );
        let lat = probe.measure(&mut ch, MeasurementLevel::Software);
        println!("{name:<24} latency {:>7.1} ns", lat.as_ns_f64());
        contutto_latencies.push((name, lat));
    }

    println!("\n-- SPEC CINT2006 degradation at the slowest knob (Figure 7) --");
    let (_, slowest) = contutto_latencies.last().copied().expect("measured");
    for b in spec::suite() {
        let d = model.degradation(&b, slowest, centaur_sw);
        let bar = "#".repeat((d * 100.0) as usize);
        println!("{:<18} {:>6.1}%  {bar}", b.name, d * 100.0);
    }
    let s = spec::summarize(&model, slowest, centaur_sw);
    println!(
        "\nat {:.0} ns ({:.1}x Centaur): {:.0}% of the suite <2% slower, {:.0}% <10%, worst {:.0}%",
        slowest.as_ns_f64(),
        slowest.as_ns_f64() / centaur_sw.as_ns_f64(),
        s.under_2pct * 100.0,
        s.under_10pct * 100.0,
        s.worst * 100.0
    );
    println!("paper: \"the overall performance degradation is not proportional to the increase in latency\"");
}
