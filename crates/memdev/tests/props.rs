//! Property-based tests for the device models: functional equivalence
//! against a reference store, timing monotonicity, and the flash
//! program/erase state machine.

use proptest::prelude::*;

use contutto_memdev::flash::{FlashConfig, NandFlash};
use contutto_memdev::{
    DdrTimings, Dram, HardDiskDrive, MemoryDevice, MramGeneration, NvdimmN, SttMram,
};
use contutto_sim::SimTime;

fn arb_ops() -> impl Strategy<Value = Vec<(bool, u64, Vec<u8>)>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            0u64..60_000,
            proptest::collection::vec(any::<u8>(), 1..256),
        ),
        1..40,
    )
}

/// Runs a random op sequence against a device and a flat reference,
/// checking functional equivalence and non-decreasing completion times.
fn check_device(dev: &mut dyn MemoryDevice, ops: &[(bool, u64, Vec<u8>)]) -> Result<(), TestCaseError> {
    let mut reference = vec![0u8; 70_000];
    let mut now = SimTime::ZERO;
    for (is_write, addr, data) in ops {
        if *is_write {
            let done = dev.write(now, *addr, data);
            prop_assert!(done >= now, "write completion not monotone");
            now = done;
            reference[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        } else {
            let mut buf = vec![0u8; data.len()];
            let done = dev.read(now, *addr, &mut buf);
            prop_assert!(done >= now, "read completion not monotone");
            now = done;
            prop_assert_eq!(&buf, &reference[*addr as usize..*addr as usize + data.len()]);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dram_matches_reference(ops in arb_ops()) {
        let mut d = Dram::new(1 << 20, DdrTimings::ddr3_1600());
        check_device(&mut d, &ops)?;
    }

    #[test]
    fn mram_matches_reference(ops in arb_ops()) {
        let mut d = SttMram::new(1 << 20, MramGeneration::Pmtj);
        check_device(&mut d, &ops)?;
    }

    #[test]
    fn nvdimm_matches_reference_and_survives_power_cycle(ops in arb_ops()) {
        let mut d = NvdimmN::new(1 << 20, DdrTimings::ddr3_1600());
        check_device(&mut d, &ops)?;
        // Rebuild the reference from the op list, power-cycle, verify.
        let mut reference = vec![0u8; 70_000];
        for (is_write, addr, data) in &ops {
            if *is_write {
                reference[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
            }
        }
        let quiesced = d.power_loss(SimTime::from_secs(10));
        let usable = d.power_restore(quiesced);
        let mut buf = vec![0u8; reference.len()];
        d.read(usable, 0, &mut buf);
        prop_assert_eq!(buf, reference);
    }

    #[test]
    fn hdd_matches_reference(ops in arb_ops()) {
        let mut d = HardDiskDrive::new(1 << 20, Default::default());
        check_device(&mut d, &ops)?;
    }

    #[test]
    fn flash_program_erase_state_machine(
        pages in proptest::collection::vec(0u64..64, 1..40)
    ) {
        // Model: a page programs successfully iff currently erased.
        let mut flash = NandFlash::new(256 << 10, FlashConfig::mlc());
        let mut programmed = [false; 64];
        let data = vec![0xA5u8; 4096];
        let mut now = SimTime::ZERO;
        for page in pages {
            let result = flash.program_page(now, page, &data);
            if programmed[page as usize] {
                prop_assert!(result.is_err(), "double program must fail");
                // Erase the whole block (64 pages per 256 KiB block here
                // = block 0 covers pages 0..63).
                now = flash.erase_block(now, page / 64).expect("erase");
                for p in &mut programmed {
                    *p = false;
                }
                now = flash.program_page(now, page, &data).expect("after erase");
                programmed[page as usize] = true;
            } else {
                now = result.expect("erased page programs");
                programmed[page as usize] = true;
            }
        }
    }

    #[test]
    fn mram_wear_counts_exactly(writes in proptest::collection::vec(0u64..64, 1..100)) {
        let mut m = SttMram::new(1 << 20, MramGeneration::Imtj);
        let mut counts = [0u64; 64];
        for line in &writes {
            m.write(SimTime::ZERO, line * 64, &[1u8; 64]);
            counts[*line as usize] += 1;
        }
        prop_assert_eq!(m.total_writes(), writes.len() as u64);
        prop_assert_eq!(m.max_line_wear(), counts.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn sequential_disk_access_never_slower_than_random(len in 1usize..64) {
        let data = vec![0u8; 4096];
        let mut seq = HardDiskDrive::new(1 << 30, Default::default());
        let mut t_seq = SimTime::ZERO;
        for i in 0..len {
            t_seq = seq.write(t_seq, i as u64 * 4096, &data);
        }
        let mut rnd = HardDiskDrive::new(1 << 30, Default::default());
        let mut t_rnd = SimTime::ZERO;
        for i in 0..len {
            // Alternate ends of the disk.
            let addr = if i % 2 == 0 { i as u64 * 4096 } else { (1 << 30) - 4096 * (i as u64 + 1) };
            t_rnd = rnd.write(t_rnd, addr, &data);
        }
        prop_assert!(t_seq <= t_rnd);
    }
}
