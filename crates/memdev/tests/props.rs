//! Randomized property tests for the device models: functional
//! equivalence against a reference store, timing monotonicity, and the
//! flash program/erase state machine. Driven by the deterministic
//! [`SimRng`] with fixed seeds, so every run exercises the same inputs.

use contutto_memdev::flash::{FlashConfig, NandFlash};
use contutto_memdev::{
    DdrTimings, Dram, HardDiskDrive, MemoryDevice, MramGeneration, NvdimmN, SttMram,
};
use contutto_sim::{SimRng, SimTime};

const CASES: u64 = 32;

fn arb_ops(rng: &mut SimRng) -> Vec<(bool, u64, Vec<u8>)> {
    let n = rng.gen_range(1..40) as usize;
    (0..n)
        .map(|_| {
            let is_write = rng.gen_bool(0.5);
            let addr = rng.gen_range(0..60_000);
            let len = rng.gen_range(1..256) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            (is_write, addr, data)
        })
        .collect()
}

/// Runs a random op sequence against a device and a flat reference,
/// checking functional equivalence and non-decreasing completion times.
fn check_device(dev: &mut dyn MemoryDevice, ops: &[(bool, u64, Vec<u8>)]) {
    let mut reference = vec![0u8; 70_000];
    let mut now = SimTime::ZERO;
    for (is_write, addr, data) in ops {
        if *is_write {
            let done = dev.write(now, *addr, data);
            assert!(done >= now, "write completion not monotone");
            now = done;
            reference[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        } else {
            let mut buf = vec![0u8; data.len()];
            let result = dev.read(now, *addr, &mut buf);
            assert!(result.outcome.is_clean(), "fault-free read not clean");
            assert!(result.done >= now, "read completion not monotone");
            now = result.done;
            assert_eq!(
                &buf,
                &reference[*addr as usize..*addr as usize + data.len()]
            );
        }
    }
}

#[test]
fn dram_matches_reference() {
    for case in 0..CASES {
        let ops = arb_ops(&mut SimRng::seed_from_u64(0x3E3D_0000 + case));
        let mut d = Dram::new(1 << 20, DdrTimings::ddr3_1600());
        check_device(&mut d, &ops);
    }
}

#[test]
fn mram_matches_reference() {
    for case in 0..CASES {
        let ops = arb_ops(&mut SimRng::seed_from_u64(0x3E3D_1000 + case));
        let mut d = SttMram::new(1 << 20, MramGeneration::Pmtj);
        check_device(&mut d, &ops);
    }
}

#[test]
fn nvdimm_matches_reference_and_survives_power_cycle() {
    for case in 0..CASES {
        let ops = arb_ops(&mut SimRng::seed_from_u64(0x3E3D_2000 + case));
        let mut d = NvdimmN::new(1 << 20, DdrTimings::ddr3_1600());
        check_device(&mut d, &ops);
        // Rebuild the reference from the op list, power-cycle, verify.
        let mut reference = vec![0u8; 70_000];
        for (is_write, addr, data) in &ops {
            if *is_write {
                reference[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
            }
        }
        let quiesced = d.power_loss(SimTime::from_secs(10));
        let usable = d.power_restore(quiesced).expect("clean restore");
        let mut buf = vec![0u8; reference.len()];
        d.read(usable, 0, &mut buf);
        assert_eq!(buf, reference, "case {case}");
    }
}

#[test]
fn hdd_matches_reference() {
    for case in 0..CASES {
        let ops = arb_ops(&mut SimRng::seed_from_u64(0x3E3D_3000 + case));
        let mut d = HardDiskDrive::new(1 << 20, Default::default());
        check_device(&mut d, &ops);
    }
}

#[test]
fn flash_program_erase_state_machine() {
    // Model: a page programs successfully iff currently erased.
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x3E3D_4000 + case);
        let n = rng.gen_range(1..40) as usize;
        let pages: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let mut flash = NandFlash::new(256 << 10, FlashConfig::mlc());
        let mut programmed = [false; 64];
        let data = vec![0xA5u8; 4096];
        let mut now = SimTime::ZERO;
        for page in pages {
            let result = flash.program_page(now, page, &data);
            if programmed[page as usize] {
                assert!(result.is_err(), "double program must fail (case {case})");
                // Erase the whole block (64 pages per 256 KiB block here
                // = block 0 covers pages 0..63).
                now = flash.erase_block(now, page / 64).expect("erase");
                programmed.fill(false);
                now = flash.program_page(now, page, &data).expect("after erase");
                programmed[page as usize] = true;
            } else {
                now = result.expect("erased page programs");
                programmed[page as usize] = true;
            }
        }
    }
}

#[test]
fn mram_wear_counts_exactly() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x3E3D_5000 + case);
        let n = rng.gen_range(1..100) as usize;
        let writes: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let mut m = SttMram::new(1 << 20, MramGeneration::Imtj);
        let mut counts = [0u64; 64];
        for line in &writes {
            m.write(SimTime::ZERO, line * 64, &[1u8; 64]);
            counts[*line as usize] += 1;
        }
        assert_eq!(m.total_writes(), writes.len() as u64, "case {case}");
        assert_eq!(
            m.max_line_wear(),
            counts.iter().copied().max().unwrap_or(0),
            "case {case}"
        );
    }
}

#[test]
fn sequential_disk_access_never_slower_than_random() {
    for len in 1usize..64 {
        let data = vec![0u8; 4096];
        let mut seq = HardDiskDrive::new(1 << 30, Default::default());
        let mut t_seq = SimTime::ZERO;
        for i in 0..len {
            t_seq = seq.write(t_seq, i as u64 * 4096, &data);
        }
        let mut rnd = HardDiskDrive::new(1 << 30, Default::default());
        let mut t_rnd = SimTime::ZERO;
        for i in 0..len {
            // Alternate ends of the disk.
            let addr = if i % 2 == 0 {
                i as u64 * 4096
            } else {
                (1 << 30) - 4096 * (i as u64 + 1)
            };
            t_rnd = rnd.write(t_rnd, addr, &data);
        }
        assert!(t_seq <= t_rnd, "len {len}");
    }
}
