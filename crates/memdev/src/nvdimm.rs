//! NVDIMM-N model: DRAM with a flash backup engine.
//!
//! Paper §4.2(iii): "NVDIMM refers to FLASH-backed DRAM DIMMs which
//! combine the performance of DRAM with non-volatility of FLASH. The
//! main idea is to use DRAM for memory operations and copy the data
//! over to FLASH when the power is removed; a backup power source such
//! as a battery or a super-cap is used to support the copying
//! operation. The copy is performed by the NVDIMM itself and does not
//! need the FPGA or the CPU to stay powered up."
//!
//! Normal operation is DRAM-speed. [`NvdimmN::power_loss`] triggers
//! the save (DRAM → flash) if the supercap is armed; on restore the
//! contents come back. The save sequence for DDR3 is vendor-specific
//! (paper §4.2: "the sequence is vendor specific in the case of
//! DDR3"), which our firmware model has to know about.

use contutto_sim::SimTime;

use crate::dram::{DdrTimings, Dram};
use crate::flash::{FlashConfig, NandFlash};
use crate::traits::{MediaKind, MemoryDevice};

/// State of the NVDIMM save/restore engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveState {
    /// Normal operation; no valid image in flash.
    Idle,
    /// A power-loss save is in progress until the given time.
    Saving {
        /// When the save completes.
        done_at: SimTime,
    },
    /// A valid image sits in flash (power was lost, save completed).
    Saved,
    /// Power loss hit with the supercap disarmed: contents lost.
    Lost,
}

/// How the save/restore handshake is triggered (paper §4.2(iii):
/// "The sequence of operations to be performed to persist DRAM are
/// being standardized through JEDEC for DDR4; the sequence is vendor
/// specific in the case of DDR3").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveSequence {
    /// The JEDEC-standardized DDR4 sequence.
    JedecDdr4,
    /// A vendor-specific DDR3 sequence, identified by vendor code.
    VendorDdr3(u8),
}

/// A flash-backed DRAM DIMM (NVDIMM-N).
#[derive(Debug)]
pub struct NvdimmN {
    dram: Dram,
    flash: NandFlash,
    armed: bool,
    state: SaveState,
    /// The handshake this DIMM expects.
    sequence: SaveSequence,
    /// Flash streaming bandwidth during save/restore, bytes/sec.
    backup_bandwidth: f64,
}

impl NvdimmN {
    /// Creates an NVDIMM-N of `capacity` bytes with an armed supercap.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not block-aligned for the
    /// internal flash (256 KiB).
    pub fn new(capacity: u64, timings: DdrTimings) -> Self {
        NvdimmN {
            dram: Dram::new(capacity, timings),
            flash: NandFlash::new(capacity, FlashConfig::slc()),
            armed: true,
            state: SaveState::Idle,
            // DDR3 parts in the paper's era: vendor-specific handshake.
            sequence: SaveSequence::VendorDdr3(0x2C),
            backup_bandwidth: 400e6, // 400 MB/s save engine
        }
    }

    /// The save handshake this DIMM expects. Firmware must issue a
    /// matching sequence when arming (see [`NvdimmN::arm_with_sequence`]).
    pub fn save_sequence(&self) -> SaveSequence {
        self.sequence
    }

    /// Arms the supercap using an explicit handshake. A mismatched
    /// sequence leaves the DIMM disarmed — the silent failure mode the
    /// paper's "non-trivial firmware/BIOS support" exists to prevent.
    pub fn arm_with_sequence(&mut self, seq: SaveSequence) -> bool {
        self.armed = seq == self.sequence;
        self.armed
    }

    /// Whether the backup power source is armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Arms or disarms the supercap (firmware control).
    pub fn set_armed(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Current save-engine state.
    pub fn save_state(&self) -> SaveState {
        self.state
    }

    /// Duration of a full save or restore at the engine bandwidth.
    pub fn backup_duration(&self) -> SimTime {
        let secs = self.dram.capacity_bytes() as f64 / self.backup_bandwidth;
        SimTime::from_ps((secs * 1e12) as u64)
    }

    /// Functional read without timing (accelerator DMA path).
    pub fn peek(&self, addr: u64, buf: &mut [u8]) {
        self.dram.peek(addr, buf);
    }

    /// Functional write without timing (accelerator DMA path).
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        self.dram.poke(addr, data);
    }

    /// Power is cut. If armed, the on-DIMM engine copies DRAM to flash
    /// (no CPU/FPGA involvement); otherwise contents are lost.
    /// Returns the time the DIMM is quiescent.
    pub fn power_loss(&mut self, now: SimTime) -> SimTime {
        if self.armed {
            let done = now + self.backup_duration();
            // Functionally: stream the DRAM image into flash.
            let cap = self.dram.capacity_bytes();
            let mut buf = vec![0u8; 64 * 1024];
            let mut off = 0u64;
            while off < cap {
                let n = (cap - off).min(buf.len() as u64) as usize;
                self.dram.read(now, off, &mut buf[..n]);
                self.flash.write(now, off, &buf[..n]);
                off += n as u64;
            }
            self.dram.power_loss();
            self.state = SaveState::Saving { done_at: done };
            done
        } else {
            self.dram.power_loss();
            self.state = SaveState::Lost;
            now
        }
    }

    /// Power returns. If a save completed, the image is restored from
    /// flash into DRAM. Returns the time the DIMM is usable.
    pub fn power_restore(&mut self, now: SimTime) -> SimTime {
        match self.state {
            SaveState::Saving { done_at } => {
                assert!(
                    now >= done_at,
                    "power restored before the save finished; image would be torn"
                );
                self.restore_image(now)
            }
            SaveState::Saved => self.restore_image(now),
            SaveState::Idle | SaveState::Lost => {
                self.state = SaveState::Idle;
                now
            }
        }
    }

    fn restore_image(&mut self, now: SimTime) -> SimTime {
        let cap = self.dram.capacity_bytes();
        let mut buf = vec![0u8; 64 * 1024];
        let mut off = 0u64;
        while off < cap {
            let n = (cap - off).min(buf.len() as u64) as usize;
            self.flash.read(now, off, &mut buf[..n]);
            self.dram.write(now, off, &buf[..n]);
            off += n as u64;
        }
        self.state = SaveState::Idle;
        now + self.backup_duration()
    }
}

impl MemoryDevice for NvdimmN {
    fn capacity_bytes(&self) -> u64 {
        self.dram.capacity_bytes()
    }

    fn kind(&self) -> MediaKind {
        MediaKind::NvdimmN
    }

    /// DRAM-speed reads (the flash is only used for backup).
    fn read(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> SimTime {
        self.dram.read(now, addr, buf)
    }

    /// DRAM-speed writes.
    fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        self.dram.write(now, addr, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvdimm() -> NvdimmN {
        // Small capacity keeps the functional save/restore quick.
        NvdimmN::new(1 << 20, DdrTimings::ddr3_1600())
    }

    #[test]
    fn operates_at_dram_speed() {
        let mut nv = nvdimm();
        let mut plain = Dram::new(1 << 20, DdrTimings::ddr3_1600());
        let mut buf = [0u8; 128];
        let a = nv.read(SimTime::ZERO, 0, &mut buf);
        let b = plain.read(SimTime::ZERO, 0, &mut buf);
        assert_eq!(a, b);
    }

    #[test]
    fn armed_power_loss_preserves_contents() {
        let mut nv = nvdimm();
        nv.write(SimTime::ZERO, 4096, &[0xCD; 256]);
        let quiesced = nv.power_loss(SimTime::from_ms(1));
        assert!(matches!(nv.save_state(), SaveState::Saving { .. }));
        let usable = nv.power_restore(quiesced + SimTime::from_ms(1));
        assert!(usable > quiesced);
        let mut buf = [0u8; 256];
        nv.read(usable, 4096, &mut buf);
        assert_eq!(buf, [0xCD; 256]);
        assert_eq!(nv.save_state(), SaveState::Idle);
    }

    #[test]
    fn disarmed_power_loss_loses_contents() {
        let mut nv = nvdimm();
        nv.set_armed(false);
        nv.write(SimTime::ZERO, 0, &[0xEE; 64]);
        nv.power_loss(SimTime::from_ms(1));
        assert_eq!(nv.save_state(), SaveState::Lost);
        let t = nv.power_restore(SimTime::from_ms(2));
        let mut buf = [1u8; 64];
        nv.read(t, 0, &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    #[should_panic(expected = "before the save finished")]
    fn early_restore_is_a_torn_image() {
        let mut nv = nvdimm();
        nv.write(SimTime::ZERO, 0, &[1; 64]);
        let done = nv.power_loss(SimTime::from_ms(1));
        assert!(done > SimTime::from_ms(1));
        nv.power_restore(SimTime::from_ms(1)); // too early
    }

    #[test]
    fn backup_duration_scales_with_capacity() {
        let small = NvdimmN::new(1 << 20, DdrTimings::ddr3_1600());
        let large = NvdimmN::new(4 << 20, DdrTimings::ddr3_1600());
        assert_eq!(
            large.backup_duration().as_ps(),
            small.backup_duration().as_ps() * 4
        );
    }

    #[test]
    fn kind_is_nonvolatile() {
        assert!(nvdimm().kind().is_nonvolatile());
    }

    #[test]
    fn wrong_save_sequence_leaves_dimm_disarmed() {
        let mut nv = nvdimm();
        // Firmware issues the DDR4 JEDEC sequence at a DDR3 part:
        assert!(!nv.arm_with_sequence(SaveSequence::JedecDdr4));
        nv.write(SimTime::ZERO, 0, &[9u8; 64]);
        nv.power_loss(SimTime::from_ms(1));
        assert_eq!(nv.save_state(), SaveState::Lost, "data silently lost");
        // The matching vendor sequence arms it.
        let seq = nv.save_sequence();
        assert!(nv.arm_with_sequence(seq));
        assert!(nv.is_armed());
    }
}
