//! NVDIMM-N model: DRAM with a flash backup engine.
//!
//! Paper §4.2(iii): "NVDIMM refers to FLASH-backed DRAM DIMMs which
//! combine the performance of DRAM with non-volatility of FLASH. The
//! main idea is to use DRAM for memory operations and copy the data
//! over to FLASH when the power is removed; a backup power source such
//! as a battery or a super-cap is used to support the copying
//! operation. The copy is performed by the NVDIMM itself and does not
//! need the FPGA or the CPU to stay powered up."
//!
//! Normal operation is DRAM-speed. [`NvdimmN::power_loss`] triggers
//! the save (DRAM → flash) if the supercap is armed; on restore the
//! contents come back. The save sequence for DDR3 is vendor-specific
//! (paper §4.2: "the sequence is vendor specific in the case of
//! DDR3"), which our firmware model has to know about.

use std::fmt;

use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::{SimTime, TraceEvent, Tracer};

use crate::dram::{DdrTimings, Dram};
use crate::ecc::{RasCounters, ReadResult, ScrubReport};
use crate::fault::FaultConfig;
use crate::flash::{FlashConfig, NandFlash};
use crate::traits::{MediaKind, MemoryDevice};

/// State of the NVDIMM save/restore engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveState {
    /// Normal operation; no valid image in flash.
    Idle,
    /// A power-loss save is in progress until the given time.
    Saving {
        /// When the save completes.
        done_at: SimTime,
    },
    /// A valid image sits in flash (power was lost, save completed).
    Saved,
    /// Power loss hit with the supercap disarmed: contents lost.
    Lost,
}

/// How the save/restore handshake is triggered (paper §4.2(iii):
/// "The sequence of operations to be performed to persist DRAM are
/// being standardized through JEDEC for DDR4; the sequence is vendor
/// specific in the case of DDR3").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveSequence {
    /// The JEDEC-standardized DDR4 sequence.
    JedecDdr4,
    /// A vendor-specific DDR3 sequence, identified by vendor code.
    VendorDdr3(u8),
}

/// Why a power-restore failed to bring the data back. Either way the
/// DIMM refuses to present the image as valid: the failure is loud,
/// never silent corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestoreError {
    /// Power returned before the save engine finished; the flash
    /// image is torn (part old, part new) and must not be used.
    TornSave {
        /// When power came back.
        restored_at: SimTime,
        /// When the save would have completed.
        save_done_at: SimTime,
    },
    /// The restored image failed its integrity check (flash bit rot,
    /// bad blocks, or corruption while powered off).
    CrcMismatch {
        /// CRC recorded when the save completed.
        expected: u32,
        /// CRC of what actually came back from flash.
        actual: u32,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::TornSave {
                restored_at,
                save_done_at,
            } => write!(
                f,
                "torn save: power restored at {restored_at} but the save ran until {save_done_at}"
            ),
            RestoreError::CrcMismatch { expected, actual } => write!(
                f,
                "restore CRC mismatch: saved {expected:#010x}, restored {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Energy the save engine draws from the supercap per 4 KiB flash page
/// streamed, in nanojoules. Deterministic integer accounting: a save of
/// `capacity / 4096` pages needs exactly that many multiples of this.
pub const SAVE_COST_PER_PAGE_NJ: u64 = 50_000;

/// Bytes per flash page the save engine streams (and charges for).
const SAVE_PAGE_BYTES: u64 = 4096;

/// CRC-32 (IEEE 802.3, reflected), bitwise — the save engine's
/// integrity check over the streamed image.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc
}

/// A flash-backed DRAM DIMM (NVDIMM-N).
#[derive(Debug)]
pub struct NvdimmN {
    dram: Dram,
    flash: NandFlash,
    armed: bool,
    state: SaveState,
    /// The handshake this DIMM expects.
    sequence: SaveSequence,
    /// Flash streaming bandwidth during save/restore, bytes/sec.
    backup_bandwidth: f64,
    /// CRC of the last saved image, recorded when the save completed.
    save_crc: Option<u32>,
    /// Configured supercap energy, nanojoules (`None` = ideal supercap,
    /// never exhausted — the default, matching a healthy part).
    supercap_budget_nj: Option<u64>,
    /// Energy left in the supercap right now (only meaningful with a
    /// finite budget; recharged when power returns).
    supercap_remaining_nj: u64,
    /// Lifetime energy drawn by the save engine.
    supercap_spent_nj: u64,
    /// The last save ran out of supercap energy mid-stream: the flash
    /// image is truncated and must never be restored, no matter how
    /// much wall time passes before power returns.
    save_truncated: bool,
    tracer: Tracer,
}

impl NvdimmN {
    /// Creates an NVDIMM-N of `capacity` bytes with an armed supercap.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not block-aligned for the
    /// internal flash (256 KiB).
    pub fn new(capacity: u64, timings: DdrTimings) -> Self {
        NvdimmN {
            dram: Dram::new(capacity, timings),
            flash: NandFlash::new(capacity, FlashConfig::slc()),
            armed: true,
            state: SaveState::Idle,
            // DDR3 parts in the paper's era: vendor-specific handshake.
            sequence: SaveSequence::VendorDdr3(0x2C),
            backup_bandwidth: 400e6, // 400 MB/s save engine
            save_crc: None,
            supercap_budget_nj: None,
            supercap_remaining_nj: u64::MAX,
            supercap_spent_nj: 0,
            save_truncated: false,
            tracer: Tracer::off(),
        }
    }

    /// Gives the supercap a finite energy budget in nanojoules. The
    /// save engine charges [`SAVE_COST_PER_PAGE_NJ`] per 4 KiB page
    /// streamed to flash; running out mid-save leaves a truncated
    /// image that every later restore rejects as a torn save.
    pub fn set_supercap_budget_nj(&mut self, nj: u64) {
        self.supercap_budget_nj = Some(nj);
        self.supercap_remaining_nj = nj;
    }

    /// Energy left in the supercap (`None` while the supercap is
    /// ideal/unbudgeted).
    pub fn supercap_remaining_nj(&self) -> Option<u64> {
        self.supercap_budget_nj.map(|_| self.supercap_remaining_nj)
    }

    /// Lifetime energy drawn by the save engine, nanojoules.
    pub fn supercap_spent_nj(&self) -> u64 {
        self.supercap_spent_nj
    }

    /// Energy a full save of this DIMM needs, nanojoules.
    pub fn save_energy_required_nj(&self) -> u64 {
        self.dram.capacity_bytes().div_ceil(SAVE_PAGE_BYTES) * SAVE_COST_PER_PAGE_NJ
    }

    /// Routes save-engine trace events into a shared tracer.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a deterministic media-fault injector on the DRAM side.
    pub fn attach_media_faults(&mut self, cfg: FaultConfig) {
        self.dram.attach_media_faults(cfg);
    }

    /// Installs a media-fault injector whose flip schedule starts at
    /// `now` (runtime re-arm from a chaos plan).
    pub fn attach_media_faults_at(&mut self, now: SimTime, cfg: FaultConfig) {
        self.dram.attach_media_faults_at(now, cfg);
    }

    /// Correctable errors a page may accumulate before retirement.
    pub fn set_retire_threshold(&mut self, threshold: u32) {
        self.dram.set_retire_threshold(threshold);
    }

    /// Cumulative RAS counters (DRAM side).
    pub fn ras_counters(&self) -> RasCounters {
        self.dram.ras_counters()
    }

    /// Pages retired so far (DRAM side).
    pub fn retired_pages(&self) -> Vec<u64> {
        self.dram.retired_pages()
    }

    /// Whether a power cut **right now** would preserve the contents.
    ///
    /// This is the paper's point about "non-trivial firmware/BIOS
    /// support": non-volatile media (`kind().is_nonvolatile()`) is a
    /// static property, but actual durability depends on the supercap
    /// being armed and the save engine's state — a disarmed DIMM, or
    /// one still mid-save, is volatile no matter what its media says.
    pub fn is_durable(&self, now: SimTime) -> bool {
        if self.save_truncated {
            return false;
        }
        match self.state {
            SaveState::Lost => false,
            SaveState::Saving { done_at } => now >= done_at,
            SaveState::Saved => true,
            SaveState::Idle => self.armed,
        }
    }

    /// Fault-injection hook for tests: corrupts one byte of the saved
    /// flash image (retention loss while powered off). The next
    /// restore fails its CRC check instead of returning bad data.
    pub fn corrupt_saved_image(&mut self, addr: u64, mask: u8) {
        self.flash.corrupt_byte(addr, mask);
    }

    /// The save handshake this DIMM expects. Firmware must issue a
    /// matching sequence when arming (see [`NvdimmN::arm_with_sequence`]).
    pub fn save_sequence(&self) -> SaveSequence {
        self.sequence
    }

    /// Arms the supercap using an explicit handshake. A mismatched
    /// sequence leaves the DIMM disarmed — the silent failure mode the
    /// paper's "non-trivial firmware/BIOS support" exists to prevent.
    pub fn arm_with_sequence(&mut self, seq: SaveSequence) -> bool {
        self.armed = seq == self.sequence;
        self.armed
    }

    /// Whether the backup power source is armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Arms or disarms the supercap (firmware control).
    pub fn set_armed(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Current save-engine state.
    pub fn save_state(&self) -> SaveState {
        self.state
    }

    /// Duration of a full save or restore at the engine bandwidth.
    pub fn backup_duration(&self) -> SimTime {
        let secs = self.dram.capacity_bytes() as f64 / self.backup_bandwidth;
        SimTime::from_ps((secs * 1e12) as u64)
    }

    /// Functional read without timing (accelerator DMA path).
    pub fn peek(&self, addr: u64, buf: &mut [u8]) {
        self.dram.peek(addr, buf);
    }

    /// Functional write without timing (accelerator DMA path).
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        self.dram.poke(addr, data);
    }

    /// Maintenance-path read of one line via the service interface.
    pub fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> ([u8; 128], bool) {
        self.dram.sideband_read_line(now, addr)
    }

    /// Maintenance-path write of one line, optionally with poison.
    pub fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) {
        self.dram.sideband_write_line(addr, data, poison);
    }

    /// Power is cut. If armed, the on-DIMM engine copies DRAM to flash
    /// (no CPU/FPGA involvement); otherwise contents are lost.
    /// Returns the time the DIMM is quiescent.
    pub fn power_loss(&mut self, now: SimTime) -> SimTime {
        // A redundant cut — power glitching again while the engine is
        // still saving, or after a save completed but before restore —
        // must not re-stream the now-dark DRAM over the valid flash
        // image: that would replace saved data with zeroes behind a
        // clean CRC, a silent loss no restore check could catch.
        match self.state {
            SaveState::Saving { done_at } => return done_at.max(now),
            SaveState::Saved => return now,
            SaveState::Idle | SaveState::Lost => {}
        }
        if self.armed {
            let done = now + self.backup_duration();
            // Functionally: stream the DRAM image into flash, hashing
            // as it goes so restore can prove the image came back.
            // Every 4 KiB page streamed draws SAVE_COST_PER_PAGE_NJ
            // from the supercap; an exhausted supercap stops the
            // engine mid-stream, leaving a truncated image.
            let cap = self.dram.capacity_bytes();
            let mut buf = vec![0u8; 64 * 1024];
            let mut off = 0u64;
            let mut crc = !0u32;
            while off < cap {
                let n = (cap - off).min(buf.len() as u64) as usize;
                if self.supercap_budget_nj.is_some() {
                    let cost = (n as u64).div_ceil(SAVE_PAGE_BYTES) * SAVE_COST_PER_PAGE_NJ;
                    if self.supercap_remaining_nj < cost {
                        self.supercap_spent_nj += self.supercap_remaining_nj;
                        self.supercap_remaining_nj = 0;
                        self.save_truncated = true;
                        self.tracer.record(TraceEvent::SaveEnergyExhausted {
                            saved_bytes: off,
                            capacity_bytes: cap,
                        });
                        break;
                    }
                    self.supercap_remaining_nj -= cost;
                    self.supercap_spent_nj += cost;
                }
                self.dram.peek(off, &mut buf[..n]);
                crc = crc32_update(crc, &buf[..n]);
                self.flash.write(now, off, &buf[..n]);
                off += n as u64;
            }
            // A truncated image has no valid CRC: the truncation marker
            // itself is what makes the next restore fail loudly.
            self.save_crc = if self.save_truncated {
                None
            } else {
                Some(!crc)
            };
            self.dram.power_loss();
            self.state = SaveState::Saving { done_at: done };
            done
        } else {
            self.dram.power_loss();
            self.state = SaveState::Lost;
            now
        }
    }

    /// Power returns. If a save completed, the image is restored from
    /// flash into DRAM and verified against the save-time CRC. Returns
    /// the time the DIMM is usable.
    ///
    /// # Errors
    ///
    /// * [`RestoreError::TornSave`] if power returns mid-save; the
    ///   torn image is discarded (state becomes [`SaveState::Lost`]).
    /// * [`RestoreError::CrcMismatch`] if the image fails its
    ///   integrity check; likewise discarded.
    pub fn power_restore(&mut self, now: SimTime) -> Result<SimTime, RestoreError> {
        if let Some(budget) = self.supercap_budget_nj {
            // Power is back: the supercap recharges for the next cut.
            self.supercap_remaining_nj = budget;
        }
        if self.save_truncated {
            // The engine died mid-save: the image is torn no matter how
            // long power stayed off. `save_done_at` reports when a full
            // save would have completed.
            let done_at = match self.state {
                SaveState::Saving { done_at } => done_at,
                _ => now,
            };
            self.tracer.record(TraceEvent::SaveTorn {
                restored_ps: now.as_ps(),
                save_done_ps: done_at.as_ps(),
            });
            self.state = SaveState::Lost;
            self.save_crc = None;
            self.save_truncated = false;
            return Err(RestoreError::TornSave {
                restored_at: now,
                save_done_at: done_at,
            });
        }
        match self.state {
            SaveState::Saving { done_at } if now < done_at => {
                self.tracer.record(TraceEvent::SaveTorn {
                    restored_ps: now.as_ps(),
                    save_done_ps: done_at.as_ps(),
                });
                self.state = SaveState::Lost;
                self.save_crc = None;
                Err(RestoreError::TornSave {
                    restored_at: now,
                    save_done_at: done_at,
                })
            }
            SaveState::Saving { .. } | SaveState::Saved => self.restore_image(now),
            SaveState::Idle | SaveState::Lost => {
                self.state = SaveState::Idle;
                Ok(now)
            }
        }
    }

    /// Serializes all dynamic state: both media sides (DRAM contents
    /// plus the flash backup image), the save engine state machine,
    /// and the supercap accounting. The attached tracer is a wiring
    /// concern and is not part of the image.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.dram.snapshot_state(out);
        self.flash.snapshot_state(out);
        self.armed.persist(out);
        match self.state {
            SaveState::Idle => 0u8.persist(out),
            SaveState::Saving { done_at } => {
                1u8.persist(out);
                done_at.persist(out);
            }
            SaveState::Saved => 2u8.persist(out),
            SaveState::Lost => 3u8.persist(out),
        }
        match self.sequence {
            SaveSequence::JedecDdr4 => 0u8.persist(out),
            SaveSequence::VendorDdr3(vendor) => {
                1u8.persist(out);
                vendor.persist(out);
            }
        }
        self.save_crc.persist(out);
        self.supercap_budget_nj.persist(out);
        self.supercap_remaining_nj.persist(out);
        self.supercap_spent_nj.persist(out);
        self.save_truncated.persist(out);
    }

    /// Overlays an [`NvdimmN::snapshot_state`] image onto this DIMM,
    /// including an in-flight or completed flash save.
    ///
    /// # Errors
    ///
    /// Any decode or topology error from the embedded DRAM/flash
    /// images, or [`snapshot::RestoreError::Malformed`] for an
    /// unrecognized save-engine state.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        self.dram.restore_state(r)?;
        self.flash.restore_state(r)?;
        self.armed = r.bool()?;
        self.state = match r.u8()? {
            0 => SaveState::Idle,
            1 => SaveState::Saving {
                done_at: SimTime::restore(r)?,
            },
            2 => SaveState::Saved,
            3 => SaveState::Lost,
            _ => {
                return Err(snapshot::RestoreError::Malformed {
                    context: "save state discriminant",
                })
            }
        };
        self.sequence = match r.u8()? {
            0 => SaveSequence::JedecDdr4,
            1 => SaveSequence::VendorDdr3(r.u8()?),
            _ => {
                return Err(snapshot::RestoreError::Malformed {
                    context: "save sequence discriminant",
                })
            }
        };
        self.save_crc = Option::restore(r)?;
        self.supercap_budget_nj = Option::restore(r)?;
        self.supercap_remaining_nj = r.u64()?;
        self.supercap_spent_nj = r.u64()?;
        self.save_truncated = r.bool()?;
        Ok(())
    }

    fn restore_image(&mut self, now: SimTime) -> Result<SimTime, RestoreError> {
        let cap = self.dram.capacity_bytes();
        let mut buf = vec![0u8; 64 * 1024];
        let mut off = 0u64;
        let mut crc = !0u32;
        while off < cap {
            let n = (cap - off).min(buf.len() as u64) as usize;
            self.flash.read(now, off, &mut buf[..n]);
            crc = crc32_update(crc, &buf[..n]);
            self.dram.poke(off, &buf[..n]);
            off += n as u64;
        }
        let actual = !crc;
        if let Some(expected) = self.save_crc {
            if expected != actual {
                self.dram.power_loss();
                self.state = SaveState::Lost;
                self.save_crc = None;
                return Err(RestoreError::CrcMismatch { expected, actual });
            }
        }
        self.state = SaveState::Idle;
        self.save_crc = None;
        Ok(now + self.backup_duration())
    }
}

impl MemoryDevice for NvdimmN {
    fn capacity_bytes(&self) -> u64 {
        self.dram.capacity_bytes()
    }

    fn kind(&self) -> MediaKind {
        MediaKind::NvdimmN
    }

    /// DRAM-speed reads (the flash is only used for backup).
    fn read(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> ReadResult {
        self.dram.read(now, addr, buf)
    }

    /// DRAM-speed writes.
    fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        self.dram.write(now, addr, data)
    }

    /// Patrol scrub runs over the DRAM side.
    fn scrub_pass(&mut self, now: SimTime) -> ScrubReport {
        self.dram.scrub_pass(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvdimm() -> NvdimmN {
        // Small capacity keeps the functional save/restore quick.
        NvdimmN::new(1 << 20, DdrTimings::ddr3_1600())
    }

    #[test]
    fn operates_at_dram_speed() {
        let mut nv = nvdimm();
        let mut plain = Dram::new(1 << 20, DdrTimings::ddr3_1600());
        let mut buf = [0u8; 128];
        let a = nv.read(SimTime::ZERO, 0, &mut buf);
        let b = plain.read(SimTime::ZERO, 0, &mut buf);
        assert_eq!(a, b);
    }

    #[test]
    fn armed_power_loss_preserves_contents() {
        let mut nv = nvdimm();
        nv.write(SimTime::ZERO, 4096, &[0xCD; 256]);
        let quiesced = nv.power_loss(SimTime::from_ms(1));
        assert!(matches!(nv.save_state(), SaveState::Saving { .. }));
        let usable = nv
            .power_restore(quiesced + SimTime::from_ms(1))
            .expect("clean restore");
        assert!(usable > quiesced);
        let mut buf = [0u8; 256];
        nv.read(usable, 4096, &mut buf);
        assert_eq!(buf, [0xCD; 256]);
        assert_eq!(nv.save_state(), SaveState::Idle);
    }

    #[test]
    fn disarmed_power_loss_loses_contents() {
        let mut nv = nvdimm();
        nv.set_armed(false);
        nv.write(SimTime::ZERO, 0, &[0xEE; 64]);
        nv.power_loss(SimTime::from_ms(1));
        assert_eq!(nv.save_state(), SaveState::Lost);
        let t = nv
            .power_restore(SimTime::from_ms(2))
            .expect("nothing saved");
        let mut buf = [1u8; 64];
        nv.read(t, 0, &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn early_restore_is_a_torn_image() {
        let mut nv = nvdimm();
        let tracer = Tracer::ring(16);
        nv.attach_tracer(tracer.clone());
        nv.write(SimTime::ZERO, 0, &[1; 64]);
        let done = nv.power_loss(SimTime::from_ms(1));
        assert!(done > SimTime::from_ms(1));
        // Power back too early: typed error, torn image discarded.
        let err = nv.power_restore(SimTime::from_ms(1)).unwrap_err();
        assert_eq!(
            err,
            RestoreError::TornSave {
                restored_at: SimTime::from_ms(1),
                save_done_at: done,
            }
        );
        assert!(err.to_string().contains("torn save"));
        assert_eq!(nv.save_state(), SaveState::Lost);
        assert!(!nv.is_durable(SimTime::from_ms(1)));
        assert_eq!(
            tracer.count_matching(|e| matches!(e, TraceEvent::SaveTorn { .. })),
            1
        );
        // The DIMM recovers as empty, never presenting torn data.
        let t = nv
            .power_restore(SimTime::from_ms(2))
            .expect("empty restart");
        let mut buf = [9u8; 64];
        nv.read(t, 0, &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn corrupted_save_image_fails_restore_loudly() {
        let mut nv = nvdimm();
        nv.write(SimTime::ZERO, 4096, &[0x5A; 128]);
        let quiesced = nv.power_loss(SimTime::from_ms(1));
        // Bit rot in the flash image while powered off.
        nv.corrupt_saved_image(4100, 0x10);
        let err = nv
            .power_restore(quiesced + SimTime::from_ms(1))
            .unwrap_err();
        assert!(
            matches!(err, RestoreError::CrcMismatch { expected, actual } if expected != actual),
            "got {err:?}"
        );
        assert!(err.to_string().contains("CRC mismatch"));
        // Loud loss, not silent corruption: contents are gone.
        assert_eq!(nv.save_state(), SaveState::Lost);
        let t = nv
            .power_restore(SimTime::from_ms(10))
            .expect("empty restart");
        let mut buf = [9u8; 128];
        nv.read(t, 4096, &mut buf);
        assert_eq!(buf, [0u8; 128]);
    }

    #[test]
    fn durability_tracks_supercap_and_save_state() {
        let mut nv = nvdimm();
        // Armed and idle: a cut now would be saved.
        assert!(nv.is_durable(SimTime::ZERO));
        // Disarmed: volatile even though the media is non-volatile.
        nv.set_armed(false);
        assert!(nv.kind().is_nonvolatile());
        assert!(!nv.is_durable(SimTime::ZERO));
        nv.set_armed(true);
        // Mid-save: not durable until the engine finishes.
        let done = nv.power_loss(SimTime::from_ms(1));
        assert!(!nv.is_durable(SimTime::from_ms(1)));
        assert!(nv.is_durable(done));
        nv.power_restore(done).expect("restore");
        assert!(nv.is_durable(done));
        // Lost: never durable.
        nv.set_armed(false);
        nv.power_loss(done + SimTime::from_ms(1));
        assert_eq!(nv.save_state(), SaveState::Lost);
        assert!(!nv.is_durable(done + SimTime::from_ms(2)));
    }

    #[test]
    fn double_power_cut_does_not_destroy_the_save_image() {
        let mut nv = nvdimm();
        nv.write(SimTime::ZERO, 4096, &[0xA5; 128]);
        let done = nv.power_loss(SimTime::from_ms(1));
        // Power glitches: a second cut lands while the engine is still
        // streaming. It must not restart the save from the now-dark
        // DRAM — the in-flight image is all the data there is.
        let quiesced = nv.power_loss(SimTime::from_ms(2));
        assert_eq!(quiesced, done, "the original save window stands");
        assert!(matches!(nv.save_state(), SaveState::Saving { .. }));
        let usable = nv.power_restore(done).expect("image intact");
        let mut buf = [0u8; 128];
        nv.read(usable, 4096, &mut buf);
        assert_eq!(buf, [0xA5; 128], "saved data survived the glitch");
        // And again after the save completed but before any restore.
        nv.write(usable, 4096, &[0x3C; 128]);
        let done2 = nv.power_loss(usable + SimTime::from_ms(1));
        let _ = nv.power_loss(done2 + SimTime::from_ms(1));
        let usable2 = nv.power_restore(done2 + SimTime::from_ms(2)).expect("ok");
        nv.read(usable2, 4096, &mut buf);
        assert_eq!(buf, [0x3C; 128]);
    }

    #[test]
    fn snapshot_mid_save_restores_the_whole_engine() {
        let mut nv = nvdimm();
        nv.set_supercap_budget_nj(nv.save_energy_required_nj());
        nv.write(SimTime::ZERO, 4096, &[0x9D; 128]);
        let done = nv.power_loss(SimTime::from_ms(1));
        assert!(matches!(nv.save_state(), SaveState::Saving { .. }));

        // Snapshot while the save engine is still streaming.
        let mut img = Vec::new();
        nv.snapshot_state(&mut img);
        let mut fresh = nvdimm();
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        assert_eq!(fresh.save_state(), nv.save_state());
        assert_eq!(fresh.supercap_spent_nj(), nv.supercap_spent_nj());
        assert_eq!(fresh.supercap_remaining_nj(), nv.supercap_remaining_nj());

        // Both copies complete the power cycle identically.
        let a = nv.power_restore(done).expect("original restores");
        let b = fresh.power_restore(done).expect("restored copy restores");
        assert_eq!(a, b);
        let mut buf_a = [0u8; 128];
        let mut buf_b = [0u8; 128];
        nv.read(a, 4096, &mut buf_a);
        fresh.read(b, 4096, &mut buf_b);
        assert_eq!(buf_a, [0x9D; 128]);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn snapshot_preserves_truncated_save_marker() {
        let mut nv = nvdimm();
        nv.set_supercap_budget_nj(SAVE_COST_PER_PAGE_NJ * 20);
        nv.write(SimTime::ZERO, 0, &[0x55; 64]);
        let done = nv.power_loss(SimTime::from_ms(1));

        let mut img = Vec::new();
        nv.snapshot_state(&mut img);
        let mut fresh = nvdimm();
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();

        // The truncation marker travelled with the image: the restored
        // copy also refuses to present the torn flash image.
        let err = fresh
            .power_restore(done + SimTime::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, RestoreError::TornSave { .. }), "got {err:?}");
    }

    #[test]
    fn snapshot_restore_rejects_bad_discriminant() {
        let nv = nvdimm();
        let mut img = Vec::new();
        nv.snapshot_state(&mut img);
        // The save-state discriminant is the byte right after the
        // armed flag at the tail of the two embedded device images;
        // corrupt the final byte (save_truncated bool) instead, which
        // is position-stable.
        let last = img.len() - 1;
        img[last] = 7;
        let mut fresh = nvdimm();
        let err = fresh.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::Malformed { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn backup_duration_scales_with_capacity() {
        let small = NvdimmN::new(1 << 20, DdrTimings::ddr3_1600());
        let large = NvdimmN::new(4 << 20, DdrTimings::ddr3_1600());
        assert_eq!(
            large.backup_duration().as_ps(),
            small.backup_duration().as_ps() * 4
        );
    }

    #[test]
    fn kind_is_nonvolatile() {
        assert!(nvdimm().kind().is_nonvolatile());
    }

    #[test]
    fn starved_supercap_truncates_save_into_a_genuine_torn_image() {
        let mut nv = nvdimm();
        let tracer = Tracer::ring(16);
        nv.attach_tracer(tracer.clone());
        // 1 MiB = 256 pages; a full save needs 256 x 50_000 nJ. Give it
        // enough for one 64 KiB chunk (16 pages) and change.
        nv.set_supercap_budget_nj(SAVE_COST_PER_PAGE_NJ * 20);
        nv.write(SimTime::ZERO, 0, &[0x11; 128]);
        nv.write(SimTime::ZERO, 512 * 1024, &[0x22; 128]);
        let done = nv.power_loss(SimTime::from_ms(1));
        assert_eq!(
            tracer.count_matching(|e| matches!(e, TraceEvent::SaveEnergyExhausted { .. })),
            1
        );
        // Even long after the nominal save window, the DIMM is not
        // durable and the restore is a typed torn save — the engine
        // died mid-stream, it never finished.
        assert!(!nv.is_durable(done + SimTime::from_secs(1)));
        let err = nv.power_restore(done + SimTime::from_secs(1)).unwrap_err();
        assert!(matches!(err, RestoreError::TornSave { .. }), "got {err:?}");
        assert_eq!(nv.save_state(), SaveState::Lost);
        // Loud loss, not silent corruption: the partial image is never
        // presented; the DIMM comes back empty.
        let t = nv
            .power_restore(done + SimTime::from_secs(2))
            .expect("empty restart");
        let mut buf = [9u8; 128];
        nv.read(t, 0, &mut buf);
        assert_eq!(buf, [0u8; 128]);
    }

    #[test]
    fn generous_supercap_saves_cleanly_and_accounts_energy() {
        let mut nv = nvdimm();
        nv.set_supercap_budget_nj(nv.save_energy_required_nj());
        nv.write(SimTime::ZERO, 4096, &[0x77; 128]);
        let done = nv.power_loss(SimTime::from_ms(1));
        assert_eq!(nv.supercap_spent_nj(), nv.save_energy_required_nj());
        assert_eq!(nv.supercap_remaining_nj(), Some(0));
        assert!(nv.is_durable(done));
        let usable = nv.power_restore(done).expect("clean restore");
        // Power back: the supercap recharges for the next cut.
        assert_eq!(
            nv.supercap_remaining_nj(),
            Some(nv.save_energy_required_nj())
        );
        let mut buf = [0u8; 128];
        nv.read(usable, 4096, &mut buf);
        assert_eq!(buf, [0x77; 128]);
    }

    #[test]
    fn save_energy_required_scales_with_capacity() {
        let small = NvdimmN::new(1 << 20, DdrTimings::ddr3_1600());
        let large = NvdimmN::new(4 << 20, DdrTimings::ddr3_1600());
        assert_eq!(small.save_energy_required_nj(), 256 * SAVE_COST_PER_PAGE_NJ);
        assert_eq!(
            large.save_energy_required_nj(),
            small.save_energy_required_nj() * 4
        );
    }

    #[test]
    fn mismatched_arm_sequence_refuses_and_leaves_save_state_untouched() {
        let mut nv = nvdimm();
        nv.write(SimTime::ZERO, 0, &[0xB7; 128]);
        // A save is in flight when firmware fumbles the handshake.
        let done = nv.power_loss(SimTime::from_ms(1));
        let before = nv.save_state();
        assert_eq!(before, SaveState::Saving { done_at: done });
        assert!(!nv.arm_with_sequence(SaveSequence::JedecDdr4));
        assert!(!nv.is_armed());
        // The refusal must not clobber the in-flight save image.
        assert_eq!(nv.save_state(), before);
        // Re-arming with the right sequence and restoring after the
        // save window brings the original data back intact.
        let seq = nv.save_sequence();
        assert!(nv.arm_with_sequence(seq));
        let usable = nv.power_restore(done).expect("save image still valid");
        let mut buf = [0u8; 128];
        nv.read(usable, 0, &mut buf);
        assert_eq!(buf, [0xB7; 128]);
    }

    #[test]
    fn wrong_save_sequence_leaves_dimm_disarmed() {
        let mut nv = nvdimm();
        // Firmware issues the DDR4 JEDEC sequence at a DDR3 part:
        assert!(!nv.arm_with_sequence(SaveSequence::JedecDdr4));
        nv.write(SimTime::ZERO, 0, &[9u8; 64]);
        nv.power_loss(SimTime::from_ms(1));
        assert_eq!(nv.save_state(), SaveState::Lost, "data silently lost");
        // The matching vendor sequence arms it.
        let seq = nv.save_sequence();
        assert!(nv.arm_with_sequence(seq));
        assert!(nv.is_armed());
    }
}
