//! The device abstraction shared by all media models.

use std::fmt;

use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::SimTime;

use crate::ecc::{ReadResult, ScrubReport};

/// The memory-cell technology backing a device.
///
/// Paper §4.2: "ConTutto is memory technology agnostic; as long as the
/// interface supports DDR3, the backing memory cell technology could be
/// based on resistive filaments, chalcogenide, magnetic tunnel
/// junctions or capacitive cells".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MediaKind {
    /// Capacitive-cell DRAM.
    Dram,
    /// Spin-transfer-torque magnetic RAM.
    SttMram,
    /// Flash-backed DRAM (NVDIMM-N).
    NvdimmN,
    /// Raw NAND flash.
    NandFlash,
    /// Rotating magnetic disk.
    HardDisk,
}

impl MediaKind {
    /// Whether the *technology class* is marketed as non-volatile.
    ///
    /// This is a static property of the media, not a durability
    /// guarantee: an NVDIMM-N is only as non-volatile as its backup
    /// supply and save-image health. For the state-aware answer, ask
    /// the device — [`crate::nvdimm::NvdimmN::is_durable`].
    pub fn is_nonvolatile(self) -> bool {
        !matches!(self, MediaKind::Dram)
    }
}

impl Persist for MediaKind {
    fn persist(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            MediaKind::Dram => 0,
            MediaKind::SttMram => 1,
            MediaKind::NvdimmN => 2,
            MediaKind::NandFlash => 3,
            MediaKind::HardDisk => 4,
        };
        tag.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, snapshot::RestoreError> {
        Ok(match r.u8()? {
            0 => MediaKind::Dram,
            1 => MediaKind::SttMram,
            2 => MediaKind::NvdimmN,
            3 => MediaKind::NandFlash,
            4 => MediaKind::HardDisk,
            _ => {
                return Err(snapshot::RestoreError::Malformed {
                    context: "media kind discriminant",
                })
            }
        })
    }
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaKind::Dram => "DRAM",
            MediaKind::SttMram => "STT-MRAM",
            MediaKind::NvdimmN => "NVDIMM-N",
            MediaKind::NandFlash => "NAND flash",
            MediaKind::HardDisk => "HDD",
        };
        f.write_str(s)
    }
}

/// A byte-addressable memory/storage device with functional contents
/// and per-operation timing.
///
/// Operations take the current simulation time and return the
/// **completion time** of the access; the device internally tracks any
/// resource contention (busy banks, head position, program/erase
/// state), so back-to-back calls model queuing naturally.
pub trait MemoryDevice {
    /// Total device capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// The backing technology.
    fn kind(&self) -> MediaKind;

    /// Reads `buf.len()` bytes at `addr` into `buf`; returns the time
    /// the data is available plus the ECC verdict for the returned
    /// bytes ([`crate::ecc::ReadOutcome`]). Devices without an ECC
    /// path always report `Clean`.
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds the device capacity.
    fn read(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> ReadResult;

    /// Writes `data` at `addr`; returns the time the write is durable
    /// at the device (for DRAM: in the array; for flash: programmed).
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds the device capacity.
    fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime;

    /// Runs one patrol-scrub pass at `now`: walks the array,
    /// corrects latent single-bit errors in place and retires pages
    /// over the correctable-error threshold. Devices without a scrub
    /// engine report an empty pass. Zero simulated time.
    fn scrub_pass(&mut self, _now: SimTime) -> ScrubReport {
        ScrubReport::default()
    }
}

/// Whether `[addr, addr + len)` fits inside `capacity`, with the
/// overflow case answered `false` instead of panicking. Entry points
/// that accept *external* addresses (sideband maintenance paths, fault
/// reproducers) gate on this and surface a typed refusal; only the
/// internal data path, whose addresses the memory map has already
/// validated, goes on to [`check_range`].
pub fn range_ok(capacity: u64, addr: u64, len: usize) -> bool {
    addr.checked_add(len as u64)
        .is_some_and(|end| end <= capacity)
}

/// Validates an access range against a capacity.
///
/// # Panics
///
/// Panics when the access is out of range — out-of-range accesses are
/// always a modelling bug upstream (the memory map must prevent them).
pub fn check_range(capacity: u64, addr: u64, len: usize) {
    assert!(
        range_ok(capacity, addr, len),
        "device access [{addr:#x}, +{len}) exceeds capacity {capacity:#x}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonvolatility_classification() {
        assert!(!MediaKind::Dram.is_nonvolatile());
        assert!(MediaKind::SttMram.is_nonvolatile());
        assert!(MediaKind::NvdimmN.is_nonvolatile());
        assert!(MediaKind::NandFlash.is_nonvolatile());
        assert!(MediaKind::HardDisk.is_nonvolatile());
    }

    #[test]
    fn display_names() {
        assert_eq!(MediaKind::SttMram.to_string(), "STT-MRAM");
        assert_eq!(MediaKind::Dram.to_string(), "DRAM");
    }

    #[test]
    fn range_check_accepts_exact_fit() {
        check_range(1024, 1024 - 128, 128);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn range_check_rejects_overrun() {
        check_range(1024, 1000, 128);
    }

    #[test]
    fn range_ok_answers_instead_of_panicking() {
        assert!(range_ok(1024, 0, 128));
        assert!(range_ok(1024, 1024 - 128, 128));
        assert!(!range_ok(1024, 1000, 128));
        assert!(!range_ok(1024, 1024, 1));
        // Address arithmetic overflow is a refusal, not a panic.
        assert!(!range_ok(u64::MAX, u64::MAX, 128));
        assert!(!range_ok(1024, u64::MAX - 64, 128));
    }
}
