//! STT-MRAM device model.
//!
//! Paper §4.2(ii): "Our initial technology demonstration of MRAM used
//! iMTJ (inline magnetic tunnel junction); we have since migrated to
//! pMTJ (perpendicular MTJ) which shows improved power/performance
//! characteristics." The devices are 256 MB DDR3-interface MRAM DIMMs.
//!
//! STT-MRAM is byte-addressable, non-volatile, with DRAM-class read
//! latency, somewhat slower writes, and effectively unlimited
//! endurance compared to flash (Figure 8). The model charges flat
//! read/write latencies per 64 B access (MRAM has no row-buffer
//! dynamics) and tracks per-line write counts for endurance studies.

use std::collections::HashMap;

use contutto_sim::snapshot::{self, persist_sorted_map, restore_map, Persist, SnapReader};
use contutto_sim::SimTime;

use crate::ecc::{MediaRas, RasCounters, ReadResult, ScrubReport};
use crate::endurance::Technology;
use crate::fault::{FaultConfig, MediaFaultInjector};
use crate::store::SparseMemory;
use crate::traits::{check_range, MediaKind, MemoryDevice};

/// STT-MRAM device generation (paper §4.2(ii)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MramGeneration {
    /// Inline magnetic tunnel junction — the first demonstration.
    Imtj,
    /// Perpendicular MTJ — "improved power/performance".
    Pmtj,
}

impl MramGeneration {
    /// Read latency for a 64 B access.
    pub fn read_latency(self) -> SimTime {
        match self {
            MramGeneration::Imtj => SimTime::from_ps(45_000),
            MramGeneration::Pmtj => SimTime::from_ps(35_000),
        }
    }

    /// Write latency for a 64 B access.
    pub fn write_latency(self) -> SimTime {
        match self {
            MramGeneration::Imtj => SimTime::from_ps(120_000),
            MramGeneration::Pmtj => SimTime::from_ps(80_000),
        }
    }

    /// Write energy per 64 B access, in picojoules (relative figure
    /// used by the power comparison; pMTJ switches with less current).
    pub fn write_energy_pj(self) -> f64 {
        match self {
            MramGeneration::Imtj => 768.0, // 1.5 pJ/bit
            MramGeneration::Pmtj => 256.0, // 0.5 pJ/bit
        }
    }

    /// Nominal write endurance in cycles (Figure 8: STT-MRAM sits at
    /// 10¹²⁺, orders of magnitude above flash).
    pub fn endurance_cycles(self) -> u64 {
        1_000_000_000_000
    }
}

/// A single STT-MRAM device/DIMM.
///
/// # Example
///
/// ```
/// use contutto_memdev::{SttMram, MramGeneration, MemoryDevice};
/// use contutto_sim::SimTime;
///
/// let mut m = SttMram::new(256 << 20, MramGeneration::Pmtj);
/// m.write(SimTime::ZERO, 0, &[1u8; 64]);
/// let mut buf = [0u8; 64];
/// m.read(SimTime::from_us(1), 0, &mut buf);
/// assert_eq!(buf, [1u8; 64]);
/// assert!(m.kind().is_nonvolatile());
/// ```
#[derive(Debug)]
pub struct SttMram {
    capacity: u64,
    generation: MramGeneration,
    store: SparseMemory,
    busy_until: SimTime,
    write_counts: HashMap<u64, u64>,
    total_writes: u64,
    total_write_energy_pj: f64,
    ras: MediaRas,
}

impl SttMram {
    /// Creates an MRAM of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64, generation: MramGeneration) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        SttMram {
            capacity,
            generation,
            store: SparseMemory::new(),
            busy_until: SimTime::ZERO,
            write_counts: HashMap::new(),
            total_writes: 0,
            total_write_energy_pj: 0.0,
            ras: MediaRas::new(),
        }
    }

    /// Installs a deterministic media-fault injector. With
    /// `wear_acceleration` set, per-line write counts drive stuck-cell
    /// failures through the Figure 8 endurance band
    /// ([`crate::EnduranceClass::expected_failures`]).
    pub fn attach_media_faults(&mut self, cfg: FaultConfig) {
        self.ras.attach_injector(MediaFaultInjector::new(cfg));
    }

    /// Installs an injector whose flip schedule starts at `now`
    /// (runtime re-arm from a chaos plan).
    pub fn attach_media_faults_at(&mut self, now: SimTime, cfg: FaultConfig) {
        self.ras
            .attach_injector(MediaFaultInjector::new_at(cfg, now));
    }

    /// Correctable errors a page may accumulate before retirement.
    pub fn set_retire_threshold(&mut self, threshold: u32) {
        self.ras.set_retire_threshold(threshold);
    }

    /// Cumulative RAS counters.
    pub fn ras_counters(&self) -> RasCounters {
        self.ras.counters()
    }

    /// Pages retired so far.
    pub fn retired_pages(&self) -> Vec<u64> {
        self.ras.retired_pages()
    }

    /// The device generation.
    pub fn generation(&self) -> MramGeneration {
        self.generation
    }

    /// How many 64 B writes the hottest line has absorbed.
    pub fn max_line_wear(&self) -> u64 {
        self.write_counts.values().copied().max().unwrap_or(0)
    }

    /// Total 64 B write operations performed.
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Cumulative write energy in picojoules.
    pub fn total_write_energy_pj(&self) -> f64 {
        self.total_write_energy_pj
    }

    /// Whether any line has exceeded nominal endurance (practically
    /// unreachable for MRAM — that is the point of Figure 8).
    pub fn is_worn_out(&self) -> bool {
        self.max_line_wear() >= self.generation.endurance_cycles()
    }

    /// Functional read without timing (accelerator DMA path).
    pub fn peek(&self, addr: u64, buf: &mut [u8]) {
        check_range(self.capacity, addr, buf.len());
        self.store.read(addr, buf);
    }

    /// Functional write without timing (accelerator DMA path).
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        check_range(self.capacity, addr, data.len());
        self.store.write(addr, data);
        self.ras.record_write(addr, data.len(), &self.store);
    }

    /// Maintenance-path read of one line via the service interface
    /// (zero timing): the ECC-verified line plus its poison status.
    pub fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> ([u8; 128], bool) {
        check_range(self.capacity, addr, 128);
        self.ras.sideband_read(now, addr, &mut self.store)
    }

    /// Maintenance-path write of one line, optionally depositing it
    /// with its poison marker (evacuation moves rot as rot).
    pub fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) {
        check_range(self.capacity, addr, 128);
        self.ras.sideband_write(addr, data, poison, &mut self.store);
    }

    /// Simulated power loss: contents are retained (non-volatile).
    pub fn power_loss(&mut self) {
        self.busy_until = SimTime::ZERO;
    }

    /// Serializes all dynamic state (contents, wear counters, RAS
    /// bookkeeping). Capacity and generation are construction
    /// parameters: the image only cross-checks them.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.capacity.persist(out);
        let generation: u8 = match self.generation {
            MramGeneration::Imtj => 0,
            MramGeneration::Pmtj => 1,
        };
        generation.persist(out);
        self.store.persist(out);
        self.busy_until.persist(out);
        persist_sorted_map(&self.write_counts, out);
        self.total_writes.persist(out);
        self.total_write_energy_pj.persist(out);
        self.ras.persist(out);
    }

    /// Overlays a [`SttMram::snapshot_state`] image onto this device.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if the image came
    /// from a device of a different capacity or generation, or any
    /// decode error from a corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let capacity = r.u64()?;
        let generation = r.u8()?;
        let expected: u8 = match self.generation {
            MramGeneration::Imtj => 0,
            MramGeneration::Pmtj => 1,
        };
        if capacity != self.capacity || generation != expected {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "mram capacity or generation",
            });
        }
        let store = SparseMemory::restore(r)?;
        let busy_until = SimTime::restore(r)?;
        let write_counts = restore_map::<u64, u64>(r)?;
        let total_writes = r.u64()?;
        let total_write_energy_pj = r.f64()?;
        let ras = MediaRas::restore(r)?;
        self.store = store;
        self.busy_until = busy_until;
        self.write_counts = write_counts;
        self.total_writes = total_writes;
        self.total_write_energy_pj = total_write_energy_pj;
        self.ras = ras;
        Ok(())
    }

    fn spans(addr: u64, len: usize) -> u64 {
        let first = addr / 64;
        let last = (addr + len as u64 - 1) / 64;
        last - first + 1
    }
}

impl MemoryDevice for SttMram {
    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn kind(&self) -> MediaKind {
        MediaKind::SttMram
    }

    fn read(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> ReadResult {
        check_range(self.capacity, addr, buf.len());
        let outcome = self.ras.verify_read(now, addr, buf, &mut self.store);
        let start = now.max(self.busy_until);
        let done = start + self.generation.read_latency() * Self::spans(addr, buf.len());
        self.busy_until = done;
        ReadResult { done, outcome }
    }

    fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        check_range(self.capacity, addr, data.len());
        self.ras.pre_write(now, addr, data.len(), &mut self.store);
        self.store.write(addr, data);
        self.ras.record_write(addr, data.len(), &self.store);
        let lines = Self::spans(addr, data.len());
        let endurance = Technology::SttMram.endurance();
        for i in 0..lines {
            let line = addr / 64 + i;
            let count = self.write_counts.entry(line).or_insert(0);
            *count += 1;
            self.ras.note_write(line * 64, *count, endurance);
        }
        self.total_writes += lines;
        self.total_write_energy_pj += self.generation.write_energy_pj() * lines as f64;
        let start = now.max(self.busy_until);
        let done = start + self.generation.write_latency() * lines;
        self.busy_until = done;
        done
    }

    fn scrub_pass(&mut self, now: SimTime) -> ScrubReport {
        self.ras.scrub(now, &mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_roundtrip_survives_power_loss() {
        let mut m = SttMram::new(1 << 20, MramGeneration::Imtj);
        m.write(SimTime::ZERO, 128, &[0x5A; 64]);
        m.power_loss();
        let mut buf = [0u8; 64];
        m.read(SimTime::ZERO, 128, &mut buf);
        assert_eq!(buf, [0x5A; 64]);
    }

    #[test]
    fn pmtj_outperforms_imtj() {
        assert!(MramGeneration::Pmtj.read_latency() < MramGeneration::Imtj.read_latency());
        assert!(MramGeneration::Pmtj.write_latency() < MramGeneration::Imtj.write_latency());
        assert!(MramGeneration::Pmtj.write_energy_pj() < MramGeneration::Imtj.write_energy_pj());
    }

    #[test]
    fn write_slower_than_read() {
        let mut m = SttMram::new(1 << 20, MramGeneration::Pmtj);
        let r = m.read(SimTime::ZERO, 0, &mut [0u8; 64]).done;
        let w_start = r;
        let w = m.write(w_start, 0, &[0u8; 64]);
        assert!(w - w_start > r - SimTime::ZERO);
    }

    #[test]
    fn wear_tracking() {
        let mut m = SttMram::new(1 << 20, MramGeneration::Pmtj);
        for _ in 0..10 {
            m.write(SimTime::ZERO, 0, &[1u8; 64]);
        }
        m.write(SimTime::ZERO, 64, &[1u8; 64]);
        assert_eq!(m.max_line_wear(), 10);
        assert_eq!(m.total_writes(), 11);
        assert!(!m.is_worn_out());
        assert!(m.total_write_energy_pj() > 0.0);
    }

    #[test]
    fn multi_line_write_counts_spans() {
        let mut m = SttMram::new(1 << 20, MramGeneration::Pmtj);
        m.write(SimTime::ZERO, 32, &[0u8; 64]); // straddles two 64 B lines
        assert_eq!(m.total_writes(), 2);
    }

    #[test]
    fn snapshot_restore_preserves_wear_and_contents() {
        let mut m = SttMram::new(1 << 20, MramGeneration::Pmtj);
        for _ in 0..7 {
            m.write(SimTime::ZERO, 0, &[0x3C; 64]);
        }
        let mut img = Vec::new();
        m.snapshot_state(&mut img);
        let mut fresh = SttMram::new(1 << 20, MramGeneration::Pmtj);
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        assert_eq!(fresh.max_line_wear(), 7);
        assert_eq!(fresh.total_writes(), m.total_writes());
        assert_eq!(fresh.total_write_energy_pj(), m.total_write_energy_pj());
        let mut buf = [0u8; 64];
        fresh.read(SimTime::from_us(1), 0, &mut buf);
        assert_eq!(buf, [0x3C; 64]);
        // A generation mismatch is a topology error, not a silent mix.
        let mut imtj = SttMram::new(1 << 20, MramGeneration::Imtj);
        let err = imtj.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn device_serializes_accesses() {
        let mut m = SttMram::new(1 << 20, MramGeneration::Pmtj);
        let mut buf = [0u8; 64];
        let a = m.read(SimTime::ZERO, 0, &mut buf).done;
        let b = m.read(SimTime::ZERO, 4096, &mut buf).done; // issued at same time
        assert_eq!(b - a, MramGeneration::Pmtj.read_latency());
    }
}
