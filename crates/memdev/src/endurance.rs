//! Write-endurance comparison across non-volatile technologies.
//!
//! Reproduces the data behind **Figure 8** ("Endurance comparison
//! between different non-volatile memory technologies", sources
//! \[13\], \[14\] in the paper): NAND flash endures 10³–10⁵ program/erase
//! cycles, PCM ~10⁸–10⁹, ReRAM ~10⁵–10¹¹, and STT-MRAM 10¹²–10¹⁵ —
//! effectively DRAM-class. "Endurance of non-volatile memory
//! technologies is of significant concern when used on a high
//! bandwidth memory bus" (paper §4.2(ii)); the figure is the argument
//! for why MRAM can live on the DMI link while flash cannot.

use std::fmt;

/// A memory technology in the endurance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Technology {
    /// Triple-level-cell NAND flash.
    NandTlc,
    /// Multi-level-cell NAND flash.
    NandMlc,
    /// Single-level-cell NAND flash.
    NandSlc,
    /// Phase-change memory (chalcogenide).
    Pcm,
    /// Resistive RAM (filamentary).
    ReRam,
    /// Spin-transfer-torque MRAM.
    SttMram,
    /// DRAM (reference point; endurance effectively unlimited).
    Dram,
}

impl Technology {
    /// All technologies, in Figure 8's left-to-right order.
    pub fn all() -> [Technology; 7] {
        [
            Technology::NandTlc,
            Technology::NandMlc,
            Technology::NandSlc,
            Technology::Pcm,
            Technology::ReRam,
            Technology::SttMram,
            Technology::Dram,
        ]
    }

    /// The endurance band for this technology.
    pub fn endurance(self) -> EnduranceClass {
        match self {
            Technology::NandTlc => EnduranceClass::new(1e3, 5e3),
            Technology::NandMlc => EnduranceClass::new(3e3, 3e4),
            Technology::NandSlc => EnduranceClass::new(5e4, 1e5),
            Technology::Pcm => EnduranceClass::new(1e8, 1e9),
            Technology::ReRam => EnduranceClass::new(1e5, 1e11),
            Technology::SttMram => EnduranceClass::new(1e12, 1e15),
            Technology::Dram => EnduranceClass::new(1e15, 1e16),
        }
    }

    /// Whether this technology is non-volatile.
    pub fn is_nonvolatile(self) -> bool {
        !matches!(self, Technology::Dram)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technology::NandTlc => "NAND (TLC)",
            Technology::NandMlc => "NAND (MLC)",
            Technology::NandSlc => "NAND (SLC)",
            Technology::Pcm => "PCM",
            Technology::ReRam => "ReRAM",
            Technology::SttMram => "STT-MRAM",
            Technology::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// A write-endurance band (min..max cycles to failure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceClass {
    min_cycles: f64,
    max_cycles: f64,
}

impl EnduranceClass {
    /// Creates a band.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min <= max`.
    pub fn new(min_cycles: f64, max_cycles: f64) -> Self {
        assert!(min_cycles > 0.0 && min_cycles <= max_cycles, "invalid band");
        EnduranceClass {
            min_cycles,
            max_cycles,
        }
    }

    /// Lower bound in cycles.
    pub fn min_cycles(self) -> f64 {
        self.min_cycles
    }

    /// Upper bound in cycles.
    pub fn max_cycles(self) -> f64 {
        self.max_cycles
    }

    /// log10 of the bounds (the axis Figure 8 is drawn on).
    pub fn log10_band(self) -> (f64, f64) {
        (self.min_cycles.log10(), self.max_cycles.log10())
    }

    /// Lifetime in days if a single cell is rewritten continuously at
    /// `writes_per_sec` (pessimal wear, no leveling) — the "memory bus"
    /// stress the paper worries about.
    pub fn worst_case_lifetime_days(self, writes_per_sec: f64) -> f64 {
        assert!(writes_per_sec > 0.0);
        self.min_cycles / writes_per_sec / 86_400.0
    }

    /// Expected number of failed lines after `writes_per_line` write
    /// cycles to each of `lines` lines.
    ///
    /// Figure 8 gives each technology a min..max cycles-to-failure
    /// band on a log axis; this interprets the band as a population
    /// spread: no line fails below `min_cycles`, every line has
    /// failed at `max_cycles`, and the failed fraction grows linearly
    /// in log10(cycles) between the two. The MRAM wear-out injector
    /// ([`crate::fault::MediaFaultInjector::note_write`]) uses this
    /// to turn Figure 8 from a display dataset into a failure model.
    pub fn expected_failures(self, writes_per_line: f64, lines: u64) -> f64 {
        if writes_per_line <= self.min_cycles {
            return 0.0;
        }
        if writes_per_line >= self.max_cycles {
            return lines as f64;
        }
        let (lo, hi) = self.log10_band();
        if hi <= lo {
            return lines as f64;
        }
        (writes_per_line.log10() - lo) / (hi - lo) * lines as f64
    }
}

/// One row of the Figure 8 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EnduranceRow {
    /// The technology.
    pub technology: Technology,
    /// log10 endurance band.
    pub log10_min: f64,
    /// Upper edge of the band.
    pub log10_max: f64,
    /// Days a cell survives at 1 M writes/s (memory-bus-class rate).
    pub lifetime_days_at_1mwps: f64,
}

/// Produces the full Figure 8 dataset.
pub fn figure8_dataset() -> Vec<EnduranceRow> {
    Technology::all()
        .into_iter()
        .map(|tech| {
            let e = tech.endurance();
            let (lo, hi) = e.log10_band();
            EnduranceRow {
                technology: tech,
                log10_min: lo,
                log10_max: hi,
                lifetime_days_at_1mwps: e.worst_case_lifetime_days(1e6),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_ordering_holds() {
        // The claim of Figure 8: MRAM >> PCM >> NAND.
        let mram = Technology::SttMram.endurance();
        let pcm = Technology::Pcm.endurance();
        let slc = Technology::NandSlc.endurance();
        let mlc = Technology::NandMlc.endurance();
        assert!(mram.min_cycles() > pcm.max_cycles());
        assert!(pcm.min_cycles() > slc.max_cycles());
        assert!(slc.min_cycles() > mlc.min_cycles());
    }

    #[test]
    fn mram_approaches_dram() {
        let mram = Technology::SttMram.endurance();
        let dram = Technology::Dram.endurance();
        // Within ~3 decades of DRAM at the top end.
        assert!(dram.max_cycles().log10() - mram.max_cycles().log10() <= 3.0);
    }

    #[test]
    fn flash_dies_in_seconds_on_a_memory_bus() {
        // At 1 M writes/s to one cell, MLC NAND lasts well under a minute;
        // STT-MRAM lasts over a decade.
        let mlc = Technology::NandMlc
            .endurance()
            .worst_case_lifetime_days(1e6);
        let mram = Technology::SttMram
            .endurance()
            .worst_case_lifetime_days(1e6);
        assert!(mlc < 1.0 / 24.0 / 60.0, "MLC lifetime {mlc} days");
        assert!(mram > 10.0, "MRAM lifetime {mram} days");
        assert!(mram / mlc > 1e7, "MRAM/MLC ratio {}", mram / mlc);
    }

    #[test]
    fn dataset_covers_all_technologies() {
        let rows = figure8_dataset();
        assert_eq!(rows.len(), 7);
        assert!(rows
            .windows(2)
            .all(|w| w[0].log10_min <= w[1].log10_min + 6.0));
        for row in &rows {
            assert!(row.log10_max >= row.log10_min);
        }
    }

    #[test]
    fn volatility_classification() {
        assert!(Technology::SttMram.is_nonvolatile());
        assert!(!Technology::Dram.is_nonvolatile());
    }

    #[test]
    #[should_panic(expected = "invalid band")]
    fn band_validation() {
        let _ = EnduranceClass::new(10.0, 1.0);
    }

    #[test]
    fn expected_failures_tracks_the_band() {
        let mram = Technology::SttMram.endurance(); // 1e12..1e15
        assert_eq!(mram.expected_failures(1e9, 1000), 0.0);
        assert_eq!(mram.expected_failures(1e12, 1000), 0.0);
        assert_eq!(mram.expected_failures(1e15, 1000), 1000.0);
        assert_eq!(mram.expected_failures(1e16, 1000), 1000.0);
        // Halfway through the log band: half the population.
        let mid = mram.expected_failures(10f64.powf(13.5), 1000);
        assert!((mid - 500.0).abs() < 1e-6, "mid {mid}");
        // Monotone in writes.
        assert!(mram.expected_failures(1e14, 10) > mram.expected_failures(1e13, 10));
    }
}
