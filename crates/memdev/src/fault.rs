//! Deterministic media-fault injection.
//!
//! [`MediaFaultInjector`] models the physical failure modes the RAS
//! layer ([`crate::ecc`]) exists to absorb:
//!
//! * **transient flips** — radiation-style latent single-bit upsets,
//!   planted *into the array* on a precomputed, seed-derived schedule.
//!   Demand reads correct them in the returned buffer only; the patrol
//!   scrubber heals the array. Unscrubbed, they accumulate until two
//!   land in one 64-bit word and the line goes uncorrectable.
//! * **stuck-at cells** — bits wired to a fixed level, overlaid on
//!   every read (they cannot be healed). Repeated corrections drive
//!   page retirement.
//! * **wear-out** — writes past the technology's endurance band
//!   ([`EnduranceClass::expected_failures`], Figure 8) convert
//!   heavily-written lines into stuck cells; the MRAM model feeds its
//!   per-line write counters through this.
//!
//! Everything is derived from [`FaultConfig::seed`] via
//! [`SimRng`], so identical configurations replay byte-identically —
//! the property the media campaign's fingerprint tests pin down.

use std::collections::BTreeSet;

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};
use contutto_sim::{SimRng, SimTime};

use crate::endurance::EnduranceClass;
use crate::store::SparseMemory;

const PAGE_BYTES: u64 = 4096;

/// Configuration of a [`MediaFaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for every random choice the injector makes.
    pub seed: u64,
    /// Transient single-bit flips to schedule.
    pub transient_flips: u32,
    /// The flips are spread uniformly over `[0, window)`.
    pub window: SimTime,
    /// First byte of the faulted ("hot") address range.
    pub hot_start: u64,
    /// Length of the hot range in bytes.
    pub hot_len: u64,
    /// Stuck-at cells planted up front inside the hot range.
    pub stuck_cells: u32,
    /// Multiplier applied to per-line write counts before the
    /// endurance check; 0.0 disables wear-out injection. Lets tests
    /// reach 10¹²-cycle MRAM wear without simulating 10¹² writes.
    pub wear_acceleration: f64,
}

impl FaultConfig {
    /// A quiet injector: nothing ever fails.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_flips: 0,
            window: SimTime::ZERO,
            hot_start: 0,
            hot_len: 4096,
            stuck_cells: 0,
            wear_acceleration: 0.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StuckCell {
    addr: u64,
    bit: u8,
    level: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TransientFlip {
    due: SimTime,
    addr: u64,
    bit: u8,
}

/// Cumulative injector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorStats {
    /// Transient flips planted into the array so far.
    pub planted: u64,
    /// Scheduled flips suppressed because their page was retired.
    pub suppressed: u64,
    /// Stuck cells currently active (configured + wear-induced).
    pub stuck_cells: u64,
    /// Stuck cells created by wear-out.
    pub wear_failures: u64,
}

/// Deterministic, seedable source of media faults for one device.
#[derive(Debug, Clone)]
pub struct MediaFaultInjector {
    schedule: Vec<TransientFlip>,
    cursor: usize,
    stuck: Vec<StuckCell>,
    worn_lines: BTreeSet<u64>,
    wear_acceleration: f64,
    stats: InjectorStats,
}

impl MediaFaultInjector {
    /// Builds the full fault plan from `cfg` (all randomness is
    /// consumed here; injection itself is pure replay). Flips are
    /// scheduled over `[0, window)`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self::new_at(cfg, SimTime::ZERO)
    }

    /// Like [`Self::new`] but scheduled relative to `start`: flips
    /// land over `[start, start + window)`. This is what lets a chaos
    /// plan arm a fault burst on a device mid-run without the burst
    /// retroactively landing in the past. An empty hot range is
    /// clamped to one byte rather than rejected — replayed plan files
    /// are external input and must not abort the process.
    pub fn new_at(cfg: FaultConfig, start: SimTime) -> Self {
        let hot_len = cfg.hot_len.max(1);
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let window_ps = cfg.window.as_ps().max(1);
        let mut schedule: Vec<TransientFlip> = (0..cfg.transient_flips)
            .map(|_| TransientFlip {
                due: start + SimTime::from_ps(rng.gen_below(window_ps)),
                addr: cfg.hot_start + rng.gen_below(hot_len),
                bit: rng.gen_below(8) as u8,
            })
            .collect();
        schedule.sort_by_key(|f| (f.due, f.addr, f.bit));
        let stuck: Vec<StuckCell> = (0..cfg.stuck_cells)
            .map(|_| StuckCell {
                addr: cfg.hot_start + rng.gen_below(hot_len),
                bit: rng.gen_below(8) as u8,
                level: rng.gen_bool(0.5),
            })
            .collect();
        let stats = InjectorStats {
            stuck_cells: stuck.len() as u64,
            ..InjectorStats::default()
        };
        MediaFaultInjector {
            schedule,
            cursor: 0,
            stuck,
            worn_lines: BTreeSet::new(),
            wear_acceleration: cfg.wear_acceleration,
            stats,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> InjectorStats {
        self.stats
    }

    /// Plants every scheduled transient flip due by `now` into the
    /// array. Flips landing in retired pages are suppressed — the
    /// page is out of service.
    pub fn plant_due(&mut self, now: SimTime, store: &mut SparseMemory, retired: &BTreeSet<u64>) {
        while let Some(flip) = self.schedule.get(self.cursor) {
            if flip.due > now {
                break;
            }
            let page = flip.addr / PAGE_BYTES * PAGE_BYTES;
            if retired.contains(&page) {
                self.stats.suppressed += 1;
            } else {
                let mut b = [0u8; 1];
                store.read(flip.addr, &mut b);
                store.write(flip.addr, &[b[0] ^ (1 << flip.bit)]);
                self.stats.planted += 1;
            }
            self.cursor += 1;
        }
    }

    /// Overlays stuck-at cells onto a 128-byte line read at `base`.
    /// Cells in retired pages stay silent (the page is mapped out).
    pub fn overlay(&self, base: u64, line: &mut [u8; 128], retired: &BTreeSet<u64>) {
        if retired.contains(&(base / PAGE_BYTES * PAGE_BYTES)) {
            return;
        }
        let end = base + line.len() as u64;
        for cell in &self.stuck {
            if cell.addr >= base && cell.addr < end {
                let byte = &mut line[(cell.addr - base) as usize];
                if cell.level {
                    *byte |= 1 << cell.bit;
                } else {
                    *byte &= !(1 << cell.bit);
                }
            }
        }
    }

    /// Feeds a per-line write count through the endurance model: once
    /// `writes * wear_acceleration` enters the technology's failure
    /// band, the line grows a stuck cell at a seed-deterministic
    /// position. Returns `true` when a new wear failure appeared.
    pub fn note_write(&mut self, line_addr: u64, writes: u64, endurance: EnduranceClass) -> bool {
        if self.wear_acceleration <= 0.0 || self.worn_lines.contains(&line_addr) {
            return false;
        }
        let effective = writes as f64 * self.wear_acceleration;
        if endurance.expected_failures(effective, 1) <= 0.0 {
            return false;
        }
        self.worn_lines.insert(line_addr);
        // Deterministic position: derive from the line address alone so
        // the failure does not depend on unrelated RNG consumption.
        let mix = line_addr
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        self.stuck.push(StuckCell {
            addr: line_addr + (mix % 64),
            bit: ((mix >> 8) % 8) as u8,
            level: mix & 0x1_0000 != 0,
        });
        self.stats.stuck_cells += 1;
        self.stats.wear_failures += 1;
        true
    }
}

impl Persist for StuckCell {
    fn persist(&self, out: &mut Vec<u8>) {
        self.addr.persist(out);
        self.bit.persist(out);
        self.level.persist(out);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let addr = r.u64()?;
        let bit = r.u8()?;
        let level = r.bool()?;
        if bit >= 8 {
            return Err(RestoreError::Malformed {
                context: "stuck-cell bit out of range",
            });
        }
        Ok(StuckCell { addr, bit, level })
    }
}

impl Persist for TransientFlip {
    fn persist(&self, out: &mut Vec<u8>) {
        self.due.persist(out);
        self.addr.persist(out);
        self.bit.persist(out);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let due = SimTime::restore(r)?;
        let addr = r.u64()?;
        let bit = r.u8()?;
        if bit >= 8 {
            return Err(RestoreError::Malformed {
                context: "transient-flip bit out of range",
            });
        }
        Ok(TransientFlip { due, addr, bit })
    }
}

impl Persist for InjectorStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.planted.persist(out);
        self.suppressed.persist(out);
        self.stuck_cells.persist(out);
        self.wear_failures.persist(out);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(InjectorStats {
            planted: r.u64()?,
            suppressed: r.u64()?,
            stuck_cells: r.u64()?,
            wear_failures: r.u64()?,
        })
    }
}

impl Persist for MediaFaultInjector {
    fn persist(&self, out: &mut Vec<u8>) {
        self.schedule.persist(out);
        self.cursor.persist(out);
        self.stuck.persist(out);
        self.worn_lines.persist(out);
        self.wear_acceleration.persist(out);
        self.stats.persist(out);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let schedule = Vec::<TransientFlip>::restore(r)?;
        let cursor = usize::restore(r)?;
        if cursor > schedule.len() {
            return Err(RestoreError::Malformed {
                context: "fault cursor past end of schedule",
            });
        }
        Ok(MediaFaultInjector {
            schedule,
            cursor,
            stuck: Vec::restore(r)?,
            worn_lines: BTreeSet::restore(r)?,
            wear_acceleration: f64::restore(r)?,
            stats: InjectorStats::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultConfig {
        FaultConfig {
            seed: 42,
            transient_flips: 20,
            window: SimTime::from_us(100),
            hot_start: 0,
            hot_len: 1024,
            stuck_cells: 2,
            wear_acceleration: 0.0,
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = MediaFaultInjector::new(cfg());
        let b = MediaFaultInjector::new(cfg());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.stuck, b.stuck);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MediaFaultInjector::new(cfg());
        let b = MediaFaultInjector::new(FaultConfig { seed: 43, ..cfg() });
        assert_ne!(a.schedule, b.schedule);
    }

    #[test]
    fn plant_due_is_monotonic_and_complete() {
        let mut inj = MediaFaultInjector::new(cfg());
        let mut store = SparseMemory::new();
        let retired = BTreeSet::new();
        inj.plant_due(SimTime::from_us(50), &mut store, &retired);
        let mid = inj.stats().planted;
        assert!(mid > 0 && mid < 20, "roughly half due at half window");
        inj.plant_due(SimTime::from_us(100), &mut store, &retired);
        assert_eq!(inj.stats().planted, 20);
        // Replant is a no-op.
        inj.plant_due(SimTime::from_ms(1), &mut store, &retired);
        assert_eq!(inj.stats().planted, 20);
    }

    #[test]
    fn new_at_offsets_the_schedule_without_reordering_it() {
        let base = MediaFaultInjector::new(cfg());
        let start = SimTime::from_us(7);
        let shifted = MediaFaultInjector::new_at(cfg(), start);
        assert_eq!(base.schedule.len(), shifted.schedule.len());
        for (a, b) in base.schedule.iter().zip(&shifted.schedule) {
            assert_eq!(b.due, a.due + start);
            assert_eq!((b.addr, b.bit), (a.addr, a.bit));
        }
        // Nothing is due before the arm time.
        let mut inj = MediaFaultInjector::new_at(cfg(), start);
        let mut store = SparseMemory::new();
        let retired = BTreeSet::new();
        inj.plant_due(start - SimTime::from_ps(1), &mut store, &retired);
        assert_eq!(inj.stats().planted, 0);
    }

    #[test]
    fn empty_hot_range_is_clamped_not_fatal() {
        let inj = MediaFaultInjector::new(FaultConfig {
            hot_len: 0,
            hot_start: 64,
            ..cfg()
        });
        assert!(inj.schedule.iter().all(|f| f.addr == 64));
    }

    #[test]
    fn retired_pages_suppress_flips_and_overlays() {
        let mut inj = MediaFaultInjector::new(cfg());
        let mut store = SparseMemory::new();
        let mut retired = BTreeSet::new();
        retired.insert(0u64); // the whole hot range is page 0
        inj.plant_due(SimTime::from_ms(1), &mut store, &retired);
        assert_eq!(inj.stats().planted, 0);
        assert_eq!(inj.stats().suppressed, 20);
        assert_eq!(store.resident_pages(), 0);

        let mut line = [0u8; 128];
        inj.overlay(0, &mut line, &retired);
        assert_eq!(line, [0u8; 128], "no stuck overlay on a retired page");
    }

    #[test]
    fn stuck_cells_force_their_level() {
        let mut inj = MediaFaultInjector::new(FaultConfig {
            stuck_cells: 8,
            transient_flips: 0,
            ..cfg()
        });
        inj.stuck = vec![StuckCell {
            addr: 5,
            bit: 3,
            level: true,
        }];
        let retired = BTreeSet::new();
        let mut line = [0u8; 128];
        inj.overlay(0, &mut line, &retired);
        assert_eq!(line[5], 0x08);
        let mut line = [0xFFu8; 128];
        inj.stuck[0].level = false;
        inj.overlay(0, &mut line, &retired);
        assert_eq!(line[5], 0xF7);
    }

    #[test]
    fn wear_out_crosses_the_endurance_band_once() {
        let mut inj = MediaFaultInjector::new(FaultConfig {
            wear_acceleration: 1e10,
            transient_flips: 0,
            stuck_cells: 0,
            ..cfg()
        });
        let band = EnduranceClass::new(1e12, 1e15);
        assert!(!inj.note_write(0, 10, band), "1e11 effective: below band");
        assert!(inj.note_write(0, 200, band), "2e12 effective: worn");
        assert!(!inj.note_write(0, 400, band), "already worn: no new cell");
        assert_eq!(inj.stats().wear_failures, 1);
        assert_eq!(inj.stats().stuck_cells, 1);
    }

    #[test]
    fn snapshot_roundtrip_mid_schedule() {
        let mut inj = MediaFaultInjector::new(cfg());
        let mut store = SparseMemory::new();
        let retired = BTreeSet::new();
        inj.plant_due(SimTime::from_us(50), &mut store, &retired);
        let planted_so_far = inj.stats().planted;
        assert!(planted_so_far > 0 && inj.cursor < inj.schedule.len());

        let mut img = Vec::new();
        inj.persist(&mut img);
        let mut restored = MediaFaultInjector::restore(&mut SnapReader::new(&img)).unwrap();
        assert_eq!(restored.cursor, inj.cursor);
        assert_eq!(restored.stats(), inj.stats());

        // The remaining schedule plants identically from both copies.
        let mut store2 = store.clone();
        inj.plant_due(SimTime::from_ms(1), &mut store, &retired);
        restored.plant_due(SimTime::from_ms(1), &mut store2, &retired);
        assert_eq!(restored.stats(), inj.stats());
        assert_eq!(store2.resident_page_addrs(), store.resident_page_addrs());
    }

    #[test]
    fn snapshot_restore_rejects_cursor_past_schedule() {
        let inj = MediaFaultInjector::new(FaultConfig {
            transient_flips: 2,
            ..cfg()
        });
        let mut img = Vec::new();
        inj.persist(&mut img);
        // The cursor field sits right after the 2-entry schedule:
        // 8 (len) + 2 * 17 (due+addr+bit) = offset 42. Overwrite it
        // with a value past the end.
        img[42..50].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = MediaFaultInjector::restore(&mut SnapReader::new(&img)).unwrap_err();
        assert!(matches!(err, RestoreError::Malformed { .. }), "got {err:?}");
    }
}
