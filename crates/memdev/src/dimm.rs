//! DIMM modules and SPD (serial presence detect).
//!
//! Paper §3.4: "The final use of the external FSI slave is to directly
//! read the SPD (serial presence detect) on the DIMMs plugged into
//! ConTutto, which is critical for detecting and controlling the
//! NVDIMMs." The firmware model reads these structures to decide
//! memory-map placement and NVDIMM arming.

use contutto_sim::snapshot::{self, Persist, SnapReader};

use crate::dram::{DdrTimings, Dram};
use crate::mram::{MramGeneration, SttMram};
use crate::nvdimm::NvdimmN;
use crate::traits::{MediaKind, MemoryDevice};

/// Serial-presence-detect contents of a DIMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spd {
    /// Backing technology.
    pub kind: MediaKind,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Module part identifier string.
    pub part_number: String,
    /// Whether the module preserves contents across power loss.
    pub nonvolatile: bool,
    /// Whether the save sequence is vendor-specific (DDR3 NVDIMMs,
    /// paper §4.2(iii)) rather than JEDEC-standardized (DDR4).
    pub vendor_specific_save: bool,
}

impl Spd {
    /// SPD for a stock DDR3 DRAM DIMM.
    pub fn dram(capacity_bytes: u64) -> Self {
        Spd {
            kind: MediaKind::Dram,
            capacity_bytes,
            part_number: format!("DDR3-1600-{}GB", capacity_bytes >> 30),
            nonvolatile: false,
            vendor_specific_save: false,
        }
    }

    /// SPD for a 256 MB STT-MRAM DIMM (the paper's parts).
    pub fn mram(capacity_bytes: u64, gen: MramGeneration) -> Self {
        Spd {
            kind: MediaKind::SttMram,
            capacity_bytes,
            part_number: format!(
                "MRAM-{}-{}MB",
                match gen {
                    MramGeneration::Imtj => "iMTJ",
                    MramGeneration::Pmtj => "pMTJ",
                },
                capacity_bytes >> 20
            ),
            nonvolatile: true,
            vendor_specific_save: false,
        }
    }

    /// SPD for a DDR3 NVDIMM-N.
    pub fn nvdimm(capacity_bytes: u64) -> Self {
        Spd {
            kind: MediaKind::NvdimmN,
            capacity_bytes,
            part_number: format!("NVDIMM-N-DDR3-{}GB", capacity_bytes >> 30),
            nonvolatile: true,
            vendor_specific_save: true,
        }
    }
}

/// A populated DIMM: SPD plus the live device model.
#[derive(Debug)]
pub struct DimmModule {
    spd: Spd,
    device: DimmDevice,
}

/// The device variants a DIMM slot can hold.
#[derive(Debug)]
pub enum DimmDevice {
    /// Plain DRAM.
    Dram(Box<Dram>),
    /// STT-MRAM.
    Mram(Box<SttMram>),
    /// Flash-backed DRAM.
    Nvdimm(Box<NvdimmN>),
}

impl DimmModule {
    /// Builds a DRAM DIMM.
    pub fn new_dram(capacity: u64, timings: DdrTimings) -> Self {
        DimmModule {
            spd: Spd::dram(capacity),
            device: DimmDevice::Dram(Box::new(Dram::new(capacity, timings))),
        }
    }

    /// Builds an STT-MRAM DIMM.
    pub fn new_mram(capacity: u64, gen: MramGeneration) -> Self {
        DimmModule {
            spd: Spd::mram(capacity, gen),
            device: DimmDevice::Mram(Box::new(SttMram::new(capacity, gen))),
        }
    }

    /// Builds an NVDIMM-N.
    pub fn new_nvdimm(capacity: u64, timings: DdrTimings) -> Self {
        DimmModule {
            spd: Spd::nvdimm(capacity),
            device: DimmDevice::Nvdimm(Box::new(NvdimmN::new(capacity, timings))),
        }
    }

    /// The SPD contents (what the firmware reads over FSI/I²C).
    pub fn spd(&self) -> &Spd {
        &self.spd
    }

    /// Mutable access to the device model.
    pub fn device_mut(&mut self) -> &mut dyn MemoryDevice {
        match &mut self.device {
            DimmDevice::Dram(d) => d.as_mut(),
            DimmDevice::Mram(d) => d.as_mut(),
            DimmDevice::Nvdimm(d) => d.as_mut(),
        }
    }

    /// Shared access to the device model.
    pub fn device(&self) -> &dyn MemoryDevice {
        match &self.device {
            DimmDevice::Dram(d) => d.as_ref(),
            DimmDevice::Mram(d) => d.as_ref(),
            DimmDevice::Nvdimm(d) => d.as_ref(),
        }
    }

    /// The NVDIMM engine, if this module is one (firmware needs the
    /// arming controls).
    pub fn as_nvdimm_mut(&mut self) -> Option<&mut NvdimmN> {
        match &mut self.device {
            DimmDevice::Nvdimm(d) => Some(d.as_mut()),
            _ => None,
        }
    }

    /// Serializes the device's dynamic state, tagged with the device
    /// kind so a restore into a differently-populated slot fails as a
    /// topology mismatch instead of misinterpreting the payload.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        match &self.device {
            DimmDevice::Dram(d) => {
                0u8.persist(out);
                d.snapshot_state(out);
            }
            DimmDevice::Mram(d) => {
                1u8.persist(out);
                d.snapshot_state(out);
            }
            DimmDevice::Nvdimm(d) => {
                2u8.persist(out);
                d.snapshot_state(out);
            }
        }
    }

    /// Overlays a [`DimmModule::snapshot_state`] image.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if this slot holds
    /// a different device kind than the image, or any decode error
    /// from the embedded device payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let kind = r.u8()?;
        match (&mut self.device, kind) {
            (DimmDevice::Dram(d), 0) => d.restore_state(r),
            (DimmDevice::Mram(d), 1) => d.restore_state(r),
            (DimmDevice::Nvdimm(d), 2) => d.restore_state(r),
            (_, 0..=2) => Err(snapshot::RestoreError::TopologyMismatch {
                context: "dimm device kind",
            }),
            _ => Err(snapshot::RestoreError::Malformed {
                context: "dimm device discriminant",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_sim::SimTime;

    #[test]
    fn spd_matches_device() {
        let dimm = DimmModule::new_mram(256 << 20, MramGeneration::Pmtj);
        assert_eq!(dimm.spd().kind, MediaKind::SttMram);
        assert_eq!(dimm.spd().capacity_bytes, 256 << 20);
        assert!(dimm.spd().nonvolatile);
        assert_eq!(dimm.device().capacity_bytes(), 256 << 20);
        assert_eq!(dimm.device().kind(), MediaKind::SttMram);
    }

    #[test]
    fn nvdimm_spd_flags_vendor_specific_save() {
        let dimm = DimmModule::new_nvdimm(1 << 30, DdrTimings::ddr3_1600());
        assert!(dimm.spd().vendor_specific_save);
        assert!(dimm.spd().nonvolatile);
        let dram = DimmModule::new_dram(4 << 30, DdrTimings::ddr3_1600());
        assert!(!dram.spd().vendor_specific_save);
        assert!(!dram.spd().nonvolatile);
    }

    #[test]
    fn device_access_through_module() {
        let mut dimm = DimmModule::new_dram(1 << 20, DdrTimings::ddr3_1600());
        dimm.device_mut().write(SimTime::ZERO, 0, &[3u8; 64]);
        let mut buf = [0u8; 64];
        dimm.device_mut().read(SimTime::from_us(1), 0, &mut buf);
        assert_eq!(buf, [3u8; 64]);
    }

    #[test]
    fn as_nvdimm_only_for_nvdimms() {
        let mut nv = DimmModule::new_nvdimm(1 << 20, DdrTimings::ddr3_1600());
        assert!(nv.as_nvdimm_mut().is_some());
        let mut dram = DimmModule::new_dram(1 << 20, DdrTimings::ddr3_1600());
        assert!(dram.as_nvdimm_mut().is_none());
    }

    #[test]
    fn snapshot_refuses_wrong_slot_population() {
        let mut mram = DimmModule::new_mram(1 << 20, MramGeneration::Pmtj);
        mram.device_mut().write(SimTime::ZERO, 0, &[5u8; 64]);
        let mut img = Vec::new();
        mram.snapshot_state(&mut img);

        let mut same = DimmModule::new_mram(1 << 20, MramGeneration::Pmtj);
        same.restore_state(&mut SnapReader::new(&img)).unwrap();
        let mut buf = [0u8; 64];
        same.device_mut().read(SimTime::from_us(1), 0, &mut buf);
        assert_eq!(buf, [5u8; 64]);

        let mut dram = DimmModule::new_dram(1 << 20, DdrTimings::ddr3_1600());
        let err = dram.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn part_numbers_are_descriptive() {
        assert!(Spd::mram(256 << 20, MramGeneration::Imtj)
            .part_number
            .contains("iMTJ"));
        assert!(Spd::dram(16 << 30).part_number.contains("16GB"));
    }
}
