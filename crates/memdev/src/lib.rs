//! # contutto-memdev
//!
//! Functional + timing models of every memory/storage medium the
//! ConTutto paper attaches or compares against:
//!
//! * [`dram`] — DDR3 SDRAM with bank/row state and JEDEC-style timing,
//! * [`mram`] — STT-MRAM (both iMTJ and pMTJ generations, paper §4.2),
//! * [`nvdimm`] — NVDIMM-N: DRAM front + flash save/restore on power
//!   loss, supercap-backed (paper §4.2(iii)),
//! * [`flash`] — raw NAND flash (pages/blocks, erase-before-program,
//!   per-block wear),
//! * [`disk`] — a mechanical HDD (seek + rotation + transfer),
//! * [`dimm`] — DIMM modules and their SPD (serial presence detect)
//!   contents, which the ConTutto firmware reads over FSI (paper §3.4),
//! * [`endurance`] — the write-endurance comparison behind Figure 8,
//! * [`ecc`] — SEC-DED over 64-bit words, patrol scrub and page
//!   retirement (the media RAS layer),
//! * [`fault`] — the deterministic, seedable media-fault injector.
//!
//! All devices implement [`MemoryDevice`]: functional byte storage
//! (reads return exactly what was written) plus a per-operation
//! completion time, so the same model serves both correctness tests
//! and latency/bandwidth experiments.

pub mod dimm;
pub mod disk;
pub mod dram;
pub mod ecc;
pub mod endurance;
pub mod fault;
pub mod flash;
pub mod mram;
pub mod nvdimm;
pub mod store;
pub mod traits;

pub use dimm::{DimmModule, Spd};
pub use disk::{DiskConfig, HardDiskDrive};
pub use dram::{DdrTimings, Dram};
pub use ecc::{RasCounters, ReadOutcome, ReadResult, ScrubReport};
pub use endurance::{EnduranceClass, Technology};
pub use fault::{FaultConfig, InjectorStats, MediaFaultInjector};
pub use flash::{FlashError, NandFlash};
pub use mram::{MramGeneration, SttMram};
pub use nvdimm::{NvdimmN, RestoreError, SaveSequence, SaveState, SAVE_COST_PER_PAGE_NJ};
pub use store::SparseMemory;
pub use traits::{range_ok, MediaKind, MemoryDevice};
