//! DDR3 SDRAM device model with bank/row state.
//!
//! The model charges JEDEC-style timing: a read hitting an open row
//! costs CL + burst; a closed bank adds tRCD; a row conflict adds tRP
//! first. Periodic refresh steals tRFC every tREFI. Contents are
//! functional via [`SparseMemory`].
//!
//! This is the device behind both the Centaur model's DDR ports and
//! ConTutto's soft DDR3 controller (paper §3.3(v): "For DRAM
//! enablement, we use the soft DDR3 memory controller from Altera").

use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::SimTime;

use crate::ecc::{MediaRas, RasCounters, ReadResult, ScrubReport};
use crate::fault::{FaultConfig, MediaFaultInjector};
use crate::store::SparseMemory;
use crate::traits::{check_range, MediaKind, MemoryDevice};

/// DDR3 timing parameters, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrTimings {
    /// CAS latency (column access).
    pub cl: u64,
    /// RAS-to-CAS delay (row activate).
    pub trcd: u64,
    /// Row precharge.
    pub trp: u64,
    /// Refresh cycle time.
    pub trfc: u64,
    /// Average refresh interval.
    pub trefi: u64,
    /// Time to burst one 64-byte column out of the array.
    pub tburst: u64,
}

impl DdrTimings {
    /// DDR3-1600 CL11 (a stock 2013-era registered DIMM).
    pub fn ddr3_1600() -> Self {
        DdrTimings {
            cl: 13_750,
            trcd: 13_750,
            trp: 13_750,
            trfc: 160_000,
            trefi: 7_800_000,
            tburst: 5_000, // 64 B over an 8-byte DDR-1600 channel
        }
    }

    /// A slower DDR3-1066 CL8 profile (for latency-knob experiments).
    pub fn ddr3_1066() -> Self {
        DdrTimings {
            cl: 15_000,
            trcd: 15_000,
            trp: 15_000,
            trfc: 160_000,
            trefi: 7_800_000,
            tburst: 7_500,
        }
    }
}

impl Default for DdrTimings {
    fn default() -> Self {
        DdrTimings::ddr3_1600()
    }
}

const NUM_BANKS: usize = 8;
const ROW_BYTES: u64 = 8192; // 8 KiB row buffer per bank

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    busy_until: SimTime,
}

/// Outcome classification of a single DRAM access, for stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Row already open: column access only.
    Hit,
    /// Bank idle: activate + column access.
    Miss,
    /// Different row open: precharge + activate + column access.
    Conflict,
}

/// Cumulative DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Accesses to idle banks.
    pub misses: u64,
    /// Row conflicts.
    pub conflicts: u64,
    /// Refresh stalls encountered.
    pub refresh_stalls: u64,
}

/// A DDR3 DRAM device.
///
/// # Example
///
/// ```
/// use contutto_memdev::{Dram, MemoryDevice};
/// use contutto_sim::SimTime;
///
/// let mut d = Dram::new(1 << 30, Default::default());
/// let t0 = SimTime::ZERO;
/// let done = d.write(t0, 0x1000, &[42u8; 128]);
/// let mut buf = [0u8; 128];
/// let result = d.read(done, 0x1000, &mut buf);
/// assert_eq!(buf, [42u8; 128]);
/// assert!(result.outcome.is_clean());
/// assert!(result.done > done);
/// ```
#[derive(Debug)]
pub struct Dram {
    capacity: u64,
    timings: DdrTimings,
    banks: [BankState; NUM_BANKS],
    store: SparseMemory,
    next_refresh: SimTime,
    /// Completion time of the last data-bus transfer (one shared bus
    /// per device; back-to-back bursts stream every tBURST).
    last_data_out: SimTime,
    stats: DramStats,
    ras: MediaRas,
}

impl Dram {
    /// Creates a DRAM of `capacity` bytes with the given timing grade.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64, timings: DdrTimings) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Dram {
            capacity,
            timings,
            banks: [BankState::default(); NUM_BANKS],
            store: SparseMemory::new(),
            next_refresh: SimTime::from_ps(timings.trefi),
            last_data_out: SimTime::ZERO,
            stats: DramStats::default(),
            ras: MediaRas::new(),
        }
    }

    /// Access statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Installs a deterministic media-fault injector.
    pub fn attach_media_faults(&mut self, cfg: FaultConfig) {
        self.ras.attach_injector(MediaFaultInjector::new(cfg));
    }

    /// Installs an injector whose flip schedule starts at `now`
    /// (runtime re-arm from a chaos plan).
    pub fn attach_media_faults_at(&mut self, now: SimTime, cfg: FaultConfig) {
        self.ras
            .attach_injector(MediaFaultInjector::new_at(cfg, now));
    }

    /// Correctable errors a page may accumulate before the patrol
    /// scrubber retires it.
    pub fn set_retire_threshold(&mut self, threshold: u32) {
        self.ras.set_retire_threshold(threshold);
    }

    /// Cumulative RAS counters (ECC corrections, scrub activity,
    /// retirements).
    pub fn ras_counters(&self) -> RasCounters {
        self.ras.counters()
    }

    /// Pages retired so far (4 KiB base addresses, ascending).
    pub fn retired_pages(&self) -> Vec<u64> {
        self.ras.retired_pages()
    }

    /// Functional read without charging timing (used when a
    /// memory-side cache hit bypasses the array but the data is still
    /// authoritative here).
    pub fn peek(&self, addr: u64, buf: &mut [u8]) {
        check_range(self.capacity, addr, buf.len());
        self.store.read(addr, buf);
    }

    /// Functional write without charging timing (backing-store update
    /// for writes absorbed by a cache model).
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        check_range(self.capacity, addr, data.len());
        self.store.write(addr, data);
        self.ras.record_write(addr, data.len(), &self.store);
    }

    /// Maintenance-path read of one line via the service interface
    /// (zero timing, independent of the demand path): returns the
    /// ECC-verified line and whether it must travel as poison.
    pub fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> ([u8; 128], bool) {
        check_range(self.capacity, addr, 128);
        self.ras.sideband_read(now, addr, &mut self.store)
    }

    /// Maintenance-path write of one line, optionally depositing it
    /// with its poison marker (evacuation moves rot as rot).
    pub fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) {
        check_range(self.capacity, addr, 128);
        self.ras.sideband_write(addr, data, poison, &mut self.store);
    }

    /// Simulates power loss: DRAM forgets everything.
    pub fn power_loss(&mut self) {
        self.store.clear();
        self.banks = [BankState::default(); NUM_BANKS];
        self.ras.on_power_loss();
    }

    /// Serializes all dynamic state (contents, bank/row state, RAS
    /// bookkeeping, stats). Capacity and timings are construction
    /// parameters: the image only cross-checks them.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.capacity.persist(out);
        for bank in &self.banks {
            bank.open_row.persist(out);
            bank.busy_until.persist(out);
        }
        self.store.persist(out);
        self.next_refresh.persist(out);
        self.last_data_out.persist(out);
        self.stats.hits.persist(out);
        self.stats.misses.persist(out);
        self.stats.conflicts.persist(out);
        self.stats.refresh_stalls.persist(out);
        self.ras.persist(out);
    }

    /// Overlays a [`Dram::snapshot_state`] image onto this device.
    /// Nothing is mutated until the whole payload validates.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if the image was
    /// taken from a device of a different capacity, or any decode
    /// error from a corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let capacity = r.u64()?;
        if capacity != self.capacity {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "dram capacity",
            });
        }
        let mut banks = [BankState::default(); NUM_BANKS];
        for bank in banks.iter_mut() {
            bank.open_row = Option::restore(r)?;
            bank.busy_until = SimTime::restore(r)?;
        }
        let store = SparseMemory::restore(r)?;
        let next_refresh = SimTime::restore(r)?;
        let last_data_out = SimTime::restore(r)?;
        let stats = DramStats {
            hits: r.u64()?,
            misses: r.u64()?,
            conflicts: r.u64()?,
            refresh_stalls: r.u64()?,
        };
        let ras = MediaRas::restore(r)?;
        self.banks = banks;
        self.store = store;
        self.next_refresh = next_refresh;
        self.last_data_out = last_data_out;
        self.stats = stats;
        self.ras = ras;
        Ok(())
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        // Interleave banks on row-buffer-sized chunks.
        let chunk = addr / ROW_BYTES;
        (
            (chunk % NUM_BANKS as u64) as usize,
            chunk / NUM_BANKS as u64,
        )
    }

    /// Charges timing for one ≤64 B column access; returns completion.
    fn access(&mut self, now: SimTime, addr: u64) -> SimTime {
        let t = self.timings;
        let (bank_idx, row) = self.bank_and_row(addr);

        // Refresh: if a refresh interval elapsed, the whole device
        // stalls for tRFC at the scheduled point.
        let mut start = now;
        if now >= self.next_refresh {
            let refresh_end = self.next_refresh + SimTime::from_ps(t.trfc);
            start = start.max(refresh_end);
            self.next_refresh += SimTime::from_ps(t.trefi);
            self.stats.refresh_stalls += 1;
        }

        let bank = &mut self.banks[bank_idx];
        start = start.max(bank.busy_until);

        let (outcome, array_time) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, t.cl),
            Some(_) => (RowOutcome::Conflict, t.trp + t.trcd + t.cl),
            None => (RowOutcome::Miss, t.trcd + t.cl),
        };
        match outcome {
            RowOutcome::Hit => self.stats.hits += 1,
            RowOutcome::Miss => self.stats.misses += 1,
            RowOutcome::Conflict => self.stats.conflicts += 1,
        }
        bank.open_row = Some(row);
        let service_done = start + SimTime::from_ps(array_time + t.tburst);
        // CAS pipelining: the bank is free again once its activation
        // and burst slots pass (the CAS-latency tail overlaps the next
        // access); the shared data bus streams one burst per tBURST.
        bank.busy_until = service_done.saturating_sub(SimTime::from_ps(t.cl));
        let done = service_done.max(self.last_data_out + SimTime::from_ps(t.tburst));
        self.last_data_out = done;
        done
    }

    /// Charges timing for an arbitrary-length access split into 64 B
    /// column bursts.
    fn access_span(&mut self, now: SimTime, addr: u64, len: usize) -> SimTime {
        let mut done = now;
        let mut cur = addr & !63;
        let end = addr + len as u64;
        let mut t = now;
        while cur < end {
            done = self.access(t, cur);
            // Consecutive bursts pipeline: the next can start as soon
            // as the previous column completes.
            t = done;
            cur += 64;
        }
        done
    }
}

impl MemoryDevice for Dram {
    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn kind(&self) -> MediaKind {
        MediaKind::Dram
    }

    fn read(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> ReadResult {
        check_range(self.capacity, addr, buf.len());
        // The RAS layer fills `buf` with the verified (corrected)
        // view of the array; the ECC pipeline is part of the array
        // access, so it adds no simulated time.
        let outcome = self.ras.verify_read(now, addr, buf, &mut self.store);
        ReadResult {
            done: self.access_span(now, addr, buf.len()),
            outcome,
        }
    }

    fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        check_range(self.capacity, addr, data.len());
        self.ras.pre_write(now, addr, data.len(), &mut self.store);
        self.store.write(addr, data);
        self.ras.record_write(addr, data.len(), &self.store);
        self.access_span(now, addr, data.len())
    }

    fn scrub_pass(&mut self, now: SimTime) -> ScrubReport {
        self.ras.scrub(now, &mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(1 << 30, DdrTimings::ddr3_1600())
    }

    #[test]
    fn functional_roundtrip() {
        let mut d = dram();
        let data: Vec<u8> = (0..128).collect();
        d.write(SimTime::ZERO, 4096, &data);
        let mut buf = vec![0u8; 128];
        d.read(SimTime::from_us(1), 4096, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = dram();
        let mut buf = [0u8; 64];
        let t0 = SimTime::ZERO;
        let first = d.read(t0, 0, &mut buf).done; // miss: tRCD + CL + burst
        let second_start = first;
        let second = d.read(second_start, 64, &mut buf).done; // hit: CL + burst
        let miss_lat = first - t0;
        let hit_lat = second - second_start;
        assert!(hit_lat < miss_lat, "hit {hit_lat} !< miss {miss_lat}");
        assert_eq!(hit_lat.as_ps(), 13_750 + 5_000);
        assert_eq!(miss_lat.as_ps(), 13_750 + 13_750 + 5_000);
    }

    #[test]
    fn row_conflict_is_slowest() {
        let mut d = dram();
        let mut buf = [0u8; 64];
        let t0 = SimTime::ZERO;
        let t1 = d.read(t0, 0, &mut buf).done; // open row 0 of bank 0
                                               // Same bank, different row: banks interleave every 8 KiB, so
                                               // +8 KiB * 8 banks = same bank, next row.
        let t2 = d.read(t1, 8192 * 8, &mut buf).done;
        let conflict_lat = t2 - t1;
        assert_eq!(conflict_lat.as_ps(), 13_750 + 13_750 + 13_750 + 5_000);
        assert_eq!(d.stats().conflicts, 1);
    }

    #[test]
    fn banks_operate_independently() {
        let mut d = dram();
        let mut buf = [0u8; 64];
        let t0 = SimTime::ZERO;
        d.read(t0, 0, &mut buf); // bank 0
                                 // Bank 1 (next 8 KiB chunk) is idle: also a plain miss issued
                                 // at t0 in parallel — only the shared data bus (one burst per
                                 // tBURST) separates the two completions.
        let done = d.read(t0, 8192, &mut buf).done;
        assert_eq!((done - t0).as_ps(), 13_750 + 13_750 + 5_000 + 5_000);
        assert_eq!(d.stats().misses, 2);
    }

    #[test]
    fn busy_bank_queues() {
        let mut d = dram();
        let mut buf = [0u8; 64];
        let t0 = SimTime::ZERO;
        let first_done = d.read(t0, 0, &mut buf).done;
        // Immediately issue a second access to the same bank at t0:
        // CAS-pipelined behind the first, its data streams one burst
        // slot later.
        let second_done = d.read(t0, 64, &mut buf).done;
        assert!(second_done > first_done);
        assert_eq!((second_done - first_done).as_ps(), 5_000);
    }

    #[test]
    fn refresh_stalls_accrue() {
        let mut d = dram();
        let mut buf = [0u8; 64];
        // Access just after the first refresh interval.
        let done = d.read(SimTime::from_ps(7_800_001), 0, &mut buf).done;
        assert_eq!(d.stats().refresh_stalls, 1);
        // The access started only after the refresh completed.
        assert!(done.as_ps() >= 7_800_000 + 160_000);
    }

    #[test]
    fn cache_line_read_takes_two_bursts() {
        let mut d = dram();
        let mut buf = [0u8; 128];
        let t0 = SimTime::ZERO;
        let done = d.read(t0, 0, &mut buf).done;
        // miss (tRCD+CL+burst) then pipelined hit (CL+burst).
        assert_eq!(
            (done - t0).as_ps(),
            (13_750 + 13_750 + 5_000) + (13_750 + 5_000)
        );
    }

    #[test]
    fn power_loss_clears_contents() {
        let mut d = dram();
        d.write(SimTime::ZERO, 0, &[7u8; 64]);
        d.power_loss();
        let mut buf = [1u8; 64];
        d.read(SimTime::from_us(1), 0, &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn injected_transient_is_corrected_never_silent() {
        let mut d = dram();
        d.attach_media_faults(FaultConfig {
            seed: 7,
            transient_flips: 1,
            window: SimTime::from_us(10),
            hot_start: 0,
            hot_len: 128,
            stuck_cells: 0,
            wear_acceleration: 0.0,
        });
        d.write(SimTime::ZERO, 0, &[0x77u8; 128]);
        let mut buf = [0u8; 128];
        let r = d.read(SimTime::from_us(20), 0, &mut buf);
        assert!(!r.outcome.is_uncorrectable());
        assert_eq!(buf, [0x77u8; 128], "returned data always correct");
        // The scrubber heals the array; the next read is clean.
        d.scrub_pass(SimTime::from_us(21));
        let r2 = d.read(SimTime::from_us(22), 0, &mut buf);
        assert!(r2.outcome.is_clean());
        assert_eq!(buf, [0x77u8; 128]);
    }

    #[test]
    fn stuck_cell_drives_page_retirement() {
        let mut d = dram();
        d.set_retire_threshold(3);
        d.attach_media_faults(FaultConfig {
            seed: 3,
            transient_flips: 0,
            window: SimTime::ZERO,
            hot_start: 0,
            hot_len: 64,
            stuck_cells: 1,
            wear_acceleration: 0.0,
        });
        // Data whose bits disagree with the stuck level roughly half
        // the time; alternate patterns so the cell shows up.
        let mut retired = false;
        for pass in 0..16u64 {
            let fill = if pass % 2 == 0 { 0x00 } else { 0xFF };
            d.write(SimTime::from_us(pass), 0, &[fill; 128]);
            let report = d.scrub_pass(SimTime::from_us(pass) + SimTime::from_ns(500));
            if !report.retired_pages.is_empty() {
                retired = true;
                break;
            }
        }
        assert!(retired, "repeated corrections retire the page");
        assert_eq!(d.retired_pages(), vec![0]);
        // A retired page goes quiet: the injector is mapped out.
        let mut buf = [0u8; 128];
        let r = d.read(SimTime::from_ms(1), 0, &mut buf);
        assert!(r.outcome.is_clean());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let mut d = dram();
        d.attach_media_faults(FaultConfig {
            seed: 11,
            transient_flips: 4,
            window: SimTime::from_us(100),
            hot_start: 0,
            hot_len: 4096,
            stuck_cells: 1,
            wear_acceleration: 0.0,
        });
        let mut buf = [0u8; 128];
        d.write(SimTime::ZERO, 0, &[0x42; 128]);
        d.read(SimTime::from_us(10), 0, &mut buf);
        d.scrub_pass(SimTime::from_us(20));

        let mut img = Vec::new();
        d.snapshot_state(&mut img);
        let mut fresh = dram();
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();

        // Both copies serve the identical timeline from here on.
        let a = d.read(SimTime::from_us(200), 0, &mut buf);
        let data_a = buf;
        let b = fresh.read(SimTime::from_us(200), 0, &mut buf);
        assert_eq!(a, b);
        assert_eq!(buf, data_a);
        assert_eq!(d.stats(), fresh.stats());
        assert_eq!(d.ras_counters(), fresh.ras_counters());
        let ra = d.scrub_pass(SimTime::from_us(300));
        let rb = fresh.scrub_pass(SimTime::from_us(300));
        assert_eq!(ra.corrected, rb.corrected);
        assert_eq!(ra.retired_pages, rb.retired_pages);
    }

    #[test]
    fn snapshot_restore_rejects_capacity_mismatch() {
        let d = dram();
        let mut img = Vec::new();
        d.snapshot_state(&mut img);
        let mut other = Dram::new(1 << 20, DdrTimings::ddr3_1600());
        let err = other.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(
                err,
                contutto_sim::snapshot::RestoreError::TopologyMismatch { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn out_of_range_panics() {
        let mut d = Dram::new(4096, DdrTimings::default());
        let mut buf = [0u8; 128];
        d.read(SimTime::ZERO, 4090, &mut buf);
    }
}
