//! Raw NAND flash model.
//!
//! Pages must be programmed into erased blocks; erase is slow and
//! wears the block out (Figure 8: NAND endurance is 10³–10⁵ cycles,
//! the reason STT-MRAM on the memory bus is interesting at all).
//!
//! This is the media model under the SSD / PCIe-flash baselines in the
//! storage crate and the backup store inside NVDIMM-N.

use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::SimTime;

use crate::ecc::{ReadOutcome, ReadResult};
use crate::store::SparseMemory;
use crate::traits::{check_range, MediaKind, MemoryDevice};

/// Flash geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashConfig {
    /// Page size in bytes (program/read granularity).
    pub page_bytes: u64,
    /// Pages per erase block.
    pub pages_per_block: u64,
    /// Page read latency.
    pub read_page: SimTime,
    /// Page program latency.
    pub program_page: SimTime,
    /// Block erase latency.
    pub erase_block: SimTime,
    /// Program/erase cycles before a block wears out.
    pub endurance_cycles: u64,
}

impl FlashConfig {
    /// A typical MLC NAND die (page 4 KiB, block 256 KiB, 10⁴ cycles).
    pub fn mlc() -> Self {
        FlashConfig {
            page_bytes: 4096,
            pages_per_block: 64,
            read_page: SimTime::from_us(60),
            program_page: SimTime::from_us(300),
            erase_block: SimTime::from_ms(3),
            endurance_cycles: 10_000,
        }
    }

    /// Faster, higher-endurance SLC NAND (10⁵ cycles).
    pub fn slc() -> Self {
        FlashConfig {
            page_bytes: 4096,
            pages_per_block: 64,
            read_page: SimTime::from_us(25),
            program_page: SimTime::from_us(200),
            erase_block: SimTime::from_ms(2),
            endurance_cycles: 100_000,
        }
    }
}

impl Default for FlashConfig {
    fn default() -> Self {
        FlashConfig::mlc()
    }
}

/// Per-block bookkeeping.
#[derive(Debug, Clone, Default)]
struct BlockState {
    /// Bitmask-free page-programmed flags (pages_per_block ≤ 64).
    programmed: u64,
    erase_count: u64,
    /// Worn out and retired: writes are dropped (and counted), reads
    /// come back uncorrectable.
    bad: bool,
}

/// Errors from flash operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Attempt to program an already-programmed page without erase.
    PageNotErased {
        /// The offending page index.
        page: u64,
    },
    /// Block has exceeded its endurance rating.
    BlockWornOut {
        /// The worn block index.
        block: u64,
    },
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::PageNotErased { page } => write!(f, "page {page} not erased"),
            FlashError::BlockWornOut { block } => write!(f, "block {block} worn out"),
        }
    }
}

impl std::error::Error for FlashError {}

/// A raw NAND flash device (no FTL — the storage crate layers one on).
#[derive(Debug)]
pub struct NandFlash {
    capacity: u64,
    cfg: FlashConfig,
    store: SparseMemory,
    blocks: Vec<BlockState>,
    busy_until: SimTime,
    dropped_writes: u64,
}

impl NandFlash {
    /// Creates a flash device of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a multiple of the block size or is
    /// zero.
    pub fn new(capacity: u64, cfg: FlashConfig) -> Self {
        let block_bytes = cfg.page_bytes * cfg.pages_per_block;
        assert!(
            capacity > 0 && capacity.is_multiple_of(block_bytes),
            "capacity must be whole blocks"
        );
        assert!(
            cfg.pages_per_block <= 64,
            "block bitmap limited to 64 pages"
        );
        let blocks = (capacity / block_bytes) as usize;
        NandFlash {
            capacity,
            cfg,
            store: SparseMemory::new(),
            blocks: vec![BlockState::default(); blocks],
            busy_until: SimTime::ZERO,
            dropped_writes: 0,
        }
    }

    /// The device geometry/timing.
    pub fn config(&self) -> FlashConfig {
        self.cfg
    }

    /// Number of erase blocks.
    pub fn block_count(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Erase count of a block.
    pub fn erase_count(&self, block: u64) -> u64 {
        self.blocks[block as usize].erase_count
    }

    /// Blocks retired after wearing out on the write path.
    pub fn bad_blocks(&self) -> u64 {
        self.blocks.iter().filter(|b| b.bad).count() as u64
    }

    /// Whether a block has been retired as bad.
    pub fn is_bad_block(&self, block: u64) -> bool {
        self.blocks[block as usize].bad
    }

    /// Page writes dropped because their block was bad.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped_writes
    }

    /// Fault-injection hook: XORs `mask` into the stored byte at
    /// `addr`, modelling retention loss in the media (no timing).
    pub fn corrupt_byte(&mut self, addr: u64, mask: u8) {
        check_range(self.capacity, addr, 1);
        let mut b = [0u8; 1];
        self.store.read(addr, &mut b);
        b[0] ^= mask;
        self.store.write(addr, &b);
    }

    /// Serializes all dynamic state (contents, per-block wear and
    /// program bitmaps). Geometry is a construction parameter: the
    /// image only cross-checks it.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.capacity.persist(out);
        self.store.persist(out);
        (self.blocks.len() as u64).persist(out);
        for block in &self.blocks {
            block.programmed.persist(out);
            block.erase_count.persist(out);
            block.bad.persist(out);
        }
        self.busy_until.persist(out);
        self.dropped_writes.persist(out);
    }

    /// Overlays a [`NandFlash::snapshot_state`] image onto this device.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if the image came
    /// from a device of a different capacity or block count, or any
    /// decode error from a corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let capacity = r.u64()?;
        if capacity != self.capacity {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "flash capacity",
            });
        }
        let store = SparseMemory::restore(r)?;
        let count = r.len()?;
        if count != self.blocks.len() {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "flash block count",
            });
        }
        let mut blocks = Vec::with_capacity(count);
        for _ in 0..count {
            blocks.push(BlockState {
                programmed: r.u64()?,
                erase_count: r.u64()?,
                bad: r.bool()?,
            });
        }
        let busy_until = SimTime::restore(r)?;
        let dropped_writes = r.u64()?;
        self.store = store;
        self.blocks = blocks;
        self.busy_until = busy_until;
        self.dropped_writes = dropped_writes;
        Ok(())
    }

    fn page_of(&self, addr: u64) -> u64 {
        addr / self.cfg.page_bytes
    }

    fn block_of_page(&self, page: u64) -> u64 {
        page / self.cfg.pages_per_block
    }

    /// Reads one whole page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `buf` is not page-sized.
    pub fn read_page(&mut self, now: SimTime, page: u64, buf: &mut [u8]) -> SimTime {
        assert_eq!(
            buf.len() as u64,
            self.cfg.page_bytes,
            "page-sized buffer required"
        );
        let addr = page * self.cfg.page_bytes;
        check_range(self.capacity, addr, buf.len());
        self.store.read(addr, buf);
        let start = now.max(self.busy_until);
        let done = start + self.cfg.read_page;
        self.busy_until = done;
        done
    }

    /// Programs one whole page into an erased slot.
    ///
    /// # Errors
    ///
    /// * [`FlashError::PageNotErased`] if the page already holds data.
    /// * [`FlashError::BlockWornOut`] if the block exceeded endurance.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `data` is not page-sized.
    pub fn program_page(
        &mut self,
        now: SimTime,
        page: u64,
        data: &[u8],
    ) -> Result<SimTime, FlashError> {
        assert_eq!(
            data.len() as u64,
            self.cfg.page_bytes,
            "page-sized data required"
        );
        let addr = page * self.cfg.page_bytes;
        check_range(self.capacity, addr, data.len());
        let block_idx = self.block_of_page(page);
        let in_block = page % self.cfg.pages_per_block;
        let block = &mut self.blocks[block_idx as usize];
        if block.erase_count >= self.cfg.endurance_cycles {
            return Err(FlashError::BlockWornOut { block: block_idx });
        }
        if block.programmed & (1 << in_block) != 0 {
            return Err(FlashError::PageNotErased { page });
        }
        block.programmed |= 1 << in_block;
        self.store.write(addr, data);
        let start = now.max(self.busy_until);
        let done = start + self.cfg.program_page;
        self.busy_until = done;
        Ok(done)
    }

    /// Erases a block, incrementing its wear counter.
    ///
    /// # Errors
    ///
    /// [`FlashError::BlockWornOut`] once past the endurance rating.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn erase_block(&mut self, now: SimTime, block: u64) -> Result<SimTime, FlashError> {
        let state = &mut self.blocks[block as usize];
        if state.erase_count >= self.cfg.endurance_cycles {
            return Err(FlashError::BlockWornOut { block });
        }
        state.erase_count += 1;
        state.programmed = 0;
        let block_bytes = self.cfg.page_bytes * self.cfg.pages_per_block;
        self.store
            .write(block * block_bytes, &vec![0xFFu8; block_bytes as usize]);
        let start = now.max(self.busy_until);
        let done = start + self.cfg.erase_block;
        self.busy_until = done;
        Ok(done)
    }
}

impl MemoryDevice for NandFlash {
    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn kind(&self) -> MediaKind {
        MediaKind::NandFlash
    }

    /// Byte reads round up to whole pages internally. Reads that touch
    /// a bad (wear-retired) block come back [`ReadOutcome::Uncorrectable`].
    fn read(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> ReadResult {
        check_range(self.capacity, addr, buf.len());
        let first = self.page_of(addr);
        let last = self.page_of(addr + buf.len() as u64 - 1);
        self.store.read(addr, buf);
        let mut outcome = ReadOutcome::Clean;
        for page in first..=last {
            if self.blocks[self.block_of_page(page) as usize].bad {
                outcome = ReadOutcome::Uncorrectable;
            }
        }
        let start = now.max(self.busy_until);
        let done = start + self.cfg.read_page * (last - first + 1);
        self.busy_until = done;
        ReadResult { done, outcome }
    }

    /// A `MemoryDevice::write` on raw flash models the FTL-free
    /// "overwrite in place" path used by the NVDIMM save engine: it
    /// erases affected blocks as needed and programs the pages. A
    /// write-path erase that hits the endurance limit retires the
    /// block as bad — its page writes are dropped (and counted in
    /// [`NandFlash::dropped_writes`]) rather than silently served.
    fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        check_range(self.capacity, addr, data.len());
        let first_page = self.page_of(addr);
        let last_page = self.page_of(addr + data.len() as u64 - 1);
        let mut t = now;
        for page in first_page..=last_page {
            let block_idx = self.block_of_page(page);
            let in_block = page % self.cfg.pages_per_block;
            if self.blocks[block_idx as usize].bad {
                continue;
            }
            if self.blocks[block_idx as usize].programmed & (1 << in_block) != 0 {
                match self.erase_block(t, block_idx) {
                    Ok(done) => t = done,
                    // Any erase failure — wear-out today, whatever a
                    // future erase path reports tomorrow — retires the
                    // block; its page writes are then dropped and
                    // counted below instead of aborting the process.
                    Err(_) => {
                        self.blocks[block_idx as usize].bad = true;
                    }
                }
            }
        }
        let mut programmed = 0u64;
        for page in first_page..=last_page {
            let block_idx = self.block_of_page(page);
            let in_block = page % self.cfg.pages_per_block;
            if self.blocks[block_idx as usize].bad {
                self.dropped_writes += 1;
                continue;
            }
            // Clip the caller's span to this page.
            let p_start = page * self.cfg.page_bytes;
            let p_end = p_start + self.cfg.page_bytes;
            let lo = addr.max(p_start);
            let hi = (addr + data.len() as u64).min(p_end);
            let slice = &data[(lo - addr) as usize..(hi - addr) as usize];
            self.store.write(lo, slice);
            self.blocks[block_idx as usize].programmed |= 1 << in_block;
            programmed += 1;
        }
        let start = t.max(self.busy_until);
        let done = start + self.cfg.program_page * programmed;
        self.busy_until = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash() -> NandFlash {
        NandFlash::new(16 << 20, FlashConfig::mlc())
    }

    #[test]
    fn program_then_read_roundtrip() {
        let mut f = flash();
        let data = vec![0xA7u8; 4096];
        f.program_page(SimTime::ZERO, 3, &data).unwrap();
        let mut buf = vec![0u8; 4096];
        f.read_page(SimTime::from_ms(1), 3, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn double_program_requires_erase() {
        let mut f = flash();
        let data = vec![1u8; 4096];
        f.program_page(SimTime::ZERO, 0, &data).unwrap();
        assert_eq!(
            f.program_page(SimTime::ZERO, 0, &data),
            Err(FlashError::PageNotErased { page: 0 })
        );
        f.erase_block(SimTime::ZERO, 0).unwrap();
        f.program_page(SimTime::ZERO, 0, &data).unwrap();
        assert_eq!(f.erase_count(0), 1);
    }

    #[test]
    fn erase_wears_out_block() {
        let cfg = FlashConfig {
            endurance_cycles: 3,
            ..FlashConfig::mlc()
        };
        let mut f = NandFlash::new(1 << 20, cfg);
        for _ in 0..3 {
            f.erase_block(SimTime::ZERO, 0).unwrap();
        }
        assert_eq!(
            f.erase_block(SimTime::ZERO, 0),
            Err(FlashError::BlockWornOut { block: 0 })
        );
        // Other blocks unaffected.
        f.erase_block(SimTime::ZERO, 1).unwrap();
    }

    #[test]
    fn timing_ordering_read_program_erase() {
        let cfg = FlashConfig::mlc();
        assert!(cfg.read_page < cfg.program_page);
        assert!(cfg.program_page < cfg.erase_block);
        let mut f = flash();
        let t_read = f.read_page(SimTime::ZERO, 0, &mut vec![0u8; 4096]);
        assert_eq!(t_read, SimTime::from_us(60));
    }

    #[test]
    fn device_write_auto_erases() {
        let mut f = flash();
        f.write(SimTime::ZERO, 0, &vec![1u8; 4096]);
        // Overwrite the same page: the device must erase the block.
        let done = f.write(SimTime::from_ms(10), 0, &vec![2u8; 4096]);
        assert_eq!(f.erase_count(0), 1);
        assert!(done >= SimTime::from_ms(13)); // erase (3 ms) + program
        let mut buf = vec![0u8; 4096];
        f.read(done, 0, &mut buf);
        assert_eq!(buf, vec![2u8; 4096]);
    }

    #[test]
    fn worn_block_goes_bad_instead_of_serving_writes() {
        let cfg = FlashConfig {
            endurance_cycles: 1,
            ..FlashConfig::mlc()
        };
        let mut f = NandFlash::new(1 << 20, cfg);
        let block_bytes = (cfg.page_bytes * cfg.pages_per_block) as usize;
        f.write(SimTime::ZERO, 0, &vec![1u8; 4096]); // program
        f.write(SimTime::ZERO, 0, &vec![2u8; 4096]); // erase #1 (last allowed)
        assert_eq!(f.bad_blocks(), 0);
        // The next overwrite needs erase #2: block goes bad, write drops.
        f.write(SimTime::ZERO, 0, &vec![3u8; 4096]);
        assert_eq!(f.bad_blocks(), 1);
        assert!(f.is_bad_block(0));
        assert_eq!(f.dropped_writes(), 1);
        // The old data is stale AND the read says so, loudly.
        let mut buf = vec![0u8; 4096];
        let r = f.read(SimTime::ZERO, 0, &mut buf);
        assert!(r.outcome.is_uncorrectable());
        assert_eq!(buf, vec![2u8; 4096], "stale image, flagged as such");
        // Neighboring blocks still work and read clean.
        f.write(SimTime::ZERO, block_bytes as u64, &vec![7u8; 4096]);
        let r = f.read(SimTime::ZERO, block_bytes as u64, &mut buf);
        assert!(r.outcome.is_clean());
        assert_eq!(buf, vec![7u8; 4096]);
    }

    #[test]
    fn snapshot_restore_preserves_wear_state() {
        let mut f = flash();
        f.write(SimTime::ZERO, 0, &vec![1u8; 4096]);
        f.write(SimTime::ZERO, 0, &vec![2u8; 4096]); // forces an erase
        let mut img = Vec::new();
        f.snapshot_state(&mut img);
        let mut fresh = flash();
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        assert_eq!(fresh.erase_count(0), 1);
        assert_eq!(fresh.dropped_writes(), 0);
        let mut buf = vec![0u8; 4096];
        fresh.read(SimTime::from_ms(100), 0, &mut buf);
        assert_eq!(buf, vec![2u8; 4096]);
        // Programming an already-programmed page still demands erase:
        // the bitmap state came back with the image.
        assert_eq!(
            fresh.program_page(SimTime::ZERO, 0, &vec![3u8; 4096]),
            Err(FlashError::PageNotErased { page: 0 })
        );
        // A different geometry refuses the image.
        let mut small = NandFlash::new(1 << 20, FlashConfig::mlc());
        let err = small.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupt_byte_flips_stored_data() {
        let mut f = flash();
        f.write(SimTime::ZERO, 0, &vec![0xAAu8; 4096]);
        f.corrupt_byte(10, 0x01);
        let mut buf = vec![0u8; 4096];
        f.read(SimTime::ZERO, 0, &mut buf);
        assert_eq!(buf[10], 0xAB);
        assert_eq!(buf[11], 0xAA);
    }

    #[test]
    fn slc_is_faster_and_tougher_than_mlc() {
        let slc = FlashConfig::slc();
        let mlc = FlashConfig::mlc();
        assert!(slc.read_page < mlc.read_page);
        assert!(slc.endurance_cycles > mlc.endurance_cycles);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn capacity_must_be_block_aligned() {
        let _ = NandFlash::new(100_000, FlashConfig::mlc());
    }
}
