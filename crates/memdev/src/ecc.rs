//! SEC-DED ECC over the media path.
//!
//! Server DIMMs carry 8 check bits per 64-bit word (a x72 rank); the
//! buffer chip corrects any single-bit error and detects any
//! double-bit error per word. This module implements that
//! Hamming(72,64) code — one check byte per `u64`, sixteen check bytes
//! per 128-byte cache line — plus the per-device RAS bookkeeping
//! ([`MediaRas`]): check-byte storage, demand-read verification,
//! patrol scrubbing and page retirement.
//!
//! Design invariants:
//!
//! * `encode(0) == 0`, so lines that were never written (which
//!   [`crate::SparseMemory`] reads back as zeros) verify clean without
//!   materializing check bytes.
//! * Verification and scrubbing take **zero simulated time** — the
//!   ECC pipeline is part of the array access in real hardware, and
//!   the repo's latency tests pin exact picosecond values.
//! * Demand reads correct the *returned* buffer only; the stored copy
//!   is healed by the patrol scrubber. This is what makes scrub
//!   on/off observable: latent single-bit errors that are never
//!   scrubbed accumulate until two land in the same word and the line
//!   goes uncorrectable.

use std::collections::{BTreeSet, HashMap};

use contutto_sim::snapshot::{persist_sorted_map, restore_map, Persist, RestoreError, SnapReader};
use contutto_sim::SimTime;

use crate::endurance::EnduranceClass;
use crate::fault::MediaFaultInjector;
use crate::store::SparseMemory;

/// Bytes per ECC-protected cache line.
pub const ECC_LINE_BYTES: usize = 128;
/// 64-bit words per ECC-protected cache line.
pub const ECC_WORDS_PER_LINE: usize = ECC_LINE_BYTES / 8;

/// Codeword position (1..=71) of each of the 64 data bits: the
/// positions that are not powers of two, in ascending order.
const DATA_POS: [u8; 64] = {
    let mut tbl = [0u8; 64];
    let mut pos = 1u8;
    let mut i = 0;
    while i < 64 {
        if !pos.is_power_of_two() {
            tbl[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    tbl
};

/// Inverse of [`DATA_POS`]: data-bit index for a codeword position
/// (255 for parity positions and out-of-range).
const POS_TO_BIT: [u8; 128] = {
    let mut tbl = [255u8; 128];
    let mut i = 0;
    while i < 64 {
        tbl[DATA_POS[i] as usize] = i as u8;
        i += 1;
    }
    tbl
};

/// Computes the check byte for a 64-bit data word: bits 0-6 are the
/// Hamming parity bits (positions 1,2,4,…,64 of the codeword), bit 7
/// is the overall parity that upgrades SEC to SEC-DED.
pub fn encode(word: u64) -> u8 {
    let mut p = 0u8;
    let mut w = word;
    while w != 0 {
        let i = w.trailing_zeros() as usize;
        p ^= DATA_POS[i];
        w &= w - 1;
    }
    // Overall parity covers the 64 data bits and the 7 Hamming bits,
    // making the parity of the full 72-bit codeword even.
    let overall = (word.count_ones() + u32::from(p).count_ones()) & 1;
    p | ((overall as u8) << 7)
}

/// Outcome of decoding one 64-bit word against its check byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordDecode {
    /// Word and check byte agree.
    Clean,
    /// A single flipped data bit was corrected in place.
    CorrectedData {
        /// Which data bit (0-63) was repaired.
        bit: u8,
    },
    /// A check bit was flipped; the data itself is intact.
    CorrectedCheck,
    /// A double-bit (or worse) error — the data cannot be trusted.
    Uncorrectable,
}

/// Decodes `word` against its stored check byte, correcting a
/// single-bit data error in place.
pub fn decode(word: &mut u64, check: u8) -> WordDecode {
    let expect = encode(*word);
    let syndrome = (expect ^ check) & 0x7f;
    // Parity of all 72 stored bits: even when clean or after a
    // double-bit error, odd after any single-bit error.
    let odd = (word.count_ones() + u32::from(check).count_ones()) & 1 == 1;
    match (syndrome, odd) {
        (0, false) => WordDecode::Clean,
        (0, true) => WordDecode::CorrectedCheck, // overall-parity bit itself
        (s, true) => {
            let bit = POS_TO_BIT[s as usize & 0x7f];
            if s.is_power_of_two() {
                WordDecode::CorrectedCheck
            } else if bit != 255 {
                *word ^= 1u64 << bit;
                WordDecode::CorrectedData { bit }
            } else {
                WordDecode::Uncorrectable
            }
        }
        (_, false) => WordDecode::Uncorrectable,
    }
}

/// Check bytes for one 128-byte line.
pub type LineCheck = [u8; ECC_WORDS_PER_LINE];

/// Encodes all sixteen words of a 128-byte line.
pub fn encode_line(line: &[u8; ECC_LINE_BYTES]) -> LineCheck {
    let mut check = [0u8; ECC_WORDS_PER_LINE];
    for (chunk, c) in line.chunks_exact(8).zip(check.iter_mut()) {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(chunk);
        *c = encode(u64::from_le_bytes(bytes));
    }
    check
}

/// Decodes a 128-byte line in place; returns the merged outcome.
pub fn decode_line(line: &mut [u8; ECC_LINE_BYTES], check: &LineCheck) -> ReadOutcome {
    let mut outcome = ReadOutcome::Clean;
    for (w, c) in check.iter().enumerate() {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&line[w * 8..w * 8 + 8]);
        let mut word = u64::from_le_bytes(bytes);
        let d = decode(&mut word, *c);
        match d {
            WordDecode::Clean => {}
            WordDecode::CorrectedData { .. } => {
                line[w * 8..w * 8 + 8].copy_from_slice(&word.to_le_bytes());
                outcome = outcome.merge(ReadOutcome::Corrected { bits: 1 });
            }
            WordDecode::CorrectedCheck => {
                outcome = outcome.merge(ReadOutcome::Corrected { bits: 1 });
            }
            WordDecode::Uncorrectable => outcome = outcome.merge(ReadOutcome::Uncorrectable),
        }
    }
    outcome
}

/// ECC verdict of a device read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadOutcome {
    /// Data matched its check bits everywhere.
    #[default]
    Clean,
    /// One or more single-bit errors were corrected; the returned
    /// data is good.
    Corrected {
        /// Total bits corrected across the access.
        bits: u32,
    },
    /// At least one word had a multi-bit error; the returned data for
    /// that region is untrustworthy and must be treated as poisoned.
    Uncorrectable,
}

impl ReadOutcome {
    /// Whether the data needs no attention.
    pub fn is_clean(self) -> bool {
        matches!(self, ReadOutcome::Clean)
    }

    /// Whether the data is unusable.
    pub fn is_uncorrectable(self) -> bool {
        matches!(self, ReadOutcome::Uncorrectable)
    }

    /// Bits corrected (zero unless `Corrected`).
    pub fn corrected_bits(self) -> u32 {
        match self {
            ReadOutcome::Corrected { bits } => bits,
            _ => 0,
        }
    }

    /// Worst-of combination of two outcomes.
    pub fn merge(self, other: ReadOutcome) -> ReadOutcome {
        match (self, other) {
            (ReadOutcome::Uncorrectable, _) | (_, ReadOutcome::Uncorrectable) => {
                ReadOutcome::Uncorrectable
            }
            (ReadOutcome::Corrected { bits: a }, ReadOutcome::Corrected { bits: b }) => {
                ReadOutcome::Corrected { bits: a + b }
            }
            (c @ ReadOutcome::Corrected { .. }, ReadOutcome::Clean)
            | (ReadOutcome::Clean, c @ ReadOutcome::Corrected { .. }) => c,
            (ReadOutcome::Clean, ReadOutcome::Clean) => ReadOutcome::Clean,
        }
    }
}

/// A device read: when the data is available, and what ECC saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// Completion time of the access.
    pub done: SimTime,
    /// ECC verdict for the returned bytes.
    pub outcome: ReadOutcome,
}

/// Result of one patrol-scrub pass over a device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// 128-byte lines examined.
    pub lines_scanned: u64,
    /// Single-bit errors corrected *in the array*.
    pub corrected: u64,
    /// Lines found uncorrectable (left in place; demand reads will
    /// poison them).
    pub uncorrectable: u64,
    /// Pages retired this pass for exceeding the correctable-error
    /// threshold (4 KiB page base addresses).
    pub retired_pages: Vec<u64>,
}

impl ScrubReport {
    /// Whether the pass found nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.corrected == 0 && self.uncorrectable == 0 && self.retired_pages.is_empty()
    }
}

/// Cumulative RAS counters for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasCounters {
    /// Bits corrected on demand reads.
    pub demand_corrected: u64,
    /// Demand reads that returned uncorrectable data.
    pub demand_uncorrectable: u64,
    /// Bits corrected by the patrol scrubber.
    pub scrub_corrected: u64,
    /// Uncorrectable lines seen by the scrubber.
    pub scrub_uncorrectable: u64,
    /// Scrub passes completed.
    pub scrub_passes: u64,
    /// Pages retired.
    pub pages_retired: u64,
}

const PAGE_BYTES: u64 = 4096;

/// Correctable errors a page may accumulate before the scrubber
/// retires it.
pub const DEFAULT_RETIRE_THRESHOLD: u32 = 16;

/// Per-device RAS state: check-byte store, optional fault injector,
/// per-page health accounting and the patrol-scrub walker.
///
/// Devices embed one of these next to their [`SparseMemory`]; the
/// split keeps borrows simple (`&mut self.ras` alongside
/// `&mut self.store`).
#[derive(Debug, Clone, Default)]
pub struct MediaRas {
    check: HashMap<u64, LineCheck>,
    injector: Option<MediaFaultInjector>,
    page_correctable: HashMap<u64, u32>,
    retired: BTreeSet<u64>,
    /// Lines known uncorrectable. The entry survives until the line
    /// is fully rewritten, so a partial write merging fresh bytes
    /// into a rotten line cannot launder the garbage into "clean".
    poisoned: BTreeSet<u64>,
    retire_threshold: u32,
    counters: RasCounters,
}

impl MediaRas {
    /// Fresh state with the default retirement threshold.
    pub fn new() -> Self {
        MediaRas {
            retire_threshold: DEFAULT_RETIRE_THRESHOLD,
            ..MediaRas::default()
        }
    }

    /// Installs a fault injector (replacing any previous one).
    pub fn attach_injector(&mut self, injector: MediaFaultInjector) {
        self.injector = Some(injector);
    }

    /// Forwards a per-line write count to the injector's wear model
    /// (see [`MediaFaultInjector::note_write`]). Returns `true` when
    /// a new wear-induced stuck cell appeared.
    pub fn note_write(&mut self, line_addr: u64, writes: u64, endurance: EnduranceClass) -> bool {
        match &mut self.injector {
            Some(inj) => inj.note_write(line_addr, writes, endurance),
            None => false,
        }
    }

    /// Correctable errors per page before retirement.
    pub fn set_retire_threshold(&mut self, threshold: u32) {
        assert!(threshold > 0, "retire threshold must be positive");
        self.retire_threshold = threshold;
    }

    /// Cumulative counters.
    pub fn counters(&self) -> RasCounters {
        self.counters
    }

    /// Pages retired so far (4 KiB base addresses, ascending).
    pub fn retired_pages(&self) -> Vec<u64> {
        self.retired.iter().copied().collect()
    }

    /// Plants any injector events due by `now` into the array, then
    /// re-encodes nothing — the flips are exactly what ECC exists to
    /// catch. Call before every array access.
    fn plant_due(&mut self, now: SimTime, store: &mut SparseMemory) {
        if let Some(inj) = &mut self.injector {
            inj.plant_due(now, store, &self.retired);
        }
    }

    /// Prepares the array for a write of `len` bytes at `addr`: plants
    /// due faults, then corrects (in the array) any latent single-bit
    /// errors in partially-covered lines so the post-write re-encode
    /// cannot bless corrupted neighbor bytes as clean. Lines that are
    /// uncorrectable and not fully overwritten stay poisoned.
    /// Call **before** the store write.
    pub fn pre_write(&mut self, now: SimTime, addr: u64, len: usize, store: &mut SparseMemory) {
        if len == 0 {
            return;
        }
        self.plant_due(now, store);
        let end = addr + len as u64;
        let first = addr / ECC_LINE_BYTES as u64;
        let last = (end - 1) / ECC_LINE_BYTES as u64;
        for line_idx in first..=last {
            let base = line_idx * ECC_LINE_BYTES as u64;
            if addr <= base && end >= base + ECC_LINE_BYTES as u64 {
                // Fully overwritten: fresh data supersedes any rot.
                self.poisoned.remove(&base);
                continue;
            }
            let mut line = [0u8; ECC_LINE_BYTES];
            store.read(base, &mut line);
            let check = self.check.get(&base).copied().unwrap_or_default();
            match decode_line(&mut line, &check) {
                ReadOutcome::Clean => {}
                ReadOutcome::Corrected { bits } => {
                    store.write(base, &line);
                    self.counters.demand_corrected += u64::from(bits);
                    self.account(base, ReadOutcome::Corrected { bits });
                }
                ReadOutcome::Uncorrectable => {
                    self.poisoned.insert(base);
                }
            }
        }
    }

    /// Records a write: re-encodes the check bytes of every line the
    /// write touched (reading the merged line back from the store).
    /// Call **after** the store write, paired with [`Self::pre_write`].
    pub fn record_write(&mut self, addr: u64, len: usize, store: &SparseMemory) {
        if len == 0 {
            return;
        }
        let first = addr / ECC_LINE_BYTES as u64;
        let last = (addr + len as u64 - 1) / ECC_LINE_BYTES as u64;
        for line_idx in first..=last {
            let base = line_idx * ECC_LINE_BYTES as u64;
            let mut line = [0u8; ECC_LINE_BYTES];
            store.read(base, &mut line);
            self.check.insert(base, encode_line(&line));
        }
    }

    /// Maintenance-path read of one full line through the service
    /// interface (FSI → I²C on ConTutto, paper §3.4): functional, zero
    /// simulated time, and independent of the DMI link. Plants due
    /// faults so the sideband sees the same array state a demand read
    /// at `now` would, runs the ECC check on a private copy of the
    /// line, and reports whether the line must travel as poison — but
    /// charges no demand/scrub counters and heals nothing.
    ///
    /// # Panics
    ///
    /// Panics if `line_base` is not line-aligned.
    pub fn sideband_read(
        &mut self,
        now: SimTime,
        line_base: u64,
        store: &mut SparseMemory,
    ) -> ([u8; ECC_LINE_BYTES], bool) {
        assert_eq!(line_base % ECC_LINE_BYTES as u64, 0, "line-aligned reads");
        self.plant_due(now, store);
        let mut line = [0u8; ECC_LINE_BYTES];
        store.read(line_base, &mut line);
        if let Some(inj) = &self.injector {
            inj.overlay(line_base, &mut line, &self.retired);
        }
        let check = self.check.get(&line_base).copied().unwrap_or_default();
        let outcome = decode_line(&mut line, &check);
        let poisoned = outcome.is_uncorrectable() || self.poisoned.contains(&line_base);
        (line, poisoned)
    }

    /// Maintenance-path write of one full line. Unlike the demand path
    /// ([`Self::pre_write`]), a sideband write can deposit a line
    /// *with* its poison marker: evacuation must move rot as rot,
    /// never launder it into clean data.
    ///
    /// # Panics
    ///
    /// Panics if `line_base` is not line-aligned.
    pub fn sideband_write(
        &mut self,
        line_base: u64,
        data: &[u8; ECC_LINE_BYTES],
        poison: bool,
        store: &mut SparseMemory,
    ) {
        assert_eq!(line_base % ECC_LINE_BYTES as u64, 0, "line-aligned writes");
        store.write(line_base, data);
        self.check.insert(line_base, encode_line(data));
        if poison {
            self.poisoned.insert(line_base);
        } else {
            self.poisoned.remove(&line_base);
        }
    }

    /// Whether `line_base` is currently marked poisoned.
    pub fn is_poisoned(&self, line_base: u64) -> bool {
        self.poisoned.contains(&line_base)
    }

    /// Resets contents-derived state after the array lost power:
    /// check bytes, per-page accumulation and poison all describe
    /// data that no longer exists. Retirement records and the fault
    /// plan (physical defects) survive.
    pub fn on_power_loss(&mut self) {
        self.check.clear();
        self.page_correctable.clear();
        self.poisoned.clear();
    }

    /// Verifies (and corrects, in `buf` only) a demand read of `len`
    /// bytes at `addr`. `buf` already holds the raw store contents.
    pub fn verify_read(
        &mut self,
        now: SimTime,
        addr: u64,
        buf: &mut [u8],
        store: &mut SparseMemory,
    ) -> ReadOutcome {
        if buf.is_empty() {
            return ReadOutcome::Clean;
        }
        self.plant_due(now, store);
        let first = addr / ECC_LINE_BYTES as u64;
        let last = (addr + buf.len() as u64 - 1) / ECC_LINE_BYTES as u64;
        let mut outcome = ReadOutcome::Clean;
        for line_idx in first..=last {
            let base = line_idx * ECC_LINE_BYTES as u64;
            let mut line = [0u8; ECC_LINE_BYTES];
            store.read(base, &mut line);
            if let Some(inj) = &self.injector {
                inj.overlay(base, &mut line, &self.retired);
            }
            let check = self.check.get(&base).copied().unwrap_or_default();
            let mut line_outcome = decode_line(&mut line, &check);
            if line_outcome.is_uncorrectable() {
                self.poisoned.insert(base);
            } else if self.poisoned.contains(&base) {
                line_outcome = ReadOutcome::Uncorrectable;
            }
            self.account(base, line_outcome);
            outcome = outcome.merge(line_outcome);
            // Copy the verified slice back into the caller's view.
            let copy_start = base.max(addr);
            let copy_end = (base + ECC_LINE_BYTES as u64).min(addr + buf.len() as u64);
            let src = (copy_start - base) as usize..(copy_end - base) as usize;
            let dst = (copy_start - addr) as usize..(copy_end - addr) as usize;
            buf[dst].copy_from_slice(&line[src]);
        }
        match outcome {
            ReadOutcome::Corrected { bits } => self.counters.demand_corrected += u64::from(bits),
            ReadOutcome::Uncorrectable => self.counters.demand_uncorrectable += 1,
            ReadOutcome::Clean => {}
        }
        outcome
    }

    fn account(&mut self, line_base: u64, outcome: ReadOutcome) {
        if let ReadOutcome::Corrected { bits } = outcome {
            let page = line_base / PAGE_BYTES * PAGE_BYTES;
            if !self.retired.contains(&page) {
                *self.page_correctable.entry(page).or_insert(0) += bits;
            }
        }
    }

    /// One patrol-scrub pass: walks every resident page in address
    /// order, corrects latent single-bit errors **in the array**, and
    /// retires pages whose accumulated correctable count crossed the
    /// threshold. Zero simulated time.
    pub fn scrub(&mut self, now: SimTime, store: &mut SparseMemory) -> ScrubReport {
        self.plant_due(now, store);
        let mut report = ScrubReport::default();
        for page in store.resident_page_addrs() {
            if self.retired.contains(&page) {
                continue;
            }
            for line_idx in 0..(PAGE_BYTES / ECC_LINE_BYTES as u64) {
                let base = page + line_idx * ECC_LINE_BYTES as u64;
                report.lines_scanned += 1;
                let mut line = [0u8; ECC_LINE_BYTES];
                store.read(base, &mut line);
                if let Some(inj) = &self.injector {
                    inj.overlay(base, &mut line, &self.retired);
                }
                let check = self.check.get(&base).copied().unwrap_or_default();
                match decode_line(&mut line, &check) {
                    ReadOutcome::Clean => {}
                    ReadOutcome::Corrected { bits } => {
                        // Heal the array copy. Stuck cells re-assert on
                        // the next read, which is exactly how they keep
                        // accumulating toward retirement.
                        store.write(base, &line);
                        report.corrected += u64::from(bits);
                        self.account(base, ReadOutcome::Corrected { bits });
                    }
                    ReadOutcome::Uncorrectable => {
                        self.poisoned.insert(base);
                        report.uncorrectable += 1;
                    }
                }
            }
            let count = self.page_correctable.get(&page).copied().unwrap_or(0);
            if count >= self.retire_threshold {
                self.retired.insert(page);
                self.page_correctable.remove(&page);
                report.retired_pages.push(page);
            }
        }
        self.counters.scrub_corrected += report.corrected;
        self.counters.scrub_uncorrectable += report.uncorrectable;
        self.counters.scrub_passes += 1;
        self.counters.pages_retired += report.retired_pages.len() as u64;
        report
    }
}

impl Persist for RasCounters {
    fn persist(&self, out: &mut Vec<u8>) {
        self.demand_corrected.persist(out);
        self.demand_uncorrectable.persist(out);
        self.scrub_corrected.persist(out);
        self.scrub_uncorrectable.persist(out);
        self.scrub_passes.persist(out);
        self.pages_retired.persist(out);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(RasCounters {
            demand_corrected: r.u64()?,
            demand_uncorrectable: r.u64()?,
            scrub_corrected: r.u64()?,
            scrub_uncorrectable: r.u64()?,
            scrub_passes: r.u64()?,
            pages_retired: r.u64()?,
        })
    }
}

impl Persist for MediaRas {
    fn persist(&self, out: &mut Vec<u8>) {
        persist_sorted_map(&self.check, out);
        self.injector.persist(out);
        persist_sorted_map(&self.page_correctable, out);
        self.retired.persist(out);
        self.poisoned.persist(out);
        self.retire_threshold.persist(out);
        self.counters.persist(out);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let check = restore_map::<u64, LineCheck>(r)?;
        let injector = Option::<MediaFaultInjector>::restore(r)?;
        let page_correctable = restore_map::<u64, u32>(r)?;
        let retired = BTreeSet::restore(r)?;
        let poisoned = BTreeSet::restore(r)?;
        let retire_threshold = r.u32()?;
        if retire_threshold == 0 {
            return Err(RestoreError::Malformed {
                context: "zero retire threshold",
            });
        }
        Ok(MediaRas {
            check,
            injector,
            page_correctable,
            retired,
            poisoned,
            retire_threshold,
            counters: RasCounters::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sideband_write_preserves_poison_across_migration() {
        let mut src_ras = MediaRas::new();
        let mut src = SparseMemory::new();
        let mut dst_ras = MediaRas::new();
        let mut dst = SparseMemory::new();

        let data = [0x5Au8; ECC_LINE_BYTES];
        src_ras.pre_write(SimTime::ZERO, 0, ECC_LINE_BYTES, &mut src);
        src.write(0, &data);
        src_ras.record_write(0, ECC_LINE_BYTES, &src);

        // Rot the line beyond correction: two flips in one word.
        let mut raw = [0u8; ECC_LINE_BYTES];
        src.read(0, &mut raw);
        raw[0] ^= 0b11;
        src.write(0, &raw);

        let (moved, poisoned) = src_ras.sideband_read(SimTime::from_us(1), 0, &mut src);
        assert!(poisoned, "double flip must travel as poison");

        dst_ras.sideband_write(0, &moved, poisoned, &mut dst);
        assert!(dst_ras.is_poisoned(0), "poison marker survives the move");
        let mut buf = [0u8; ECC_LINE_BYTES];
        let outcome = dst_ras.verify_read(SimTime::from_us(2), 0, &mut buf, &mut dst);
        assert!(outcome.is_uncorrectable(), "destination read is poisoned");

        // A fully-covering demand write supersedes the rot as usual.
        dst_ras.pre_write(SimTime::from_us(3), 0, ECC_LINE_BYTES, &mut dst);
        dst.write(0, &data);
        dst_ras.record_write(0, ECC_LINE_BYTES, &dst);
        let outcome = dst_ras.verify_read(SimTime::from_us(4), 0, &mut buf, &mut dst);
        assert!(outcome.is_clean());
        assert_eq!(buf, data);
    }

    #[test]
    fn sideband_read_returns_verified_clean_line() {
        let mut ras = MediaRas::new();
        let mut store = SparseMemory::new();
        let data = [0xC3u8; ECC_LINE_BYTES];
        ras.pre_write(SimTime::ZERO, 128, ECC_LINE_BYTES, &mut store);
        store.write(128, &data);
        ras.record_write(128, ECC_LINE_BYTES, &store);
        let before = ras.counters();
        let (line, poisoned) = ras.sideband_read(SimTime::from_us(1), 128, &mut store);
        assert_eq!(line, data);
        assert!(!poisoned);
        // Maintenance reads never perturb the demand accounting.
        assert_eq!(ras.counters(), before);
    }

    #[test]
    fn zero_word_encodes_to_zero() {
        assert_eq!(encode(0), 0);
        let mut w = 0u64;
        assert_eq!(decode(&mut w, 0), WordDecode::Clean);
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        let word = 0xDEAD_BEEF_0123_4567u64;
        let check = encode(word);
        for bit in 0..64 {
            let mut corrupted = word ^ (1u64 << bit);
            let d = decode(&mut corrupted, check);
            assert_eq!(d, WordDecode::CorrectedData { bit }, "bit {bit}");
            assert_eq!(corrupted, word, "bit {bit} restored");
        }
    }

    #[test]
    fn every_check_bit_flip_leaves_data_intact() {
        let word = 0x0F0F_1234_5678_9ABCu64;
        let check = encode(word);
        for bit in 0..8 {
            let mut w = word;
            let d = decode(&mut w, check ^ (1 << bit));
            assert_eq!(d, WordDecode::CorrectedCheck, "check bit {bit}");
            assert_eq!(w, word);
        }
    }

    #[test]
    fn double_bit_flips_are_detected_not_miscorrected() {
        let word = 0x1122_3344_5566_7788u64;
        let check = encode(word);
        for a in 0..64u32 {
            // A representative stride of second flips (full 64x64 is slow
            // in debug builds for no extra coverage).
            for b in [(a + 1) % 64, (a + 17) % 64, (a + 40) % 64] {
                if a == b {
                    continue;
                }
                let mut corrupted = word ^ (1u64 << a) ^ (1u64 << b);
                let d = decode(&mut corrupted, check);
                assert_eq!(d, WordDecode::Uncorrectable, "bits {a},{b}");
            }
        }
    }

    #[test]
    fn line_roundtrip_and_correction() {
        let mut line = [0u8; ECC_LINE_BYTES];
        for (i, b) in line.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let check = encode_line(&line);
        let mut clean = line;
        assert_eq!(decode_line(&mut clean, &check), ReadOutcome::Clean);

        let mut flipped = line;
        flipped[5] ^= 0x10;
        flipped[77] ^= 0x01;
        assert_eq!(
            decode_line(&mut flipped, &check),
            ReadOutcome::Corrected { bits: 2 }
        );
        assert_eq!(flipped, line);

        let mut dead = line;
        dead[8] ^= 0x03; // two bits in one word
        assert_eq!(decode_line(&mut dead, &check), ReadOutcome::Uncorrectable);
    }

    #[test]
    fn outcome_merge_is_worst_of() {
        let c = ReadOutcome::Corrected { bits: 2 };
        assert_eq!(ReadOutcome::Clean.merge(c), c);
        assert_eq!(
            c.merge(ReadOutcome::Corrected { bits: 3 }),
            ReadOutcome::Corrected { bits: 5 }
        );
        assert_eq!(
            c.merge(ReadOutcome::Uncorrectable),
            ReadOutcome::Uncorrectable
        );
        assert!(ReadOutcome::Clean.merge(ReadOutcome::Clean).is_clean());
    }

    #[test]
    fn ras_demand_read_corrects_buffer_not_store() {
        let mut store = SparseMemory::new();
        let mut ras = MediaRas::new();
        let data = [0xA5u8; 128];
        store.write(0, &data);
        ras.record_write(0, 128, &store);
        // Plant a latent flip directly.
        let mut b = [0u8; 1];
        store.read(3, &mut b);
        store.write(3, &[b[0] ^ 0x08]);

        let mut buf = [0u8; 128];
        store.read(0, &mut buf);
        let outcome = ras.verify_read(SimTime::ZERO, 0, &mut buf, &mut store);
        assert_eq!(outcome, ReadOutcome::Corrected { bits: 1 });
        assert_eq!(buf, data, "returned data corrected");
        store.read(3, &mut b);
        assert_eq!(b[0], 0xA5 ^ 0x08, "store still has the flip");

        // A scrub pass heals the array.
        let report = ras.scrub(SimTime::ZERO, &mut store);
        assert_eq!(report.corrected, 1);
        store.read(3, &mut b);
        assert_eq!(b[0], 0xA5, "scrub healed the store");
    }

    #[test]
    fn two_flips_in_one_word_go_uncorrectable() {
        let mut store = SparseMemory::new();
        let mut ras = MediaRas::new();
        store.write(0, &[0u8; 128]);
        ras.record_write(0, 128, &store);
        store.write(16, &[0x05]); // two bits of word 2
        let mut buf = [0u8; 128];
        store.read(0, &mut buf);
        let outcome = ras.verify_read(SimTime::ZERO, 0, &mut buf, &mut store);
        assert!(outcome.is_uncorrectable());
        assert_eq!(ras.counters().demand_uncorrectable, 1);
    }

    #[test]
    fn scrub_retires_noisy_pages() {
        let mut store = SparseMemory::new();
        let mut ras = MediaRas::new();
        ras.set_retire_threshold(3);
        store.write(0, &[0xFFu8; 128]);
        ras.record_write(0, 128, &store);
        // Same single-bit fault re-planted across passes (a stuck cell
        // without an injector): flip, scrub, repeat.
        let mut retired = Vec::new();
        for _ in 0..4 {
            let mut b = [0u8; 1];
            store.read(0, &mut b);
            store.write(0, &[b[0] ^ 0x01]);
            let report = ras.scrub(SimTime::ZERO, &mut store);
            retired.extend(report.retired_pages);
        }
        assert_eq!(retired, vec![0]);
        assert_eq!(ras.counters().pages_retired, 1);
        assert_eq!(ras.retired_pages(), vec![0]);
    }

    #[test]
    fn partial_write_cannot_launder_a_poisoned_line() {
        let mut store = SparseMemory::new();
        let mut ras = MediaRas::new();
        store.write(0, &[0x5Au8; 128]);
        ras.record_write(0, 128, &store);
        store.write(0, &[0x5A ^ 0x03]); // double-bit error in word 0

        let mut buf = [0u8; 128];
        assert!(ras
            .verify_read(SimTime::ZERO, 0, &mut buf, &mut store)
            .is_uncorrectable());

        // Partial write to the same line: the fresh bytes merge, but
        // the line must stay poisoned.
        ras.pre_write(SimTime::ZERO, 64, 16, &mut store);
        store.write(64, &[0x11u8; 16]);
        ras.record_write(64, 16, &store);
        assert!(ras
            .verify_read(SimTime::ZERO, 0, &mut buf, &mut store)
            .is_uncorrectable());

        // A full-line rewrite clears the poison.
        ras.pre_write(SimTime::ZERO, 0, 128, &mut store);
        store.write(0, &[0x22u8; 128]);
        ras.record_write(0, 128, &store);
        let outcome = ras.verify_read(SimTime::ZERO, 0, &mut buf, &mut store);
        assert!(outcome.is_clean());
        assert_eq!(buf, [0x22u8; 128]);
    }

    #[test]
    fn unwritten_lines_verify_clean() {
        let mut store = SparseMemory::new();
        let mut ras = MediaRas::new();
        let mut buf = [0u8; 256];
        store.read(4096, &mut buf);
        let outcome = ras.verify_read(SimTime::ZERO, 4096, &mut buf, &mut store);
        assert!(outcome.is_clean());
        assert_eq!(buf, [0u8; 256]);
    }

    #[test]
    fn unaligned_spans_verify_whole_lines() {
        let mut store = SparseMemory::new();
        let mut ras = MediaRas::new();
        let data: Vec<u8> = (0..512u32).map(|i| (i % 249) as u8).collect();
        store.write(64, &data);
        ras.record_write(64, data.len(), &store);
        // Flip a bit outside the read span but inside an overlapped line.
        let mut b = [0u8; 1];
        store.read(70, &mut b);
        store.write(70, &[b[0] ^ 0x80]);
        let mut buf = [0u8; 100];
        store.read(96, &mut buf);
        let outcome = ras.verify_read(SimTime::ZERO, 96, &mut buf, &mut store);
        assert_eq!(outcome, ReadOutcome::Corrected { bits: 1 });
        assert_eq!(&buf[..], &data[32..132]);
    }
}
