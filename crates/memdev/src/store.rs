//! Sparse functional backing store.
//!
//! Devices in this crate can model terabytes of capacity; allocating
//! that eagerly would be absurd. [`SparseMemory`] allocates 4 KiB pages
//! on first write and reads zeros from untouched pages (matching how a
//! scrubbed DIMM behaves after IPL).

use std::collections::HashMap;

use contutto_sim::snapshot::{Persist, RestoreError, SnapReader};

const PAGE_SIZE: u64 = 4096;

/// A sparse, zero-initialized byte store.
///
/// # Example
///
/// ```
/// use contutto_memdev::SparseMemory;
/// let mut m = SparseMemory::new();
/// m.write(1_000_000, b"hello");
/// let mut buf = [0u8; 5];
/// m.read(1_000_000, &mut buf);
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl SparseMemory {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut offset = 0usize;
        while offset < buf.len() {
            let cur = addr + offset as u64;
            let page_idx = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - offset);
            match self.pages.get(&page_idx) {
                Some(page) => buf[offset..offset + n].copy_from_slice(&page[in_page..in_page + n]),
                None => buf[offset..offset + n].fill(0),
            }
            offset += n;
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut offset = 0usize;
        while offset < data.len() {
            let cur = addr + offset as u64;
            let page_idx = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(data.len() - offset);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            page[in_page..in_page + n].copy_from_slice(&data[offset..offset + n]);
            offset += n;
        }
    }

    /// Number of 4 KiB pages materialized so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Base addresses of all materialized pages, ascending. The sort
    /// makes walkers (e.g. the patrol scrubber) deterministic despite
    /// the hash-map backing.
    pub fn resident_page_addrs(&self) -> Vec<u64> {
        let mut addrs: Vec<u64> = self.pages.keys().map(|idx| idx * PAGE_SIZE).collect();
        addrs.sort_unstable();
        addrs
    }

    /// Drops all contents (simulated power loss on volatile media).
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Copies `len` bytes from `src_addr` in `src` into `self` at
    /// `dst_addr` (used by the NVDIMM save/restore engine).
    pub fn copy_from(&mut self, src: &SparseMemory, src_addr: u64, dst_addr: u64, len: u64) {
        let mut buf = vec![0u8; 64 * 1024];
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(buf.len() as u64) as usize;
            src.read(src_addr + done, &mut buf[..n]);
            self.write(dst_addr + done, &buf[..n]);
            done += n as u64;
        }
    }
}

impl Persist for SparseMemory {
    fn persist(&self, out: &mut Vec<u8>) {
        // The hash map iterates in arbitrary order; sort page indices
        // so the same contents always serialize to the same bytes.
        let mut idxs: Vec<u64> = self.pages.keys().copied().collect();
        idxs.sort_unstable();
        (idxs.len() as u64).persist(out);
        for idx in idxs {
            idx.persist(out);
            out.extend_from_slice(&self.pages[&idx][..]);
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let n = r.len()?;
        // Each entry is 8 + PAGE_SIZE bytes; a length prefix claiming
        // more entries than could possibly remain is a truncation.
        if n > r.remaining() / 8 {
            return Err(RestoreError::Truncated {
                context: "sparse memory page table",
            });
        }
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let idx = u64::restore(r)?;
            let bytes = <[u8; PAGE_SIZE as usize]>::restore(r)?;
            if pages.insert(idx, Box::new(bytes)).is_some() {
                return Err(RestoreError::Malformed {
                    context: "duplicate sparse page",
                });
            }
        }
        Ok(SparseMemory { pages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = SparseMemory::new();
        let mut buf = [0xFFu8; 64];
        m.read(123_456, &mut buf);
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip_within_page() {
        let mut m = SparseMemory::new();
        m.write(100, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn write_read_across_page_boundary() {
        let mut m = SparseMemory::new();
        let data: Vec<u8> = (0..100).collect();
        m.write(PAGE_SIZE - 50, &data);
        let mut buf = vec![0u8; 100];
        m.read(PAGE_SIZE - 50, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_page_keeps_surroundings_zero() {
        let mut m = SparseMemory::new();
        m.write(10, &[0xAA]);
        let mut buf = [0u8; 3];
        m.read(9, &mut buf);
        assert_eq!(buf, [0, 0xAA, 0]);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut m = SparseMemory::new();
        m.write(0, &[9; 32]);
        m.clear();
        let mut buf = [1u8; 32];
        m.read(0, &mut buf);
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn resident_page_addrs_are_sorted() {
        let mut m = SparseMemory::new();
        for addr in [9 * PAGE_SIZE, PAGE_SIZE, 5 * PAGE_SIZE] {
            m.write(addr, &[1]);
        }
        assert_eq!(
            m.resident_page_addrs(),
            vec![PAGE_SIZE, 5 * PAGE_SIZE, 9 * PAGE_SIZE]
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_contents() {
        let mut m = SparseMemory::new();
        m.write(100, &[1, 2, 3]);
        m.write(9 * PAGE_SIZE + 7, &[0xEE; 64]);
        let mut img = Vec::new();
        m.persist(&mut img);
        let restored = SparseMemory::restore(&mut SnapReader::new(&img)).unwrap();
        assert_eq!(restored.resident_page_addrs(), m.resident_page_addrs());
        let mut buf = [0u8; 3];
        restored.read(100, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn snapshot_restore_rejects_oversized_page_table() {
        let mut img = Vec::new();
        (u64::MAX).persist(&mut img);
        let err = SparseMemory::restore(&mut SnapReader::new(&img)).unwrap_err();
        assert!(matches!(err, RestoreError::Truncated { .. }), "got {err:?}");
    }

    #[test]
    fn copy_from_transfers_large_region() {
        let mut src = SparseMemory::new();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        src.write(5_000, &data);
        let mut dst = SparseMemory::new();
        dst.copy_from(&src, 5_000, 77_000, data.len() as u64);
        let mut buf = vec![0u8; data.len()];
        dst.read(77_000, &mut buf);
        assert_eq!(buf, data);
    }
}
