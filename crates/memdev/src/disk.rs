//! Mechanical hard-disk model.
//!
//! The Table 4 baseline: a 1.1 TB SAS HDD sustaining ~75 IOPS on small
//! random writes. The model charges seek (distance-dependent),
//! rotational latency and transfer time, and recognizes sequential
//! accesses (no seek, no rotation) — which is exactly the property the
//! GPFS write cache exploits by turning random writes into sequential
//! ones (paper §4.2, Table 4).

use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::SimTime;

use crate::ecc::{ReadOutcome, ReadResult};
use crate::store::SparseMemory;
use crate::traits::{check_range, MediaKind, MemoryDevice};

/// HDD mechanical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskConfig {
    /// Minimum (track-to-track) seek.
    pub seek_min: SimTime,
    /// Full-stroke seek.
    pub seek_max: SimTime,
    /// Spindle speed in RPM (rotational latency averages half a turn).
    pub rpm: u64,
    /// Sustained media transfer rate, bytes/sec.
    pub transfer_rate: f64,
}

impl DiskConfig {
    /// A 7200 RPM enterprise SAS drive.
    pub fn sas_7200rpm() -> Self {
        DiskConfig {
            seek_min: SimTime::from_ms(1),
            seek_max: SimTime::from_ms(22),
            rpm: 7200,
            transfer_rate: 150e6,
        }
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig::sas_7200rpm()
    }
}

/// A mechanical hard disk drive.
///
/// # Example
///
/// ```
/// use contutto_memdev::{HardDiskDrive, MemoryDevice};
/// use contutto_sim::SimTime;
///
/// let mut hdd = HardDiskDrive::new(1_100_000_000_000, Default::default());
/// // A random 4 KiB write costs milliseconds.
/// let done = hdd.write(SimTime::ZERO, 500_000_000_000, &[0u8; 4096]);
/// assert!(done.as_us_f64() > 1000.0);
/// ```
#[derive(Debug)]
pub struct HardDiskDrive {
    capacity: u64,
    cfg: DiskConfig,
    store: SparseMemory,
    head_pos: u64,
    busy_until: SimTime,
    seeks: u64,
    sequential_hits: u64,
}

impl HardDiskDrive {
    /// Creates a drive of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64, cfg: DiskConfig) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        HardDiskDrive {
            capacity,
            cfg,
            store: SparseMemory::new(),
            head_pos: 0,
            busy_until: SimTime::ZERO,
            seeks: 0,
            sequential_hits: 0,
        }
    }

    /// Seeks performed so far.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Accesses recognized as sequential (no mechanical delay).
    pub fn sequential_hits(&self) -> u64 {
        self.sequential_hits
    }

    /// Serializes all dynamic state (contents, head position, stats).
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.capacity.persist(out);
        self.store.persist(out);
        self.head_pos.persist(out);
        self.busy_until.persist(out);
        self.seeks.persist(out);
        self.sequential_hits.persist(out);
    }

    /// Overlays a [`HardDiskDrive::snapshot_state`] image.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] on a capacity
    /// mismatch, or any decode error from a corrupt payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let capacity = r.u64()?;
        if capacity != self.capacity {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "disk capacity",
            });
        }
        let store = SparseMemory::restore(r)?;
        let head_pos = r.u64()?;
        let busy_until = SimTime::restore(r)?;
        let seeks = r.u64()?;
        let sequential_hits = r.u64()?;
        self.store = store;
        self.head_pos = head_pos;
        self.busy_until = busy_until;
        self.seeks = seeks;
        self.sequential_hits = sequential_hits;
        Ok(())
    }

    fn rotational_half_turn(&self) -> SimTime {
        // Half a revolution on average.
        let secs = 60.0 / self.cfg.rpm as f64 / 2.0;
        SimTime::from_ps((secs * 1e12) as u64)
    }

    fn mechanical_delay(&mut self, addr: u64) -> SimTime {
        if addr == self.head_pos {
            self.sequential_hits += 1;
            return SimTime::ZERO;
        }
        self.seeks += 1;
        let distance = addr.abs_diff(self.head_pos) as f64 / self.capacity as f64;
        let span = self.cfg.seek_max - self.cfg.seek_min;
        let seek = self.cfg.seek_min + SimTime::from_ps((span.as_ps() as f64 * distance) as u64);
        seek + self.rotational_half_turn()
    }

    fn transfer_time(&self, len: usize) -> SimTime {
        let secs = len as f64 / self.cfg.transfer_rate;
        SimTime::from_ps((secs * 1e12) as u64)
    }

    fn access(&mut self, now: SimTime, addr: u64, len: usize) -> SimTime {
        let start = now.max(self.busy_until);
        let mech = self.mechanical_delay(addr);
        let done = start + mech + self.transfer_time(len);
        self.head_pos = addr + len as u64;
        self.busy_until = done;
        done
    }
}

impl MemoryDevice for HardDiskDrive {
    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn kind(&self) -> MediaKind {
        MediaKind::HardDisk
    }

    fn read(&mut self, now: SimTime, addr: u64, buf: &mut [u8]) -> ReadResult {
        check_range(self.capacity, addr, buf.len());
        self.store.read(addr, buf);
        ReadResult {
            done: self.access(now, addr, buf.len()),
            outcome: ReadOutcome::Clean,
        }
    }

    fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        check_range(self.capacity, addr, data.len());
        self.store.write(addr, data);
        self.access(now, addr, data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdd() -> HardDiskDrive {
        HardDiskDrive::new(1_100_000_000_000, DiskConfig::sas_7200rpm())
    }

    #[test]
    fn functional_roundtrip() {
        let mut d = hdd();
        d.write(SimTime::ZERO, 1 << 30, b"gpfs log record");
        let mut buf = [0u8; 15];
        d.read(SimTime::from_secs(1), 1 << 30, &mut buf);
        assert_eq!(&buf, b"gpfs log record");
    }

    #[test]
    fn random_write_costs_milliseconds() {
        let mut d = hdd();
        let t = d.write(SimTime::ZERO, 550_000_000_000, &[0u8; 4096]);
        // Half-stroke seek (~11 ms) + rotation (~4.2 ms) + transfer.
        let ms = t.as_us_f64() / 1000.0;
        assert!((10.0..20.0).contains(&ms), "random write took {ms} ms");
    }

    #[test]
    fn sequential_writes_skip_mechanics() {
        let mut d = hdd();
        let t1 = d.write(SimTime::ZERO, 0, &[0u8; 4096]);
        let t2 = d.write(t1, 4096, &[0u8; 4096]);
        let seq_cost = t2 - t1;
        // Pure transfer: 4096 / 150 MB/s ≈ 27 µs.
        assert!(
            seq_cost < SimTime::from_us(30),
            "sequential cost {seq_cost}"
        );
        // Both writes were sequential: the head parks at LBA 0.
        assert_eq!(d.sequential_hits(), 2);
    }

    #[test]
    fn random_iops_is_about_75() {
        // This is the Table 4 anchor: ~75 IOPS for small random writes.
        let mut d = hdd();
        let mut now = SimTime::ZERO;
        let n = 200u64;
        let mut addr = 7_777u64;
        for _ in 0..n {
            // Deterministic pseudo-random addresses across the platter.
            addr = (addr
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % (d.capacity_bytes() - 4096);
            now = d.write(now, addr & !511, &[0u8; 4096]);
        }
        let iops = n as f64 / now.as_secs_f64();
        assert!((55.0..95.0).contains(&iops), "measured {iops} IOPS");
    }

    #[test]
    fn snapshot_restore_keeps_head_position() {
        let mut d = hdd();
        let t1 = d.write(SimTime::ZERO, 0, &[0u8; 4096]);
        let mut img = Vec::new();
        d.snapshot_state(&mut img);
        let mut fresh = hdd();
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        // The restored head parks where the original left it: the next
        // sequential write skips mechanics in both copies.
        let a = d.write(t1, 4096, &[1u8; 4096]);
        let b = fresh.write(t1, 4096, &[1u8; 4096]);
        assert_eq!(a, b);
        assert_eq!(d.sequential_hits(), fresh.sequential_hits());
    }

    #[test]
    fn longer_seeks_cost_more() {
        let mut d1 = hdd();
        let mut d2 = hdd();
        let near = d1.write(SimTime::ZERO, 10 << 20, &[0u8; 512]);
        let far = d2.write(SimTime::ZERO, 1_000_000_000_000, &[0u8; 512]);
        assert!(far > near);
    }
}
