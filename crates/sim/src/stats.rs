//! Measurement collectors: counters, latency statistics and histograms.
//!
//! Every experiment in the reproduction reports either a mean latency,
//! a throughput, or a distribution; these types are the single place
//! those are computed so that all crates aggregate identically.

use std::fmt;

use crate::time::SimTime;

/// A simple named monotonic counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Online latency statistics: count, sum, min, max and mean, without
/// storing samples.
///
/// # Example
///
/// ```
/// use contutto_sim::{LatencyStats, SimTime};
/// let mut s = LatencyStats::new();
/// s.record(SimTime::from_ns(10));
/// s.record(SimTime::from_ns(20));
/// assert_eq!(s.mean().as_ns(), 15);
/// assert_eq!(s.min().unwrap().as_ns(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    sum_ps: u128,
    min: Option<SimTime>,
    max: Option<SimTime>,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: SimTime) {
        self.count += 1;
        self.sum_ps += u128::from(sample.as_ps());
        self.min = Some(match self.min {
            Some(m) => m.min(sample),
            None => sample,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(sample),
            None => sample,
        });
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample; [`SimTime::ZERO`] when empty.
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ps((self.sum_ps / u128::from(self.count)) as u64)
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<SimTime> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<SimTime> {
        self.max
    }

    /// Total of all samples.
    pub fn sum(&self) -> SimTime {
        SimTime::from_ps(self.sum_ps.min(u128::from(u64::MAX)) as u64)
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        for m in [other.min, other.max].into_iter().flatten() {
            self.record_minmax(m);
        }
    }

    fn record_minmax(&mut self, sample: SimTime) {
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min.unwrap_or(SimTime::ZERO),
            self.max.unwrap_or(SimTime::ZERO),
        )
    }
}

/// A fixed-bucket linear histogram over `u64` values.
///
/// Used for IO-latency distributions in the FIO reproduction. Values
/// past the last bucket accumulate in an overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets each `bucket_width`
    /// wide, covering `[0, buckets*bucket_width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        assert!(buckets > 0, "bucket count must be nonzero");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `idx` (values in `[idx*w, (idx+1)*w)`).
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// The value at or below which `q` (0.0–1.0) of samples fall,
    /// reported as the upper edge of the containing bucket. `None` when
    /// empty or when the quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        None
    }
}

/// Computes throughput in operations per second from a count and an
/// elapsed simulated duration. Returns 0.0 for zero elapsed time.
pub fn ops_per_sec(ops: u64, elapsed: SimTime) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        ops as f64 / secs
    }
}

/// Computes throughput in bytes/second from a byte count and duration.
pub fn bytes_per_sec(bytes: u64, elapsed: SimTime) -> f64 {
    ops_per_sec(bytes, elapsed)
}

/// Formats a bytes/second figure with a binary-ish engineering unit
/// (GB/s meaning 1e9, matching the paper's units).
pub fn fmt_gbps(bytes_per_sec: f64) -> String {
    format!("{:.2} GB/s", bytes_per_sec / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn latency_stats_mean_min_max() {
        let mut s = LatencyStats::new();
        for ns in [5, 10, 15] {
            s.record(SimTime::from_ns(ns));
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), SimTime::from_ns(10));
        assert_eq!(s.min(), Some(SimTime::from_ns(5)));
        assert_eq!(s.max(), Some(SimTime::from_ns(15)));
        assert_eq!(s.sum(), SimTime::from_ns(30));
    }

    #[test]
    fn latency_stats_empty() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), SimTime::ZERO);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        a.record(SimTime::from_ns(10));
        let mut b = LatencyStats::new();
        b.record(SimTime::from_ns(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimTime::from_ns(20));
        assert_eq!(a.max(), Some(SimTime::from_ns(30)));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 4); // [0,40) + overflow
        for v in [0, 9, 10, 39, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new(1, 1).quantile(0.5), None);
    }

    #[test]
    fn throughput_helpers() {
        assert_eq!(ops_per_sec(1000, SimTime::from_secs(2)), 500.0);
        assert_eq!(ops_per_sec(1000, SimTime::ZERO), 0.0);
        assert_eq!(bytes_per_sec(2_000_000_000, SimTime::from_secs(1)), 2e9);
        assert_eq!(fmt_gbps(6.0e9), "6.00 GB/s");
    }
}
