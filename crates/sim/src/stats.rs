//! Measurement collectors: counters, latency statistics and histograms.
//!
//! Every experiment in the reproduction reports either a mean latency,
//! a throughput, or a distribution; these types are the single place
//! those are computed so that all crates aggregate identically.

use std::fmt;

use crate::snapshot::{Persist, RestoreError, SnapReader};
use crate::time::SimTime;

/// A simple named monotonic counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Online latency statistics: count, sum, min, max and mean, without
/// storing samples.
///
/// # Example
///
/// ```
/// use contutto_sim::{LatencyStats, SimTime};
/// let mut s = LatencyStats::new();
/// s.record(SimTime::from_ns(10));
/// s.record(SimTime::from_ns(20));
/// assert_eq!(s.mean().as_ns(), 15);
/// assert_eq!(s.min().unwrap().as_ns(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    sum_ps: u128,
    min: Option<SimTime>,
    max: Option<SimTime>,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: SimTime) {
        self.count += 1;
        self.sum_ps += u128::from(sample.as_ps());
        self.min = Some(match self.min {
            Some(m) => m.min(sample),
            None => sample,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(sample),
            None => sample,
        });
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample; [`SimTime::ZERO`] when empty.
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ps((self.sum_ps / u128::from(self.count)) as u64)
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<SimTime> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<SimTime> {
        self.max
    }

    /// Total of all samples.
    pub fn sum(&self) -> SimTime {
        SimTime::from_ps(self.sum_ps.min(u128::from(u64::MAX)) as u64)
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        for m in [other.min, other.max].into_iter().flatten() {
            self.record_minmax(m);
        }
    }

    fn record_minmax(&mut self, sample: SimTime) {
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min.unwrap_or(SimTime::ZERO),
            self.max.unwrap_or(SimTime::ZERO),
        )
    }
}

/// A fixed-bucket linear histogram over `u64` values.
///
/// Used for IO-latency distributions in the FIO reproduction. Values
/// past the last bucket accumulate in an overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets each `bucket_width`
    /// wide, covering `[0, buckets*bucket_width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        assert!(buckets > 0, "bucket count must be nonzero");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `idx` (values in `[idx*w, (idx+1)*w)`).
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// The value at or below which `q` (0.0–1.0) of samples fall,
    /// reported as the upper edge of the containing bucket. `None` when
    /// empty, when `q` is out of range, or when the quantile lands in
    /// the overflow bucket — use [`Histogram::quantile_outcome`] to
    /// tell those apart (the old `None`-for-everything behaviour masked
    /// overflow as "no data" and let callers report tails of 0).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        match self.quantile_outcome(q) {
            QuantileOutcome::Value(v) => Some(v),
            QuantileOutcome::Empty | QuantileOutcome::Overflow => None,
        }
    }

    /// The typed quantile: distinguishes "no samples" from "the
    /// quantile landed past the last finite bucket". `q = 0.0` reports
    /// the minimum — the *lower* edge of the first non-empty bucket —
    /// rather than clamping to the first-sample target and returning
    /// that bucket's upper edge.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_outcome(&self, q: f64) -> QuantileOutcome {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return QuantileOutcome::Empty;
        }
        if q == 0.0 {
            for (i, &c) in self.buckets.iter().enumerate() {
                if c > 0 {
                    return QuantileOutcome::Value(i as u64 * self.bucket_width);
                }
            }
            return QuantileOutcome::Overflow;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return QuantileOutcome::Value((i as u64 + 1) * self.bucket_width);
            }
        }
        QuantileOutcome::Overflow
    }
}

/// Result of a [`Histogram`] quantile query, distinguishing the two
/// states the old `Option` conflated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileOutcome {
    /// No samples recorded.
    Empty,
    /// The quantile landed in a finite bucket; the contained value.
    Value(u64),
    /// The quantile landed in the overflow bucket: the true value is
    /// at or above the histogram's range and was not captured.
    Overflow,
}

/// An HDR-style log-bucketed histogram over the full `u64` range:
/// log2 major buckets subdivided linearly, so recording can never
/// overflow and every quantile is reported with a bounded *relative*
/// error instead of the fixed absolute resolution (and silent
/// overflow bucket) of [`Histogram`].
///
/// Layout with `n = 2^sub_bits` linear slots:
///
/// * values `< n` are exact (one slot per value);
/// * values in `[2^m, 2^(m+1))` for `m >= sub_bits` land in one of
///   `n/2` slots of width `2^(m - sub_bits + 1)`, so the reported
///   upper edge overstates a contained value by at most a factor of
///   `1 + 2^(1 - sub_bits)` ([`LogHistogram::relative_error_bound`]).
///
/// Two histograms with the same `sub_bits` merge losslessly
/// (bucket-wise addition), and merging is associative and commutative
/// — shards can fold their histograms in any grouping and produce the
/// identical aggregate, which the deterministic campaigns assert by
/// direct equality.
///
/// # Example
///
/// ```
/// use contutto_sim::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [10, 20, 30, 5_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.0), 10);       // exact: below 2^sub_bits
/// let p99 = h.quantile(0.99);
/// assert!(p99 >= 5_000_000);             // never under-reported
/// assert!((p99 as f64) <= 5_000_000.0 * (1.0 + h.relative_error_bound()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    sub_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Default linear precision: 2^6 = 64 exact low slots, 32 sub-buckets
/// per octave, ≤ 3.125 % relative error on every reported quantile.
pub const LOG_HISTOGRAM_DEFAULT_SUB_BITS: u32 = 6;

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram at the default precision
    /// ([`LOG_HISTOGRAM_DEFAULT_SUB_BITS`]).
    pub fn new() -> Self {
        LogHistogram::with_sub_bits(LOG_HISTOGRAM_DEFAULT_SUB_BITS)
    }

    /// Creates an empty histogram with `2^sub_bits` linear slots per
    /// scale (relative error bound `2^(1 - sub_bits)`).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= sub_bits <= 16` (below 2 the error bound is
    /// useless; above 16 the table is pointlessly large).
    pub fn with_sub_bits(sub_bits: u32) -> Self {
        assert!(
            (2..=16).contains(&sub_bits),
            "sub_bits must be within 2..=16"
        );
        let n = 1usize << sub_bits;
        let majors = 64 - sub_bits as usize;
        LogHistogram {
            sub_bits,
            buckets: vec![0; n + majors * (n / 2)],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The configured precision exponent.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// The largest relative error any reported quantile can carry:
    /// `2^(1 - sub_bits)`.
    pub fn relative_error_bound(&self) -> f64 {
        f64::powi(2.0, 1 - self.sub_bits as i32)
    }

    fn index(&self, value: u64) -> usize {
        let n = 1u64 << self.sub_bits;
        if value < n {
            return value as usize;
        }
        let top = 63 - value.leading_zeros();
        let major = top - self.sub_bits + 1;
        let sub = (value >> major) - (n >> 1);
        (n + u64::from(major - 1) * (n >> 1) + sub) as usize
    }

    /// The upper edge (inclusive upper bound reported for quantiles)
    /// of bucket `idx`, saturating at `u64::MAX` for the top bucket.
    fn bucket_edge(&self, idx: usize) -> u64 {
        let n = 1u64 << self.sub_bits;
        if (idx as u64) < n {
            return idx as u64 + 1;
        }
        let rel = idx as u64 - n;
        let major = rel / (n >> 1) + 1;
        let sub = rel % (n >> 1);
        let edge = (u128::from((n >> 1) + sub) + 1) << major;
        edge.min(u128::from(u64::MAX)) as u64
    }

    /// Records one value. Total, never lossy: every `u64` has a bucket.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value` at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index(value);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (exact), if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (exact), if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all recorded values (exact sum, truncating division);
    /// 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// The value at or below which `q` (0.0–1.0) of samples fall.
    /// Reported as the containing bucket's upper edge, clamped into
    /// `[min, max]` of the recorded values, so the answer is exact at
    /// the extremes and never more than
    /// [`LogHistogram::relative_error_bound`] above the true quantile.
    /// Returns 0 when empty (the histogram records that state via
    /// [`LogHistogram::count`], never silently).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        if q == 0.0 {
            return self.min;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return self.bucket_edge(i).clamp(self.min, self.max);
            }
        }
        // Unreachable: every recorded value has a bucket. Keep a sane
        // answer rather than a panic in release builds.
        self.max
    }

    /// Merges another histogram into this one (bucket-wise addition).
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ — merging across layouts would
    /// silently degrade the error bound.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge LogHistograms of different precision"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} min={} p50={} p99={} p99.9={} max={}",
            self.count,
            self.min,
            self.quantile(0.5),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max,
        )
    }
}

impl Persist for Counter {
    fn persist(&self, out: &mut Vec<u8>) {
        self.value.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(Counter { value: r.u64()? })
    }
}

impl Persist for LatencyStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.count.persist(out);
        self.sum_ps.persist(out);
        self.min.persist(out);
        self.max.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(LatencyStats {
            count: r.u64()?,
            sum_ps: r.u128()?,
            min: Option::restore(r)?,
            max: Option::restore(r)?,
        })
    }
}

impl Persist for Histogram {
    fn persist(&self, out: &mut Vec<u8>) {
        self.bucket_width.persist(out);
        self.buckets.persist(out);
        self.overflow.persist(out);
        self.count.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let bucket_width = r.u64()?;
        let buckets = Vec::restore(r)?;
        if bucket_width == 0 || buckets.is_empty() {
            return Err(RestoreError::Malformed {
                context: "histogram shape",
            });
        }
        Ok(Histogram {
            bucket_width,
            buckets,
            overflow: r.u64()?,
            count: r.u64()?,
        })
    }
}

impl Persist for LogHistogram {
    fn persist(&self, out: &mut Vec<u8>) {
        self.sub_bits.persist(out);
        self.buckets.persist(out);
        self.count.persist(out);
        self.sum.persist(out);
        self.min.persist(out);
        self.max.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let sub_bits = r.u32()?;
        if !(2..=16).contains(&sub_bits) {
            return Err(RestoreError::Malformed {
                context: "log-histogram precision",
            });
        }
        let buckets: Vec<u64> = Vec::restore(r)?;
        let n = 1usize << sub_bits;
        let majors = 64 - sub_bits as usize;
        if buckets.len() != n + majors * (n / 2) {
            return Err(RestoreError::Malformed {
                context: "log-histogram bucket count",
            });
        }
        Ok(LogHistogram {
            sub_bits,
            buckets,
            count: r.u64()?,
            sum: r.u128()?,
            min: r.u64()?,
            max: r.u64()?,
        })
    }
}

/// Computes throughput in operations per second from a count and an
/// elapsed simulated duration. Returns 0.0 for zero elapsed time.
pub fn ops_per_sec(ops: u64, elapsed: SimTime) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        ops as f64 / secs
    }
}

/// Computes throughput in bytes/second from a byte count and duration.
pub fn bytes_per_sec(bytes: u64, elapsed: SimTime) -> f64 {
    ops_per_sec(bytes, elapsed)
}

/// Formats a bytes/second figure with a binary-ish engineering unit
/// (GB/s meaning 1e9, matching the paper's units).
pub fn fmt_gbps(bytes_per_sec: f64) -> String {
    format!("{:.2} GB/s", bytes_per_sec / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn latency_stats_mean_min_max() {
        let mut s = LatencyStats::new();
        for ns in [5, 10, 15] {
            s.record(SimTime::from_ns(ns));
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), SimTime::from_ns(10));
        assert_eq!(s.min(), Some(SimTime::from_ns(5)));
        assert_eq!(s.max(), Some(SimTime::from_ns(15)));
        assert_eq!(s.sum(), SimTime::from_ns(30));
    }

    #[test]
    fn latency_stats_empty() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), SimTime::ZERO);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        a.record(SimTime::from_ns(10));
        let mut b = LatencyStats::new();
        b.record(SimTime::from_ns(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimTime::from_ns(20));
        assert_eq!(a.max(), Some(SimTime::from_ns(30)));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 4); // [0,40) + overflow
        for v in [0, 9, 10, 39, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new(1, 1).quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_zero_is_minimum_edge() {
        let mut h = Histogram::new(10, 4);
        h.record(25); // bucket 2: [20, 30)
        h.record(35);
        // Lower edge of the first non-empty bucket — not the upper edge
        // the old clamp-to-one-sample behaviour produced.
        assert_eq!(h.quantile_outcome(0.0), QuantileOutcome::Value(20));
        assert_eq!(h.quantile(0.0), Some(20));
    }

    #[test]
    fn histogram_quantile_distinguishes_empty_from_overflow() {
        let empty = Histogram::new(1, 4);
        assert_eq!(empty.quantile_outcome(0.99), QuantileOutcome::Empty);

        let mut overflowed = Histogram::new(1, 4); // covers [0, 4)
        overflowed.record(1);
        overflowed.record(1000); // overflow
                                 // p99 lands in the overflow bucket: typed, not a silent None.
        assert_eq!(overflowed.quantile_outcome(0.99), QuantileOutcome::Overflow);
        assert_eq!(overflowed.quantile(0.99), None);
        // p50 is still finite.
        assert_eq!(overflowed.quantile_outcome(0.5), QuantileOutcome::Value(2));
    }

    #[test]
    fn log_histogram_exact_below_linear_range() {
        let mut h = LogHistogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        // Every value below 2^sub_bits has its own bucket: quantiles
        // are exact (upper edge = value + 1, clamped by max).
        assert_eq!(h.quantile(0.5), 32);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn log_histogram_never_overflows() {
        let mut h = LogHistogram::new();
        for v in [0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn log_histogram_empty_reports_zero_not_garbage() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn log_histogram_relative_error_bound_holds() {
        // Property: for a deterministic pseudo-random sample set, every
        // reported quantile lies in [true_quantile, true_quantile * (1
        // + bound)] where the true quantile comes from the sorted data.
        let mut h = LogHistogram::new();
        let mut samples = Vec::new();
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..4096 {
            // xorshift-style scramble; spans many octaves via masking.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x >> (x % 48);
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let bound = h.relative_error_bound();
        for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0] {
            let reported = h.quantile(q);
            let rank = ((q * samples.len() as f64).ceil().max(1.0) as usize).min(samples.len()) - 1;
            let truth = samples[rank];
            assert!(
                reported >= truth,
                "q={q}: reported {reported} under-reports true {truth}"
            );
            assert!(
                reported as f64 <= truth as f64 * (1.0 + bound) + 1.0,
                "q={q}: reported {reported} exceeds error bound over {truth}"
            );
        }
    }

    #[test]
    fn log_histogram_merge_is_associative_and_commutative() {
        let mut parts = Vec::new();
        let mut x: u64 = 42;
        for p in 0..3u64 {
            let mut h = LogHistogram::new();
            for i in 0..500u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(p + i);
                h.record(x >> (x % 50));
            }
            parts.push(h);
        }
        // (a ∪ b) ∪ c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a ∪ (b ∪ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        // c ∪ b ∪ a
        let mut rev = parts[2].clone();
        rev.merge(&parts[1]);
        rev.merge(&parts[0]);
        assert_eq!(left, right);
        assert_eq!(left, rev);
        assert_eq!(left.count(), 1500);
    }

    #[test]
    fn log_histogram_merge_equals_single_recording() {
        // Merging shards is lossless: identical to recording the union
        // into one histogram, asserted by direct structural equality.
        let values = [3u64, 64, 100, 5_000, 1 << 40, u64::MAX];
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn log_histogram_merge_rejects_mixed_precision() {
        let mut a = LogHistogram::with_sub_bits(6);
        let b = LogHistogram::with_sub_bits(7);
        a.merge(&b);
    }

    #[test]
    fn log_histogram_bucket_math_round_trips() {
        // Every recorded value must land in a bucket whose edge bounds
        // it: lower_edge <= v < upper edge is implied by idx monotonic
        // in v and edge(idx) > v >= edge(idx - 1).
        let h = LogHistogram::new();
        let mut probe = vec![0u64, 1, 63, 64, 65, 127, 128, 129];
        for shift in 7..64 {
            probe.push(1u64 << shift);
            probe.push((1u64 << shift) - 1);
            probe.push((1u64 << shift) + 1);
        }
        probe.push(u64::MAX);
        let mut last_idx = 0usize;
        let mut sorted = probe.clone();
        sorted.sort_unstable();
        for v in sorted {
            let idx = h.index(v);
            assert!(idx >= last_idx, "index not monotone at {v}");
            assert!(idx < h.buckets.len(), "index out of range at {v}");
            assert!(h.bucket_edge(idx) >= v.max(1), "edge below value at {v}");
            last_idx = idx;
        }
    }

    #[test]
    fn throughput_helpers() {
        assert_eq!(ops_per_sec(1000, SimTime::from_secs(2)), 500.0);
        assert_eq!(ops_per_sec(1000, SimTime::ZERO), 0.0);
        assert_eq!(bytes_per_sec(2_000_000_000, SimTime::from_secs(1)), 2e9);
        assert_eq!(fmt_gbps(6.0e9), "6.00 GB/s");
    }
}
