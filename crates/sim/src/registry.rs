//! A hierarchical registry aggregating the [`stats`](crate::stats)
//! collectors under dotted names.
//!
//! Layers publish their counters, latency collectors and histograms
//! under names like `dmi.host.frames_tx` or `centaur.cache.hits`; the
//! registry keeps them in a sorted map so that rendering order — and
//! therefore the rendered snapshot text — is deterministic. Paper-table
//! reproduction (`tables.rs`) and test diagnostics read the same
//! snapshot.
//!
//! # Example
//!
//! ```
//! use contutto_sim::{MetricsRegistry, SimTime};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter_mut("dmi.host.frames_tx").add(128);
//! reg.latency_mut("channel.command_latency")
//!     .record(SimTime::from_ns(640));
//! assert_eq!(reg.counter("dmi.host.frames_tx"), 128);
//! assert!(reg.render().contains("dmi.host.frames_tx"));
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::snapshot::{Persist, RestoreError, SnapReader};
use crate::stats::{Counter, Histogram, LatencyStats, LogHistogram, QuantileOutcome};

/// One registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    Counter(Counter),
    Latency(LatencyStats),
    Histogram(Histogram),
    LogHistogram(LogHistogram),
}

fn fmt_outcome(outcome: QuantileOutcome) -> String {
    match outcome {
        QuantileOutcome::Empty => "-".into(),
        QuantileOutcome::Value(v) => v.to_string(),
        QuantileOutcome::Overflow => "overflow".into(),
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Counter(c) => write!(f, "{c}"),
            Metric::Latency(l) => write!(f, "{l}"),
            Metric::Histogram(h) => write!(
                f,
                "histogram n={} overflow={} p50={} p99={}",
                h.count(),
                h.overflow(),
                fmt_outcome(h.quantile_outcome(0.5)),
                fmt_outcome(h.quantile_outcome(0.99)),
            ),
            Metric::LogHistogram(h) => write!(f, "loghist {h}"),
        }
    }
}

/// A sorted map of named metrics with deterministic rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The counter under `name`, created zeroed on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter_mut(&mut self, name: &str) -> &mut Counter {
        let metric = self
            .metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::new()));
        match metric {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Sets the counter under `name` to an absolute value, replacing any
    /// previous value. The usual way to publish an already-maintained
    /// stat into a snapshot.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        let mut c = Counter::new();
        c.add(value);
        self.metrics.insert(name.to_owned(), Metric::Counter(c));
    }

    /// The latency collector under `name`, created empty on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn latency_mut(&mut self, name: &str) -> &mut LatencyStats {
        let metric = self
            .metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Latency(LatencyStats::new()));
        match metric {
            Metric::Latency(l) => l,
            other => panic!("metric {name:?} is not a latency collector: {other:?}"),
        }
    }

    /// Publishes a copy of an existing latency collector under `name`.
    pub fn set_latency(&mut self, name: &str, stats: &LatencyStats) {
        self.metrics
            .insert(name.to_owned(), Metric::Latency(stats.clone()));
    }

    /// Publishes a copy of an existing histogram under `name`.
    pub fn set_histogram(&mut self, name: &str, histogram: &Histogram) {
        self.metrics
            .insert(name.to_owned(), Metric::Histogram(histogram.clone()));
    }

    /// Publishes a copy of an existing log-bucketed histogram under
    /// `name`.
    pub fn set_log_histogram(&mut self, name: &str, histogram: &LogHistogram) {
        self.metrics
            .insert(name.to_owned(), Metric::LogHistogram(histogram.clone()));
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// The value of the counter under `name`, or 0 when absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a non-counter metric.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            None => 0,
            Some(Metric::Counter(c)) => c.get(),
            Some(other) => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Iterates metrics in sorted-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Metrics under a dotted prefix (e.g. `"dmi."`), sorted.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Metric)> + 'a {
        self.iter()
            .filter(move |(name, _)| name.starts_with(prefix))
    }

    /// Merges another registry into this one: counters, latency
    /// collectors and log-histograms (of matching precision)
    /// accumulate; linear histograms and kind conflicts are replaced
    /// by `other`'s entry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in other.iter() {
            match (self.metrics.get_mut(name), metric) {
                (Some(Metric::Counter(a)), Metric::Counter(b)) => a.add(b.get()),
                (Some(Metric::Latency(a)), Metric::Latency(b)) => a.merge(b),
                (Some(Metric::LogHistogram(a)), Metric::LogHistogram(b))
                    if a.sub_bits() == b.sub_bits() =>
                {
                    a.merge(b);
                }
                _ => {
                    self.metrics.insert(name.to_owned(), metric.clone());
                }
            }
        }
    }

    /// Renders every metric, one `name = value` line in sorted order.
    /// Byte-identical across same-seed runs.
    pub fn render(&self) -> String {
        let width = self.metrics.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            out.push_str(&format!("{name:<width$} = {metric}\n"));
        }
        out
    }
}

impl Persist for Metric {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            Metric::Counter(c) => {
                out.push(0);
                c.persist(out);
            }
            Metric::Latency(l) => {
                out.push(1);
                l.persist(out);
            }
            Metric::Histogram(h) => {
                out.push(2);
                h.persist(out);
            }
            Metric::LogHistogram(h) => {
                out.push(3);
                h.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(match r.u8()? {
            0 => Metric::Counter(Counter::restore(r)?),
            1 => Metric::Latency(LatencyStats::restore(r)?),
            2 => Metric::Histogram(Histogram::restore(r)?),
            3 => Metric::LogHistogram(LogHistogram::restore(r)?),
            _ => {
                return Err(RestoreError::Malformed {
                    context: "Metric discriminant",
                })
            }
        })
    }
}

impl Persist for MetricsRegistry {
    fn persist(&self, out: &mut Vec<u8>) {
        self.metrics.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(MetricsRegistry {
            metrics: BTreeMap::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn counters_accumulate_in_place() {
        let mut reg = MetricsRegistry::new();
        reg.counter_mut("a.b").incr();
        reg.counter_mut("a.b").add(4);
        assert_eq!(reg.counter("a.b"), 5);
        assert_eq!(reg.counter("missing"), 0);
        reg.set_counter("a.b", 2);
        assert_eq!(reg.counter("a.b"), 2);
    }

    #[test]
    fn latency_and_histogram_publish() {
        let mut reg = MetricsRegistry::new();
        reg.latency_mut("lat").record(SimTime::from_ns(10));
        let mut h = Histogram::new(10, 4);
        h.record(5);
        reg.set_histogram("hist", &h);
        assert_eq!(reg.len(), 2);
        match reg.get("lat").unwrap() {
            Metric::Latency(l) => assert_eq!(l.count(), 1),
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(reg.render().contains("hist"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.latency_mut("x");
        reg.counter_mut("x");
    }

    #[test]
    fn render_is_sorted_and_aligned() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("zz.last", 1);
        reg.set_counter("aa.first", 2);
        reg.set_counter("mm.middle", 3);
        let text = reg.render();
        let names: Vec<&str> = text
            .lines()
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        assert_eq!(names, vec!["aa.first", "mm.middle", "zz.last"]);
        // Two renders of equal registries are byte-identical.
        assert_eq!(text, reg.clone().render());
    }

    #[test]
    fn prefix_filter() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("dmi.host.frames_tx", 10);
        reg.set_counter("dmi.buffer.frames_tx", 20);
        reg.set_counter("centaur.reads", 30);
        assert_eq!(reg.with_prefix("dmi.").count(), 2);
        assert_eq!(reg.with_prefix("centaur.").count(), 1);
    }

    #[test]
    fn log_histograms_publish_and_merge() {
        let mut a = MetricsRegistry::new();
        let mut ha = LogHistogram::new();
        ha.record(100);
        a.set_log_histogram("traffic.latency", &ha);
        let mut b = MetricsRegistry::new();
        let mut hb = LogHistogram::new();
        hb.record(1_000_000);
        b.set_log_histogram("traffic.latency", &hb);
        a.merge(&b);
        match a.get("traffic.latency").unwrap() {
            Metric::LogHistogram(h) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.min(), Some(100));
                assert_eq!(h.max(), Some(1_000_000));
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(a.render().contains("loghist"));
    }

    #[test]
    fn histogram_render_shows_overflow_tail() {
        let mut reg = MetricsRegistry::new();
        let mut h = Histogram::new(1, 4);
        h.record(1);
        h.record(1000);
        reg.set_histogram("hist", &h);
        // The tail landed past the last bucket: rendered as such, not
        // masked as missing data.
        assert!(reg.render().contains("p99=overflow"), "{}", reg.render());
    }

    #[test]
    fn merge_accumulates_matching_kinds() {
        let mut a = MetricsRegistry::new();
        a.set_counter("c", 1);
        a.latency_mut("l").record(SimTime::from_ns(10));
        let mut b = MetricsRegistry::new();
        b.set_counter("c", 2);
        b.latency_mut("l").record(SimTime::from_ns(30));
        b.set_counter("only_b", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        match a.get("l").unwrap() {
            Metric::Latency(l) => {
                assert_eq!(l.count(), 2);
                assert_eq!(l.mean(), SimTime::from_ns(20));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
