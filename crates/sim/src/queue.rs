//! Latency/pipeline queues.
//!
//! [`DelayQueue`] models a wire, FIFO or fixed-depth pipeline: items go
//! in stamped with the time they become visible at the output, and pop
//! out only once the simulation clock has reached that time. It is the
//! basic building block for modelling the DMI link, clock-domain
//! crossings and the latency-knob delay modules of paper §4.1.

use std::collections::VecDeque;

use crate::snapshot::{Persist, RestoreError, SnapReader};
use crate::time::SimTime;

/// A FIFO whose items become available a fixed or per-item delay after
/// insertion, with optional bounded capacity (for back-pressure).
///
/// # Example
///
/// ```
/// use contutto_sim::{DelayQueue, SimTime};
///
/// let mut wire: DelayQueue<&str> = DelayQueue::with_latency(SimTime::from_ns(2));
/// wire.push(SimTime::from_ns(0), "frame");
/// assert_eq!(wire.pop_ready(SimTime::from_ns(1)), None);       // still in flight
/// assert_eq!(wire.pop_ready(SimTime::from_ns(2)), Some("frame"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    items: VecDeque<(SimTime, T)>,
    latency: SimTime,
    capacity: Option<usize>,
}

impl<T> DelayQueue<T> {
    /// Creates an unbounded queue with the given fixed latency.
    pub fn with_latency(latency: SimTime) -> Self {
        DelayQueue {
            items: VecDeque::new(),
            latency,
            capacity: None,
        }
    }

    /// Creates a bounded queue: `push` fails once `capacity` items are
    /// in flight, modelling back-pressure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(latency: SimTime, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        DelayQueue {
            items: VecDeque::new(),
            latency,
            capacity: Some(capacity),
        }
    }

    /// The fixed latency applied to each pushed item.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Inserts an item at time `now`; it becomes poppable at
    /// `now + latency`.
    ///
    /// Returns `Err` with the item if the queue is full.
    pub fn push(&mut self, now: SimTime, item: T) -> Result<(), T> {
        if let Some(cap) = self.capacity {
            if self.items.len() >= cap {
                return Err(item);
            }
        }
        let ready = now + self.latency;
        debug_assert!(self.items.back().is_none_or(|(t, _)| *t <= ready));
        self.items.push_back((ready, item));
        Ok(())
    }

    /// Inserts an item that becomes poppable at an explicit time,
    /// overriding the fixed latency. `ready_at` must not be earlier
    /// than the readiness of the last queued item (FIFO order).
    ///
    /// # Panics
    ///
    /// Panics if FIFO readiness ordering would be violated.
    pub fn push_at(&mut self, ready_at: SimTime, item: T) -> Result<(), T> {
        if let Some(cap) = self.capacity {
            if self.items.len() >= cap {
                return Err(item);
            }
        }
        if let Some((t, _)) = self.items.back() {
            assert!(*t <= ready_at, "push_at would reorder the FIFO");
        }
        self.items.push_back((ready_at, item));
        Ok(())
    }

    /// Pops the front item if it is ready at time `now`.
    pub fn pop_ready(&mut self, now: SimTime) -> Option<T> {
        if let Some((ready, _)) = self.items.front() {
            if *ready <= now {
                return self.items.pop_front().map(|(_, item)| item);
            }
        }
        None
    }

    /// Peeks at the front item and its readiness time.
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        self.items.front().map(|(t, item)| (*t, item))
    }

    /// Time at which the front item becomes ready, if any.
    pub fn next_ready_time(&self) -> Option<SimTime> {
        self.items.front().map(|(t, _)| *t)
    }

    /// Number of items in flight.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether a bounded queue is at capacity (always `false` when
    /// unbounded).
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.items.len() >= c)
    }

    /// Drops all in-flight items (e.g. a fence during replay).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates over `(ready_time, item)` pairs front to back.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.items.iter().map(|(t, item)| (*t, item))
    }
}

impl<T: Persist> Persist for DelayQueue<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        self.latency.persist(out);
        self.capacity.persist(out);
        self.items.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let latency = SimTime::restore(r)?;
        let capacity = Option::<usize>::restore(r)?;
        let items: VecDeque<(SimTime, T)> = VecDeque::restore(r)?;
        if capacity == Some(0) {
            return Err(RestoreError::Malformed {
                context: "delay queue capacity",
            });
        }
        if capacity.is_some_and(|c| items.len() > c)
            || items
                .iter()
                .zip(items.iter().skip(1))
                .any(|((a, _), (b, _))| a > b)
        {
            return Err(RestoreError::Malformed {
                context: "delay queue ordering",
            });
        }
        Ok(DelayQueue {
            items,
            latency,
            capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_latency() {
        let mut q = DelayQueue::with_latency(SimTime::from_ns(10));
        q.push(SimTime::from_ns(5), 1).unwrap();
        assert_eq!(q.pop_ready(SimTime::from_ns(14)), None);
        assert_eq!(q.pop_ready(SimTime::from_ns(15)), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DelayQueue::with_latency(SimTime::from_ns(1));
        for i in 0..5 {
            q.push(SimTime::from_ns(i), i).unwrap();
        }
        let mut out = Vec::new();
        while let Some(v) = q.pop_ready(SimTime::from_ns(100)) {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_back_pressure() {
        let mut q = DelayQueue::bounded(SimTime::ZERO, 2);
        q.push(SimTime::ZERO, 'a').unwrap();
        q.push(SimTime::ZERO, 'b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(SimTime::ZERO, 'c'), Err('c'));
        q.pop_ready(SimTime::ZERO).unwrap();
        assert!(!q.is_full());
        q.push(SimTime::ZERO, 'c').unwrap();
    }

    #[test]
    fn push_at_explicit_time() {
        let mut q = DelayQueue::with_latency(SimTime::from_ns(1));
        q.push_at(SimTime::from_ns(50), "late").unwrap();
        assert_eq!(q.next_ready_time(), Some(SimTime::from_ns(50)));
        assert_eq!(q.pop_ready(SimTime::from_ns(49)), None);
        assert_eq!(q.pop_ready(SimTime::from_ns(50)), Some("late"));
    }

    #[test]
    #[should_panic(expected = "reorder")]
    fn push_at_rejects_reordering() {
        let mut q = DelayQueue::with_latency(SimTime::ZERO);
        q.push_at(SimTime::from_ns(50), 1).unwrap();
        q.push_at(SimTime::from_ns(10), 2).unwrap();
    }

    #[test]
    fn clear_empties() {
        let mut q = DelayQueue::with_latency(SimTime::ZERO);
        q.push(SimTime::ZERO, 1).unwrap();
        q.push(SimTime::ZERO, 2).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_and_iter() {
        let mut q = DelayQueue::with_latency(SimTime::from_ns(3));
        q.push(SimTime::ZERO, 'x').unwrap();
        q.push(SimTime::from_ns(1), 'y').unwrap();
        let (t, v) = q.peek().unwrap();
        assert_eq!((t, *v), (SimTime::from_ns(3), 'x'));
        let all: Vec<_> = q.iter().map(|(_, v)| *v).collect();
        assert_eq!(all, vec!['x', 'y']);
    }
}
