//! Deterministic structured protocol tracing.
//!
//! Every layer of the protocol stack (DMI endpoints, the POWER8
//! channel, the Centaur and ConTutto buffers) reports structured
//! [`TraceEvent`]s through a shared [`Tracer`] handle. Events are
//! stamped with the simulation clock, stored in a bounded ring, and
//! folded into a running FNV-1a fingerprint, so that:
//!
//! * a failing integration test can be diagnosed by diffing two rendered
//!   traces rather than by re-running under a debugger, and
//! * determinism is cheap to assert — two same-seed runs must produce
//!   identical fingerprints even when the ring has wrapped.
//!
//! Tracing is off by default ([`Tracer::off`]) and every recording call
//! is a no-op in that state, so instrumented hot paths cost one branch
//! when observability is not wanted.
//!
//! # Example
//!
//! ```
//! use contutto_sim::{SimTime, TraceEvent, Tracer};
//!
//! let tracer = Tracer::ring(1024);
//! tracer.advance(SimTime::from_ns(8));
//! tracer.record(TraceEvent::TagAcquire { tag: 3 });
//! assert_eq!(tracer.total_recorded(), 1);
//! assert!(tracer.render().contains("tag-acquire"));
//! ```

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::snapshot::Persist;
use crate::time::SimTime;

/// Direction a DMI frame travels: host→buffer is downstream, buffer→host
/// is upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    Downstream,
    Upstream,
}

impl LinkDir {
    /// The opposite direction.
    pub fn opposite(self) -> LinkDir {
        match self {
            LinkDir::Downstream => LinkDir::Upstream,
            LinkDir::Upstream => LinkDir::Downstream,
        }
    }
}

impl fmt::Display for LinkDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LinkDir::Downstream => "down",
            LinkDir::Upstream => "up",
        })
    }
}

/// One structured observability event, reported by whichever layer
/// observed it. `dir` is always the direction the frame in question is
/// travelling on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An endpoint put a frame on the wire. `replayed` marks frames
    /// re-sent from the replay buffer (including the freeze-window
    /// duplicates of the ConTutto workaround).
    FrameTx {
        dir: LinkDir,
        seq: u8,
        replayed: bool,
    },
    /// An endpoint accepted a frame (CRC and sequence both good).
    FrameRx { dir: LinkDir, seq: u8 },
    /// A received frame failed its CRC check.
    CrcFailure { dir: LinkDir },
    /// A received frame carried an unexpected sequence number.
    SeqGap { dir: LinkDir, expected: u8, got: u8 },
    /// A transmitter's ACK timeout expired with frames outstanding; it
    /// will rewind and replay.
    ReplayTrigger { dir: LinkDir, unacked: usize },
    /// The transmitter rewound and will re-send `frames` frames starting
    /// at `from_seq`.
    ReplayRewind {
        dir: LinkDir,
        from_seq: u8,
        frames: usize,
    },
    /// A command tag was taken from the pool.
    TagAcquire { tag: u8 },
    /// A command completed and its tag returned to the pool.
    TagRelease { tag: u8 },
    /// A submit found no free tag (pool exhausted).
    TagExhausted,
    /// A blocking wait on a tag exceeded its deadline.
    TagTimeout { tag: u8 },
    /// A timed-out command's tag was returned to the pool outside the
    /// normal done path (timeout reclamation).
    TagReclaimed { tag: u8 },
    /// A timed-out command was rescheduled for another attempt after a
    /// sim-time backoff.
    RetryScheduled {
        tag: u8,
        attempt: u32,
        backoff_ps: u64,
    },
    /// The channel escalated persistent hangs to a full link retrain;
    /// `count` is the channel's lifetime retrain total.
    LinkRetrain { count: u64 },
    /// A memory-buffer device port serviced a read.
    DeviceRead { addr: u64 },
    /// A memory-buffer device port serviced a write.
    DeviceWrite { addr: u64 },
    /// A buffer-side cache lookup hit.
    CacheHit { addr: u64 },
    /// A buffer-side cache lookup missed.
    CacheMiss { addr: u64 },
    /// Media ECC corrected `bits` flipped bits on a demand read.
    EccCorrected { addr: u64, bits: u32 },
    /// Media ECC detected an uncorrectable error; the line is poisoned.
    EccUncorrectable { addr: u64 },
    /// A poisoned line crossed the channel and reached the host as a
    /// typed error instead of silent data.
    PoisonDelivered { addr: u64 },
    /// A patrol-scrub pass over one device finished.
    ScrubPass { corrected: u64, uncorrectable: u64 },
    /// A page crossed the correctable-error threshold and was retired.
    PageRetired { addr: u64 },
    /// Power returned before the NVDIMM save engine finished; the flash
    /// image is torn and must not be restored.
    SaveTorn { restored_ps: u64, save_done_ps: u64 },
    /// A channel was drained of in-flight tags ahead of a failover;
    /// `clean` is false when the link had to be reset to reclaim tags.
    ChannelQuiesced { slot: usize, clean: bool },
    /// The background evacuation engine copied another batch of lines
    /// from a deconfigured channel to its spare.
    MigrationProgress {
        from: usize,
        to: usize,
        migrated: u64,
        remaining: u64,
    },
    /// The memory map was rebound: the physical region formerly served
    /// by `from` is now served by `to`.
    ChannelFailedOver {
        from: usize,
        to: usize,
        mirrored: bool,
    },
    /// A demand read failed on the mirrored primary and was served from
    /// the mirror copy instead.
    MirrorReadFallback { addr: u64 },
    /// A WriteData frame arrived for an idle/unknown tag (late delivery
    /// after a retrain, or decode aliasing) and was dropped.
    FrameOrphaned { tag: u8 },
    /// The FSP asserted an early-power-off warning; the flush cascade
    /// starts.
    EpowAsserted,
    /// One stage of the EPOW flush cascade completed (1 = core caches,
    /// 2 = buffer caches/write pipelines, 3 = in-flight DMI drain,
    /// 4 = NVDIMM save engines confirmed armed).
    EpowFlushStage { stage: u8, charged_nj: u64 },
    /// The system holdup energy ran out before the cascade finished;
    /// `stage` is the first stage that was skipped.
    EpowHoldupExhausted { stage: u8 },
    /// Power was cut: all volatile state is gone.
    PowerCut,
    /// An NVDIMM save engine exhausted its supercap mid-save; the flash
    /// image is truncated at `saved_bytes` of `capacity_bytes`.
    SaveEnergyExhausted {
        saved_bytes: u64,
        capacity_bytes: u64,
    },
    /// Power returned; the system is rebooting.
    PowerRestored,
    /// A non-volatile buffer restored its media image intact after the
    /// power cut.
    NvdimmRestored { slot: usize },
    /// A non-volatile buffer could not restore its image (torn save,
    /// corrupt image, or disarmed supercap); the loss is reported as a
    /// machine check, never silently.
    NvdimmRestoreFailed { slot: usize },
    /// A read stuck past the hedge threshold issued a duplicate to the
    /// mirror; first completion wins, the loser is cancelled.
    HedgeIssued { addr: u64 },
    /// A per-channel circuit breaker changed state (`open` = tripped,
    /// `!open` = closed again after successful probes).
    BreakerTransition { slot: usize, open: bool },
    /// An event carried across a snapshot/restore boundary as its
    /// canonical rendered text (everything after the timestamp
    /// prefix). Re-rendering a restored ring is byte-identical to the
    /// original because this variant displays the text verbatim.
    Restored { line: String },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceEvent::*;
        match self {
            FrameTx { dir, seq, replayed } => {
                write!(f, "frame-tx dir={dir} seq={seq} replayed={replayed}")
            }
            FrameRx { dir, seq } => write!(f, "frame-rx dir={dir} seq={seq}"),
            CrcFailure { dir } => write!(f, "crc-failure dir={dir}"),
            SeqGap { dir, expected, got } => {
                write!(f, "seq-gap dir={dir} expected={expected} got={got}")
            }
            ReplayTrigger { dir, unacked } => {
                write!(f, "replay-trigger dir={dir} unacked={unacked}")
            }
            ReplayRewind {
                dir,
                from_seq,
                frames,
            } => {
                write!(f, "replay-rewind dir={dir} from={from_seq} frames={frames}")
            }
            TagAcquire { tag } => write!(f, "tag-acquire tag={tag}"),
            TagRelease { tag } => write!(f, "tag-release tag={tag}"),
            TagExhausted => write!(f, "tag-exhausted"),
            TagTimeout { tag } => write!(f, "tag-timeout tag={tag}"),
            TagReclaimed { tag } => write!(f, "tag-reclaimed tag={tag}"),
            RetryScheduled {
                tag,
                attempt,
                backoff_ps,
            } => write!(
                f,
                "retry-scheduled tag={tag} attempt={attempt} backoff_ps={backoff_ps}"
            ),
            LinkRetrain { count } => write!(f, "link-retrain count={count}"),
            DeviceRead { addr } => write!(f, "device-read addr={addr:#x}"),
            DeviceWrite { addr } => write!(f, "device-write addr={addr:#x}"),
            CacheHit { addr } => write!(f, "cache-hit addr={addr:#x}"),
            CacheMiss { addr } => write!(f, "cache-miss addr={addr:#x}"),
            EccCorrected { addr, bits } => write!(f, "ecc-corrected addr={addr:#x} bits={bits}"),
            EccUncorrectable { addr } => write!(f, "ecc-uncorrectable addr={addr:#x}"),
            PoisonDelivered { addr } => write!(f, "poison-delivered addr={addr:#x}"),
            ScrubPass {
                corrected,
                uncorrectable,
            } => write!(
                f,
                "scrub-pass corrected={corrected} uncorrectable={uncorrectable}"
            ),
            PageRetired { addr } => write!(f, "page-retired addr={addr:#x}"),
            SaveTorn {
                restored_ps,
                save_done_ps,
            } => write!(
                f,
                "save-torn restored_ps={restored_ps} save_done_ps={save_done_ps}"
            ),
            ChannelQuiesced { slot, clean } => {
                write!(f, "channel-quiesced slot={slot} clean={clean}")
            }
            MigrationProgress {
                from,
                to,
                migrated,
                remaining,
            } => write!(
                f,
                "migration-progress from={from} to={to} migrated={migrated} remaining={remaining}"
            ),
            ChannelFailedOver { from, to, mirrored } => {
                write!(
                    f,
                    "channel-failed-over from={from} to={to} mirrored={mirrored}"
                )
            }
            MirrorReadFallback { addr } => write!(f, "mirror-read-fallback addr={addr:#x}"),
            FrameOrphaned { tag } => write!(f, "frame-orphaned tag={tag}"),
            EpowAsserted => write!(f, "epow-asserted"),
            EpowFlushStage { stage, charged_nj } => {
                write!(f, "epow-flush-stage stage={stage} charged_nj={charged_nj}")
            }
            EpowHoldupExhausted { stage } => write!(f, "epow-holdup-exhausted stage={stage}"),
            PowerCut => write!(f, "power-cut"),
            SaveEnergyExhausted {
                saved_bytes,
                capacity_bytes,
            } => write!(
                f,
                "save-energy-exhausted saved_bytes={saved_bytes} capacity_bytes={capacity_bytes}"
            ),
            PowerRestored => write!(f, "power-restored"),
            NvdimmRestored { slot } => write!(f, "nvdimm-restored slot={slot}"),
            NvdimmRestoreFailed { slot } => write!(f, "nvdimm-restore-failed slot={slot}"),
            HedgeIssued { addr } => write!(f, "hedge-issued addr={addr:#x}"),
            BreakerTransition { slot, open } => {
                write!(f, "breaker-transition slot={slot} open={open}")
            }
            Restored { line } => f.write_str(line),
        }
    }
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    pub at: SimTime,
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12} ps] {}", self.at.as_ps(), self.event)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceRecord>,
    total: u64,
    dropped: u64,
    fingerprint: u64,
}

struct TracerShared {
    now: Cell<SimTime>,
    ring: RefCell<TraceRing>,
}

/// A cheaply cloneable handle to a shared trace buffer.
///
/// All clones of one `Tracer` feed the same ring; the simulation is
/// single-threaded, so the handle uses `Rc` internally and is not
/// `Send`. The clock is advanced by whoever owns the simulation loop
/// (normally `DmiChannel::step`) via [`Tracer::advance`]; layers below
/// the channel record events without needing a time parameter.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<TracerShared>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op.
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer retaining the last `capacity` events.
    ///
    /// The running fingerprint and totals cover *all* events ever
    /// recorded, including those evicted from the ring.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be nonzero");
        Tracer {
            inner: Some(Rc::new(TracerShared {
                now: Cell::new(SimTime::ZERO),
                ring: RefCell::new(TraceRing {
                    capacity,
                    events: VecDeque::with_capacity(capacity.min(4096)),
                    total: 0,
                    dropped: 0,
                    fingerprint: FNV_OFFSET,
                }),
            })),
        }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Moves the trace clock forward; subsequent events are stamped with
    /// `now`. Called by the simulation loop, never by leaf layers.
    pub fn advance(&self, now: SimTime) {
        if let Some(inner) = &self.inner {
            inner.now.set(now);
        }
    }

    /// The current trace clock (zero when disabled).
    pub fn now(&self) -> SimTime {
        self.inner
            .as_ref()
            .map_or(SimTime::ZERO, |inner| inner.now.get())
    }

    /// Records one event at the current trace clock. No-op when off.
    pub fn record(&self, event: TraceEvent) {
        let Some(inner) = &self.inner else {
            return;
        };
        let record = TraceRecord {
            at: inner.now.get(),
            event,
        };
        let mut ring = inner.ring.borrow_mut();
        ring.total += 1;
        // The fingerprint folds in the canonical rendering so it is
        // exactly as strong as a byte-compare of the full (unbounded)
        // trace text.
        ring.fingerprint = fnv1a(ring.fingerprint, record.to_string().as_bytes());
        ring.fingerprint = fnv1a(ring.fingerprint, b"\n");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(record);
    }

    /// Number of events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.ring.borrow().events.len())
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.ring.borrow().total)
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.ring.borrow().dropped)
    }

    /// Running FNV-1a fingerprint over every event ever recorded.
    /// Two same-seed runs must produce equal fingerprints.
    pub fn fingerprint(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(FNV_OFFSET, |inner| inner.ring.borrow().fingerprint)
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner.ring.borrow().events.iter().cloned().collect()
        })
    }

    /// Counts retained events matching a predicate.
    pub fn count_matching(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .ring
                .borrow()
                .events
                .iter()
                .filter(|r| pred(&r.event))
                .count()
        })
    }

    /// Serializes the full trace state — clock, ring capacity, totals,
    /// fingerprint and the retained events (as rendered text, so no
    /// event structure needs to survive the image). No-op encoding is
    /// not provided for a disabled tracer; callers skip the section.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        let inner = self.inner.as_ref().expect("snapshot of a disabled tracer");
        let ring = inner.ring.borrow();
        inner.now.get().persist(out);
        (ring.capacity as u64).persist(out);
        ring.total.persist(out);
        ring.dropped.persist(out);
        ring.fingerprint.persist(out);
        (ring.events.len() as u64).persist(out);
        for record in &ring.events {
            record.at.persist(out);
            record.event.to_string().persist(out);
        }
    }

    /// Rebuilds trace state from [`Tracer::snapshot_state`] bytes.
    ///
    /// When this handle is already enabled the state is overlaid into
    /// the existing shared ring, so every clone distributed through the
    /// system observes the restored state; otherwise a fresh ring is
    /// created. Restored events render byte-identically to the
    /// originals, and the fingerprint continues from the restored
    /// accumulator, so a resumed run's fingerprint equals the straight
    /// run's.
    pub fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::RestoreError> {
        use crate::snapshot::RestoreError;
        let now = SimTime::restore(r)?;
        let capacity = r.len()?;
        if capacity == 0 {
            return Err(RestoreError::Malformed {
                context: "trace ring capacity",
            });
        }
        let total = r.u64()?;
        let dropped = r.u64()?;
        let fingerprint = r.u64()?;
        let count = r.len()?;
        if count > capacity {
            return Err(RestoreError::Malformed {
                context: "trace ring holds more than its capacity",
            });
        }
        let mut events = VecDeque::with_capacity(count.min(4096));
        for _ in 0..count {
            let at = SimTime::restore(r)?;
            let line = String::restore(r)?;
            events.push_back(TraceRecord {
                at,
                event: TraceEvent::Restored { line },
            });
        }
        match &self.inner {
            Some(inner) => {
                inner.now.set(now);
                let mut ring = inner.ring.borrow_mut();
                ring.capacity = capacity;
                ring.events = events;
                ring.total = total;
                ring.dropped = dropped;
                ring.fingerprint = fingerprint;
            }
            None => {
                self.inner = Some(Rc::new(TracerShared {
                    now: Cell::new(now),
                    ring: RefCell::new(TraceRing {
                        capacity,
                        events,
                        total,
                        dropped,
                        fingerprint,
                    }),
                }));
            }
        }
        Ok(())
    }

    /// The ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.ring.borrow().capacity)
    }

    /// Renders the retained trace as text: a header with totals and the
    /// fingerprint, then one line per event. Byte-identical across
    /// same-seed runs.
    pub fn render(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::from("trace: disabled\n");
        };
        let ring = inner.ring.borrow();
        let mut out = format!(
            "trace: {} events ({} retained, {} dropped) fingerprint={:016x}\n",
            ring.total,
            ring.events.len(),
            ring.dropped,
            ring.fingerprint,
        );
        for record in &ring.events {
            out.push_str(&record.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(off)"),
            Some(inner) => {
                let ring = inner.ring.borrow();
                write!(
                    f,
                    "Tracer(total={}, retained={}, fingerprint={:016x})",
                    ring.total,
                    ring.events.len(),
                    ring.fingerprint,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_is_inert() {
        let t = Tracer::off();
        t.advance(SimTime::from_ns(5));
        t.record(TraceEvent::TagExhausted);
        assert!(!t.is_enabled());
        assert_eq!(t.total_recorded(), 0);
        assert!(t.is_empty());
        assert_eq!(t.render(), "trace: disabled\n");
    }

    #[test]
    fn clones_share_one_ring() {
        let a = Tracer::ring(8);
        let b = a.clone();
        a.advance(SimTime::from_ns(1));
        b.record(TraceEvent::TagAcquire { tag: 0 });
        a.record(TraceEvent::TagRelease { tag: 0 });
        assert_eq!(a.total_recorded(), 2);
        assert_eq!(b.total_recorded(), 2);
        assert_eq!(a.snapshot()[0].at, SimTime::from_ns(1));
    }

    #[test]
    fn snapshot_restore_preserves_render_and_fingerprint() {
        let original = Tracer::ring(4);
        original.advance(SimTime::from_ns(3));
        for tag in 0..6 {
            original.record(TraceEvent::TagAcquire { tag });
        }
        let mut bytes = Vec::new();
        original.snapshot_state(&mut bytes);

        // Restore into a disabled handle: identical render, totals and
        // fingerprint.
        let mut restored = Tracer::off();
        restored
            .restore_state(&mut crate::snapshot::SnapReader::new(&bytes))
            .expect("restore");
        assert_eq!(restored.render(), original.render());
        assert_eq!(restored.now(), original.now());
        assert_eq!(restored.capacity(), 4);
        assert_eq!(restored.dropped(), original.dropped());

        // Recording continues the fingerprint stream exactly.
        let next = TraceEvent::TagRelease { tag: 0 };
        original.record(next.clone());
        restored.record(next);
        assert_eq!(restored.fingerprint(), original.fingerprint());
        assert_eq!(restored.render(), original.render());

        // Restore also overlays into an already-enabled shared ring.
        let mut shared = Tracer::ring(16);
        let peer = shared.clone();
        shared.record(TraceEvent::TagExhausted);
        let mut bytes = Vec::new();
        original.snapshot_state(&mut bytes);
        shared
            .restore_state(&mut crate::snapshot::SnapReader::new(&bytes))
            .expect("overlay restore");
        assert_eq!(peer.render(), original.render());
        assert_eq!(peer.fingerprint(), original.fingerprint());
    }

    #[test]
    fn ring_evicts_oldest_but_fingerprint_covers_all() {
        let small = Tracer::ring(2);
        let large = Tracer::ring(100);
        for tag in 0..10 {
            for t in [&small, &large] {
                t.record(TraceEvent::TagAcquire { tag });
            }
        }
        assert_eq!(small.len(), 2);
        assert_eq!(small.dropped(), 8);
        assert_eq!(small.total_recorded(), 10);
        assert_eq!(
            small.snapshot().last().unwrap().event,
            TraceEvent::TagAcquire { tag: 9 }
        );
        // Same event stream ⇒ same fingerprint, regardless of capacity.
        assert_eq!(small.fingerprint(), large.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_streams() {
        let a = Tracer::ring(4);
        let b = Tracer::ring(4);
        a.record(TraceEvent::CrcFailure {
            dir: LinkDir::Downstream,
        });
        b.record(TraceEvent::CrcFailure {
            dir: LinkDir::Upstream,
        });
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Timestamps are part of the fingerprint too.
        let c = Tracer::ring(4);
        c.advance(SimTime::from_ps(1));
        c.record(TraceEvent::CrcFailure {
            dir: LinkDir::Downstream,
        });
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn render_is_line_per_event() {
        let t = Tracer::ring(16);
        t.advance(SimTime::from_ns(2));
        t.record(TraceEvent::FrameTx {
            dir: LinkDir::Downstream,
            seq: 7,
            replayed: false,
        });
        t.record(TraceEvent::CacheMiss { addr: 0x80 });
        let text = t.render();
        assert!(text.starts_with("trace: 2 events"));
        assert!(text.contains("frame-tx dir=down seq=7 replayed=false"));
        assert!(text.contains("cache-miss addr=0x80"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn recovery_events_render() {
        let t = Tracer::ring(8);
        t.record(TraceEvent::TagReclaimed { tag: 5 });
        t.record(TraceEvent::RetryScheduled {
            tag: 5,
            attempt: 2,
            backoff_ps: 8_000_000,
        });
        t.record(TraceEvent::LinkRetrain { count: 1 });
        let text = t.render();
        assert!(text.contains("tag-reclaimed tag=5"));
        assert!(text.contains("retry-scheduled tag=5 attempt=2 backoff_ps=8000000"));
        assert!(text.contains("link-retrain count=1"));
    }

    #[test]
    fn ras_events_render() {
        let t = Tracer::ring(8);
        t.record(TraceEvent::EccCorrected {
            addr: 0x80,
            bits: 1,
        });
        t.record(TraceEvent::EccUncorrectable { addr: 0x100 });
        t.record(TraceEvent::PoisonDelivered { addr: 0x100 });
        t.record(TraceEvent::ScrubPass {
            corrected: 3,
            uncorrectable: 1,
        });
        t.record(TraceEvent::PageRetired { addr: 0x1000 });
        t.record(TraceEvent::SaveTorn {
            restored_ps: 5,
            save_done_ps: 9,
        });
        let text = t.render();
        assert!(text.contains("ecc-corrected addr=0x80 bits=1"));
        assert!(text.contains("ecc-uncorrectable addr=0x100"));
        assert!(text.contains("poison-delivered addr=0x100"));
        assert!(text.contains("scrub-pass corrected=3 uncorrectable=1"));
        assert!(text.contains("page-retired addr=0x1000"));
        assert!(text.contains("save-torn restored_ps=5 save_done_ps=9"));
    }

    #[test]
    fn failover_events_render() {
        let t = Tracer::ring(8);
        t.record(TraceEvent::ChannelQuiesced {
            slot: 2,
            clean: true,
        });
        t.record(TraceEvent::MigrationProgress {
            from: 2,
            to: 4,
            migrated: 8,
            remaining: 16,
        });
        t.record(TraceEvent::ChannelFailedOver {
            from: 2,
            to: 4,
            mirrored: false,
        });
        t.record(TraceEvent::MirrorReadFallback { addr: 0x4000 });
        t.record(TraceEvent::FrameOrphaned { tag: 7 });
        t.record(TraceEvent::HedgeIssued { addr: 0x4000 });
        t.record(TraceEvent::BreakerTransition {
            slot: 2,
            open: true,
        });
        let text = t.render();
        assert!(text.contains("channel-quiesced slot=2 clean=true"));
        assert!(text.contains("migration-progress from=2 to=4 migrated=8 remaining=16"));
        assert!(text.contains("channel-failed-over from=2 to=4 mirrored=false"));
        assert!(text.contains("mirror-read-fallback addr=0x4000"));
        assert!(text.contains("frame-orphaned tag=7"));
        assert!(text.contains("hedge-issued addr=0x4000"));
        assert!(text.contains("breaker-transition slot=2 open=true"));
    }

    #[test]
    fn power_events_render() {
        let t = Tracer::ring(16);
        t.record(TraceEvent::EpowAsserted);
        t.record(TraceEvent::EpowFlushStage {
            stage: 1,
            charged_nj: 4_000,
        });
        t.record(TraceEvent::EpowHoldupExhausted { stage: 3 });
        t.record(TraceEvent::PowerCut);
        t.record(TraceEvent::SaveEnergyExhausted {
            saved_bytes: 65_536,
            capacity_bytes: 1_048_576,
        });
        t.record(TraceEvent::PowerRestored);
        t.record(TraceEvent::NvdimmRestored { slot: 3 });
        t.record(TraceEvent::NvdimmRestoreFailed { slot: 3 });
        let text = t.render();
        assert!(text.contains("epow-asserted"));
        assert!(text.contains("epow-flush-stage stage=1 charged_nj=4000"));
        assert!(text.contains("epow-holdup-exhausted stage=3"));
        assert!(text.contains("power-cut"));
        assert!(text.contains("save-energy-exhausted saved_bytes=65536 capacity_bytes=1048576"));
        assert!(text.contains("power-restored"));
        assert!(text.contains("nvdimm-restored slot=3"));
        assert!(text.contains("nvdimm-restore-failed slot=3"));
    }

    #[test]
    fn count_matching_filters() {
        let t = Tracer::ring(16);
        t.record(TraceEvent::TagAcquire { tag: 1 });
        t.record(TraceEvent::TagRelease { tag: 1 });
        t.record(TraceEvent::TagAcquire { tag: 2 });
        let acquires = t.count_matching(|e| matches!(e, TraceEvent::TagAcquire { .. }));
        assert_eq!(acquires, 2);
    }

    #[test]
    fn dir_opposite() {
        assert_eq!(LinkDir::Downstream.opposite(), LinkDir::Upstream);
        assert_eq!(LinkDir::Upstream.opposite(), LinkDir::Downstream);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Tracer::ring(0);
    }
}
