//! # contutto-sim
//!
//! Deterministic discrete-event simulation kernel used by every other
//! crate in the ConTutto reproduction.
//!
//! The kernel is deliberately small: a monotonically increasing
//! picosecond clock ([`SimTime`]), an event queue with stable FIFO
//! ordering for simultaneous events ([`EventQueue`]), typed frequency /
//! cycle arithmetic ([`Frequency`], [`Cycles`]), bounded latency queues
//! for modelling pipelines and wires ([`queue::DelayQueue`]), statistics
//! collectors ([`stats`]) aggregated under hierarchical names by a
//! [`MetricsRegistry`], a frozen-stream deterministic PRNG ([`SimRng`]),
//! and ring-buffered structured protocol tracing ([`trace`]).
//!
//! Everything is single-threaded and fully deterministic: two runs with
//! the same inputs produce bit-identical traces. No wall-clock time or
//! ambient randomness is ever consulted.
//!
//! ## Example
//!
//! ```
//! use contutto_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_ns(5), "b");
//! q.schedule(SimTime::from_ns(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_ns(1), "a"));
//! ```

pub mod event;
pub mod queue;
pub mod registry;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use queue::DelayQueue;
pub use registry::{Metric, MetricsRegistry};
pub use rng::SimRng;
pub use snapshot::{
    crc32, Persist, RestoreError, SnapReader, SnapshotImage, SnapshotWriter, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use stats::{Counter, Histogram, LatencyStats, LogHistogram, QuantileOutcome};
pub use time::{Cycles, Frequency, SimTime};
pub use trace::{LinkDir, TraceEvent, TraceRecord, Tracer};
