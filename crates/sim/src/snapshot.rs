//! Versioned, section-framed, CRC-sealed snapshot images.
//!
//! A snapshot is the serialized dynamic state of a simulated system:
//! a small header (magic, format version, section count) followed by
//! named sections, each sealed by a CRC-32 over its full frame (name,
//! length and payload). The framing is deliberately dumb — restore
//! code addresses sections by name and decodes payloads with
//! [`SnapReader`] — so that corruption anywhere in an image surfaces
//! as a typed [`RestoreError`], never a panic and never a silently
//! accepted image:
//!
//! * a flipped byte in the header fails the magic, version or header
//!   CRC check;
//! * a flipped byte anywhere in a section frame fails that section's
//!   CRC;
//! * truncation anywhere — mid-header, mid-frame, or cleanly at a
//!   section boundary — fails the length or section-count check;
//! * a validly framed section the restorer does not recognize is
//!   [`RestoreError::UnknownSection`].
//!
//! Payload encoding is via the [`Persist`] trait: fixed-width
//! little-endian integers, length-prefixed containers, explicit
//! discriminant bytes for enums. Map/set containers are written in
//! sorted key order so that identical state always produces identical
//! bytes (images are themselves part of the determinism contract).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::rng::SimRng;
use crate::time::{Cycles, Frequency, SimTime};

/// Leading bytes of every snapshot image.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CTSS";
/// Current image format version.
pub const SNAPSHOT_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 4 + 4; // magic + version + count + crc

/// Why an image could not be restored. Every constructor of this type
/// replaces what would otherwise be a panic or a silent misparse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestoreError {
    /// The image does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The image was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the image.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// A section frame (name, length or payload) failed its CRC; for
    /// the fixed header the section name is `"header"`.
    SectionCrcMismatch {
        /// Name of the failing section as far as it could be parsed.
        section: String,
    },
    /// The image ends before the advertised data: mid-header,
    /// mid-frame, mid-payload, or with fewer sections than the header
    /// counted.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A validly framed section whose name the restorer does not
    /// recognize (an image from a different layout or a future
    /// writer).
    UnknownSection {
        /// The unrecognized section name.
        section: String,
    },
    /// A required section is absent from an otherwise valid image.
    MissingSection {
        /// The absent section name.
        section: String,
    },
    /// A payload decoded to an impossible value (bad discriminant,
    /// out-of-range index, non-UTF-8 string, ordering violation).
    Malformed {
        /// What was malformed.
        context: &'static str,
    },
    /// The restoring system's construction does not match the image
    /// (different slot population, buffer kind, or capacity).
    TopologyMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "not a snapshot image (bad magic)"),
            RestoreError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (expected {expected})")
            }
            RestoreError::SectionCrcMismatch { section } => {
                write!(f, "section {section:?} failed its CRC check")
            }
            RestoreError::Truncated { context } => {
                write!(f, "image truncated while reading {context}")
            }
            RestoreError::UnknownSection { section } => {
                write!(f, "unknown section {section:?}")
            }
            RestoreError::MissingSection { section } => {
                write!(f, "required section {section:?} is missing")
            }
            RestoreError::Malformed { context } => {
                write!(f, "malformed payload: {context}")
            }
            RestoreError::TopologyMismatch { context } => {
                write!(f, "image does not match this system: {context}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

// ------------------------------------------------------------- CRC-32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE, reflected) over a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// -------------------------------------------------------- byte reader

/// A bounds-checked cursor over one section payload. Every read is
/// total: running out of bytes is [`RestoreError::Truncated`], an
/// impossible value is [`RestoreError::Malformed`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.remaining() < n {
            return Err(RestoreError::Truncated {
                context: "payload bytes",
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, RestoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, RestoreError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    /// Reads a `usize` persisted as `u64`, rejecting values this
    /// platform cannot hold.
    pub fn len(&mut self) -> Result<usize, RestoreError> {
        usize::try_from(self.u64()?).map_err(|_| RestoreError::Malformed {
            context: "length exceeds usize",
        })
    }

    /// Reads a length used to size an allocation, additionally bounded
    /// by the bytes actually remaining so a corrupt length cannot ask
    /// for an absurd reservation.
    fn seq_len(&mut self) -> Result<usize, RestoreError> {
        let n = self.len()?;
        if n > self.remaining() {
            return Err(RestoreError::Truncated {
                context: "sequence shorter than its length prefix",
            });
        }
        Ok(n)
    }

    /// Reads a `bool` (0 or 1; anything else is malformed).
    pub fn bool(&mut self) -> Result<bool, RestoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(RestoreError::Malformed {
                context: "bool out of range",
            }),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, RestoreError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RestoreError::Malformed {
            context: "string is not UTF-8",
        })
    }
}

// ---------------------------------------------------------- persist

/// State that can be written to and read back from a snapshot payload.
///
/// Implementations must round-trip exactly (`restore(persist(x)) ==
/// x`) and must be deterministic: the same value always produces the
/// same bytes (unordered containers are therefore persisted in sorted
/// order).
pub trait Persist: Sized {
    /// Appends this value's encoding to `out`.
    fn persist(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader.
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError>;
}

macro_rules! persist_int {
    ($ty:ty, $read:ident) => {
        impl Persist for $ty {
            fn persist(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
                r.$read()
            }
        }
    };
}

persist_int!(u8, u8);
persist_int!(u16, u16);
persist_int!(u32, u32);
persist_int!(u64, u64);
persist_int!(u128, u128);

impl Persist for usize {
    fn persist(&self, out: &mut Vec<u8>) {
        (*self as u64).persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.len()
    }
}

impl Persist for bool {
    fn persist(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.bool()
    }
}

impl Persist for f64 {
    fn persist(&self, out: &mut Vec<u8>) {
        self.to_bits().persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.f64()
    }
}

impl Persist for String {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        r.string()
    }
}

impl Persist for SimTime {
    fn persist(&self, out: &mut Vec<u8>) {
        self.as_ps().persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(SimTime::from_ps(r.u64()?))
    }
}

impl Persist for Cycles {
    fn persist(&self, out: &mut Vec<u8>) {
        self.count().persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(Cycles(r.u64()?))
    }
}

impl Persist for Frequency {
    fn persist(&self, out: &mut Vec<u8>) {
        self.period().as_ps().persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let period_ps = r.u64()?;
        if period_ps == 0 {
            return Err(RestoreError::Malformed {
                context: "zero clock period",
            });
        }
        Ok(Frequency::from_period_ps(period_ps))
    }
}

impl Persist for SimRng {
    fn persist(&self, out: &mut Vec<u8>) {
        for word in self.state() {
            word.persist(out);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(SimRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]))
    }
}

impl<const N: usize> Persist for [u8; N] {
    fn persist(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(r.take(N)?.try_into().expect("exact length"))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.persist(out);
            }
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            _ => Err(RestoreError::Malformed {
                context: "Option discriminant",
            }),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        for item in self {
            item.persist(out);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let n = r.seq_len()?;
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(T::restore(r)?);
        }
        Ok(v)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        for item in self {
            item.persist(out);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok(Vec::restore(r)?.into())
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        for (k, v) in self {
            k.persist(out);
            v.persist(out);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let n = r.seq_len()?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        for item in self {
            item.persist(out);
        }
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let n = r.seq_len()?;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(T::restore(r)?);
        }
        Ok(set)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
        self.1.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
        self.1.persist(out);
        self.2.persist(out);
    }
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

/// Persists a `HashMap` deterministically by writing entries in sorted
/// key order. (There is deliberately no `Persist for HashMap` — going
/// through this helper makes the sorting explicit at the call site.)
pub fn persist_sorted_map<K, V>(map: &std::collections::HashMap<K, V>, out: &mut Vec<u8>)
where
    K: Persist + Ord + std::hash::Hash + Clone,
    V: Persist,
{
    let mut keys: Vec<&K> = map.keys().collect();
    keys.sort();
    (keys.len() as u64).persist(out);
    for k in keys {
        k.persist(out);
        map[k].persist(out);
    }
}

/// Restores a `HashMap` written by [`persist_sorted_map`].
pub fn restore_map<K, V>(
    r: &mut SnapReader<'_>,
) -> Result<std::collections::HashMap<K, V>, RestoreError>
where
    K: Persist + Eq + std::hash::Hash,
    V: Persist,
{
    let n = r.seq_len()?;
    let mut map = std::collections::HashMap::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let k = K::restore(r)?;
        let v = V::restore(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

// ---------------------------------------------------- image framing

/// Builds a snapshot image: header, then sections in the order added.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Adds a named section with an already-built payload.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push((name.to_owned(), payload));
    }

    /// Adds a named section, building the payload in a closure.
    pub fn section_with(&mut self, name: &str, build: impl FnOnce(&mut Vec<u8>)) {
        let mut payload = Vec::new();
        build(&mut payload);
        self.section(name, payload);
    }

    /// Seals the image: header (magic, version, section count, header
    /// CRC) followed by each section's CRC-sealed frame.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (name, payload) in &self.sections {
            let mut frame = Vec::with_capacity(2 + name.len() + 8 + payload.len());
            frame.extend_from_slice(&(name.len() as u16).to_le_bytes());
            frame.extend_from_slice(name.as_bytes());
            frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            frame.extend_from_slice(payload);
            let crc = crc32(&frame);
            out.extend_from_slice(&crc.to_le_bytes());
            out.extend_from_slice(&frame);
        }
        out
    }
}

/// A parsed snapshot image: validated header and CRC-checked sections,
/// in file order.
#[derive(Debug)]
pub struct SnapshotImage<'a> {
    sections: Vec<(String, &'a [u8])>,
}

impl<'a> SnapshotImage<'a> {
    /// Parses and validates an image. Every failure is typed; this
    /// function never panics on any input byte string.
    pub fn parse(image: &'a [u8]) -> Result<Self, RestoreError> {
        if image.len() < 4 {
            return Err(RestoreError::Truncated { context: "header" });
        }
        if image[0..4] != SNAPSHOT_MAGIC {
            return Err(RestoreError::BadMagic);
        }
        if image.len() < HEADER_LEN {
            return Err(RestoreError::Truncated { context: "header" });
        }
        let version = u16::from_le_bytes(image[4..6].try_into().expect("2"));
        if version != SNAPSHOT_VERSION {
            return Err(RestoreError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let count = u32::from_le_bytes(image[6..10].try_into().expect("4"));
        let header_crc = u32::from_le_bytes(image[10..14].try_into().expect("4"));
        if crc32(&image[0..10]) != header_crc {
            return Err(RestoreError::SectionCrcMismatch {
                section: "header".to_owned(),
            });
        }
        let mut sections = Vec::with_capacity(count.min(1 << 12) as usize);
        let mut pos = HEADER_LEN;
        for _ in 0..count {
            if image.len() - pos < 4 {
                return Err(RestoreError::Truncated {
                    context: "section CRC",
                });
            }
            let crc = u32::from_le_bytes(image[pos..pos + 4].try_into().expect("4"));
            pos += 4;
            let frame_start = pos;
            if image.len() - pos < 2 {
                return Err(RestoreError::Truncated {
                    context: "section name length",
                });
            }
            let name_len = u16::from_le_bytes(image[pos..pos + 2].try_into().expect("2")) as usize;
            pos += 2;
            if image.len() - pos < name_len {
                return Err(RestoreError::Truncated {
                    context: "section name",
                });
            }
            let name_bytes = &image[pos..pos + name_len];
            pos += name_len;
            if image.len() - pos < 8 {
                return Err(RestoreError::Truncated {
                    context: "section payload length",
                });
            }
            let payload_len = u64::from_le_bytes(image[pos..pos + 8].try_into().expect("8"));
            pos += 8;
            let payload_len =
                usize::try_from(payload_len).map_err(|_| RestoreError::Malformed {
                    context: "section payload length exceeds usize",
                })?;
            if image.len() - pos < payload_len {
                return Err(RestoreError::Truncated {
                    context: "section payload",
                });
            }
            let payload = &image[pos..pos + payload_len];
            pos += payload_len;
            let name = match std::str::from_utf8(name_bytes) {
                Ok(name) => name.to_owned(),
                Err(_) => {
                    // The CRC verdict is more precise than "bad UTF-8":
                    // a corrupted name fails its seal first.
                    return if crc32(&image[frame_start..pos]) != crc {
                        Err(RestoreError::SectionCrcMismatch {
                            section: String::from_utf8_lossy(name_bytes).into_owned(),
                        })
                    } else {
                        Err(RestoreError::Malformed {
                            context: "section name is not UTF-8",
                        })
                    };
                }
            };
            if crc32(&image[frame_start..pos]) != crc {
                return Err(RestoreError::SectionCrcMismatch { section: name });
            }
            sections.push((name, payload));
        }
        if pos != image.len() {
            return Err(RestoreError::Malformed {
                context: "trailing bytes after last section",
            });
        }
        Ok(SnapshotImage { sections })
    }

    /// Section names in file order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when the image has no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// A reader over the named section's payload.
    pub fn section(&self, name: &str) -> Result<SnapReader<'a>, RestoreError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, payload)| SnapReader::new(payload))
            .ok_or_else(|| RestoreError::MissingSection {
                section: name.to_owned(),
            })
    }

    /// Byte offsets (into the original image) of every section
    /// boundary: the start of each frame and the end of the image.
    /// Used by corruption fuzzing to truncate exactly at boundaries.
    pub fn boundaries(image: &[u8]) -> Vec<usize> {
        let mut cuts = vec![HEADER_LEN.min(image.len())];
        if let Ok(parsed) = SnapshotImage::parse(image) {
            let mut pos = HEADER_LEN;
            for (name, payload) in &parsed.sections {
                pos += 4 + 2 + name.len() + 8 + payload.len();
                cuts.push(pos);
            }
        }
        cuts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section_with("alpha", |out| {
            42u64.persist(out);
            "hello".to_owned().persist(out);
        });
        w.section_with("beta", |out| {
            vec![1u32, 2, 3].persist(out);
        });
        w.finish()
    }

    #[test]
    fn image_round_trips() {
        let image = sample_image();
        let parsed = SnapshotImage::parse(&image).expect("valid image");
        assert_eq!(parsed.names().collect::<Vec<_>>(), vec!["alpha", "beta"]);
        let mut r = parsed.section("alpha").expect("alpha");
        assert_eq!(u64::restore(&mut r).unwrap(), 42);
        assert_eq!(String::restore(&mut r).unwrap(), "hello");
        assert!(r.is_empty());
        let mut r = parsed.section("beta").expect("beta");
        assert_eq!(Vec::<u32>::restore(&mut r).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn missing_section_is_typed() {
        let image = sample_image();
        let parsed = SnapshotImage::parse(&image).unwrap();
        assert_eq!(
            parsed.section("gamma").unwrap_err(),
            RestoreError::MissingSection {
                section: "gamma".into()
            }
        );
    }

    #[test]
    fn bad_magic_detected() {
        let mut image = sample_image();
        image[0] ^= 0xFF;
        assert_eq!(
            SnapshotImage::parse(&image).unwrap_err(),
            RestoreError::BadMagic
        );
    }

    #[test]
    fn version_mismatch_detected() {
        let mut image = sample_image();
        image[4] = SNAPSHOT_VERSION as u8 + 1;
        assert!(matches!(
            SnapshotImage::parse(&image).unwrap_err(),
            RestoreError::VersionMismatch { .. }
        ));
    }

    #[test]
    fn header_count_flip_fails_header_crc() {
        let mut image = sample_image();
        image[6] ^= 0x01;
        assert_eq!(
            SnapshotImage::parse(&image).unwrap_err(),
            RestoreError::SectionCrcMismatch {
                section: "header".into()
            }
        );
    }

    #[test]
    fn every_payload_flip_fails_some_check() {
        let image = sample_image();
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    SnapshotImage::parse(&bad).is_err(),
                    "flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_typed() {
        let image = sample_image();
        for cut in 0..image.len() {
            let err = SnapshotImage::parse(&image[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    RestoreError::Truncated { .. }
                        | RestoreError::SectionCrcMismatch { .. }
                        | RestoreError::BadMagic
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn boundaries_cover_all_sections() {
        let image = sample_image();
        let cuts = SnapshotImage::boundaries(&image);
        assert_eq!(cuts.len(), 3); // header end + 2 section ends
        assert_eq!(*cuts.last().unwrap(), image.len());
    }

    #[test]
    fn containers_round_trip() {
        let mut out = Vec::new();
        let map: BTreeMap<u64, String> = [(3, "c".to_owned()), (1, "a".to_owned())]
            .into_iter()
            .collect();
        map.persist(&mut out);
        let set: BTreeSet<u32> = [5, 2, 9].into_iter().collect();
        set.persist(&mut out);
        let opt: Option<(u8, bool)> = Some((7, true));
        opt.persist(&mut out);
        let dq: VecDeque<u16> = [10u16, 20].into_iter().collect();
        dq.persist(&mut out);
        let arr: [u8; 4] = [9, 8, 7, 6];
        arr.persist(&mut out);
        (-0.5f64).persist(&mut out);
        SimTime::from_ns(77).persist(&mut out);

        let mut r = SnapReader::new(&out);
        assert_eq!(BTreeMap::<u64, String>::restore(&mut r).unwrap(), map);
        assert_eq!(BTreeSet::<u32>::restore(&mut r).unwrap(), set);
        assert_eq!(Option::<(u8, bool)>::restore(&mut r).unwrap(), opt);
        assert_eq!(VecDeque::<u16>::restore(&mut r).unwrap(), dq);
        assert_eq!(<[u8; 4]>::restore(&mut r).unwrap(), arr);
        assert_eq!(f64::restore(&mut r).unwrap(), -0.5);
        assert_eq!(SimTime::restore(&mut r).unwrap(), SimTime::from_ns(77));
        assert!(r.is_empty());
    }

    #[test]
    fn hashmap_helper_is_sorted_and_round_trips() {
        let mut map = std::collections::HashMap::new();
        map.insert(9u64, 1u32);
        map.insert(1u64, 2u32);
        let mut a = Vec::new();
        persist_sorted_map(&map, &mut a);
        let mut b = Vec::new();
        persist_sorted_map(&map.clone(), &mut b);
        assert_eq!(a, b, "encoding must not depend on hash order");
        let mut r = SnapReader::new(&a);
        let back: std::collections::HashMap<u64, u32> = restore_map(&mut r).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn rng_round_trips_mid_stream() {
        let mut rng = SimRng::seed_from_u64(77);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut out = Vec::new();
        rng.persist(&mut out);
        let mut r = SnapReader::new(&out);
        let mut back = SimRng::restore(&mut r).unwrap();
        assert_eq!(back.next_u64(), rng.next_u64());
        assert_eq!(back.next_u64(), rng.next_u64());
    }

    #[test]
    fn truncated_payload_reads_are_typed() {
        let mut out = Vec::new();
        1_000_000u64.persist(&mut out); // absurd length prefix
        let mut r = SnapReader::new(&out);
        assert!(matches!(
            Vec::<u64>::restore(&mut r),
            Err(RestoreError::Truncated { .. })
        ));
    }
}
