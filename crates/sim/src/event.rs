//! The discrete-event queue.
//!
//! [`EventQueue`] is a time-ordered priority queue with two guarantees
//! the rest of the system relies on:
//!
//! 1. **Determinism**: events scheduled for the same timestamp pop in
//!    the order they were scheduled (FIFO tie-break by a monotonically
//!    increasing sequence number).
//! 2. **Cancellation**: `schedule` returns an [`EventId`] that can later
//!    be cancelled in O(log n) amortized (lazy deletion).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Opaque handle for a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then
        // lowest sequence number first for FIFO among equal times.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Example
///
/// ```
/// use contutto_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(10), 'x');
/// let id = q.schedule(SimTime::from_ns(2), 'y');
/// q.cancel(id);
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), 'x')));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`] — scheduling
    /// into the past is always a model bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) -> EventId {
        self.schedule(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the
    /// event had not yet fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Pops the earliest pending event, advancing the clock to its
    /// timestamp. Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the earliest live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(9));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "first");
        q.pop();
        q.schedule_in(SimTime::from_ns(5), "second");
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), "second")));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), 'a');
        q.schedule(SimTime::from_ns(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), 'a');
        q.schedule(SimTime::from_ns(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_ns(i), i))
            .collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }
}
