//! Simulation time, frequencies and cycle arithmetic.
//!
//! All simulation time is kept in integer **picoseconds**. Picoseconds
//! are fine enough to represent every clock in the modelled system
//! exactly (250 MHz fabric = 4000 ps, 2.4 GHz Centaur core = 416⅔ ps is
//! the one exception — we round Centaur to 417 ps and document the
//! <0.1 % error), and a `u64` of picoseconds covers ~213 days of
//! simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp or a duration, in picoseconds.
///
/// `SimTime` is used for both points in time and durations; the
/// arithmetic provided (saturating-free checked-in-debug `+`/`-`) is the
/// same for both, and in a simulator the distinction carries little
/// weight. Use [`SimTime::ZERO`] as the origin.
///
/// # Example
///
/// ```
/// use contutto_sim::SimTime;
/// let t = SimTime::from_ns(100) + SimTime::from_ps(500);
/// assert_eq!(t.as_ps(), 100_500);
/// assert_eq!(t.as_ns_f64(), 100.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The time origin (0 ps).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in whole nanoseconds, truncating.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in nanoseconds as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time in microseconds as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_sub(rhs.0).map(SimTime)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A count of clock cycles in some clock domain.
///
/// `Cycles` is a plain newtype; combine it with a [`Frequency`] to get a
/// [`SimTime`]:
///
/// ```
/// use contutto_sim::{Cycles, Frequency};
/// let fabric = Frequency::from_mhz(250);
/// assert_eq!(fabric.cycles_to_time(Cycles(6)).as_ns(), 24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw cycle count.
    pub const fn count(self) -> u64 {
        self.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A clock frequency.
///
/// Stored as the exact period in picoseconds, which is what every
/// simulation computation actually needs. Constructors round the period
/// to the nearest picosecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    period_ps: u64,
}

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub const fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be nonzero");
        Frequency {
            period_ps: 1_000_000 / mhz,
        }
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is zero.
    pub const fn from_ghz(ghz: u64) -> Self {
        assert!(ghz > 0, "frequency must be nonzero");
        Frequency {
            period_ps: 1_000 / ghz,
        }
    }

    /// Creates a frequency from an explicit period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub const fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "period must be nonzero");
        Frequency { period_ps }
    }

    /// The clock period.
    pub const fn period(self) -> SimTime {
        SimTime::from_ps(self.period_ps)
    }

    /// The frequency in MHz (may round for non-integral values).
    pub const fn as_mhz(self) -> u64 {
        1_000_000 / self.period_ps
    }

    /// Converts a cycle count in this domain to a duration.
    pub const fn cycles_to_time(self, cycles: Cycles) -> SimTime {
        SimTime::from_ps(self.period_ps * cycles.0)
    }

    /// Converts a duration to whole cycles in this domain, rounding up.
    ///
    /// Rounding up models synchronization into a clock domain: an event
    /// arriving mid-cycle is visible at the next edge.
    pub const fn time_to_cycles_ceil(self, t: SimTime) -> Cycles {
        Cycles(t.as_ps().div_ceil(self.period_ps))
    }

    /// Returns the next clock edge at or after `t`.
    pub const fn next_edge(self, t: SimTime) -> SimTime {
        let p = self.period_ps;
        SimTime::from_ps(t.as_ps().div_ceil(p) * p)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mhz = 1_000_000.0 / self.period_ps as f64;
        if mhz >= 1000.0 {
            write!(f, "{:.3}GHz", mhz / 1000.0)
        } else {
            write!(f, "{mhz:.1}MHz")
        }
    }
}

/// Common clock domains of the modelled system, as in the paper.
pub mod clocks {
    use super::Frequency;

    /// ConTutto FPGA fabric clock: 250 MHz (paper §3.3).
    pub const FPGA_FABRIC: Frequency = Frequency::from_mhz(250);
    /// POWER8 nest / memory-bus clock: 2 GHz (paper §3.3: "we run the
    /// memory bus at 2 GHz"; 1 fabric cycle = 8 bus cycles).
    pub const POWER_BUS: Frequency = Frequency::from_ghz(2);
    /// Centaur internal clock, ~2.4 GHz (4:1 mux on a 9.6 Gb/s link).
    pub const CENTAUR_CORE: Frequency = Frequency::from_period_ps(417);
    /// DDR3-1600 I/O clock (800 MHz).
    pub const DDR3_IO: Frequency = Frequency::from_mhz(800);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1000));
    }

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ns(), 14);
        assert_eq!((a - b).as_ns(), 6);
        assert_eq!((a * 3).as_ns(), 30);
        assert_eq!((a / 2).as_ns(), 5);
        assert_eq!(a.saturating_sub(SimTime::from_ns(20)), SimTime::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_ns(6)));
    }

    #[test]
    fn time_min_max_sum() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total.as_ns(), 18);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ps(5).to_string(), "5ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5.000ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn frequency_period() {
        assert_eq!(Frequency::from_mhz(250).period(), SimTime::from_ps(4000));
        assert_eq!(Frequency::from_ghz(2).period(), SimTime::from_ps(500));
        assert_eq!(Frequency::from_mhz(250).as_mhz(), 250);
    }

    #[test]
    fn cycles_to_time_and_back() {
        let f = Frequency::from_mhz(250);
        assert_eq!(f.cycles_to_time(Cycles(6)), SimTime::from_ns(24));
        assert_eq!(f.time_to_cycles_ceil(SimTime::from_ns(24)), Cycles(6));
        // mid-cycle arrival rounds up
        assert_eq!(f.time_to_cycles_ceil(SimTime::from_ns(23)), Cycles(6));
        assert_eq!(f.time_to_cycles_ceil(SimTime::from_ps(1)), Cycles(1));
    }

    #[test]
    fn next_edge_alignment() {
        let f = Frequency::from_mhz(250); // 4 ns period
        assert_eq!(f.next_edge(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(f.next_edge(SimTime::from_ns(1)), SimTime::from_ns(4));
        assert_eq!(f.next_edge(SimTime::from_ns(4)), SimTime::from_ns(4));
        assert_eq!(f.next_edge(SimTime::from_ns(5)), SimTime::from_ns(8));
    }

    #[test]
    fn paper_clock_relationships() {
        // One fabric cycle equals 8 memory-bus cycles (paper §3.3).
        let fabric = clocks::FPGA_FABRIC.period();
        let bus = clocks::POWER_BUS.period();
        assert_eq!(fabric.as_ps() / bus.as_ps(), 8);
        // One knob step is 6 fabric cycles = 24 ns (paper §4.1).
        assert_eq!(
            clocks::FPGA_FABRIC.cycles_to_time(Cycles(6)),
            SimTime::from_ns(24)
        );
    }

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(9) - Cycles(4), Cycles(5));
        assert_eq!(Cycles(3) * 4, Cycles(12));
        assert_eq!(Cycles(7).count(), 7);
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
    }
}
