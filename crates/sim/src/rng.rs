//! Deterministic pseudo-random number generation for the simulator.
//!
//! Every stochastic element of the reproduction (bit-error injection,
//! link-training lock, workload shuffles) must be bit-reproducible
//! across runs and across machines, because trace diffing is the
//! debugging methodology of the whole codebase: same seed ⇒ same
//! trace. An external RNG crate can silently change its stream between
//! versions; this small generator is part of the kernel so the stream
//! is frozen with the repository.
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna)
//! seeded through SplitMix64, which is well distributed even for
//! small consecutive seeds like 0, 1, 2.
//!
//! # Example
//!
//! ```
//! use contutto_sim::SimRng;
//!
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographically secure — it exists for reproducible
/// simulation stimulus only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams, forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates a generator for a named sub-stream of `seed`.
    ///
    /// Both inputs pass through SplitMix64 before seeding, so
    /// `(seed, 0)`, `(seed, 1)`, … produce decorrelated streams and
    /// `seed_from_stream(s, n)` never collides with
    /// `seed_from_u64(s + n)` in any systematic way. Used to give each
    /// independent consumer (plan generator, workload, per-port
    /// injectors) its own frozen stream derived from one campaign seed.
    pub fn seed_from_stream(seed: u64, stream: u64) -> Self {
        let mut sm = seed;
        let a = splitmix64(&mut sm);
        let mut sm = stream ^ 0xA076_1D64_78BD_642F;
        let b = splitmix64(&mut sm);
        Self::seed_from_u64(a ^ b.rotate_left(17))
    }

    /// Splits off an independent child generator, advancing `self` by
    /// one output. The child's stream is decorrelated from the
    /// parent's continuation, so a plan generator can hand sub-streams
    /// to actions without the number of draws per action affecting
    /// later actions.
    pub fn split(&mut self) -> SimRng {
        Self::seed_from_u64(self.next_u64())
    }

    /// The raw internal state, for snapshotting. Restoring via
    /// [`SimRng::from_state`] continues the stream exactly where it
    /// left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured state.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }

    /// A uniform value in `[0, n)` via the widening-multiply map.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (an empty range has no element to return).
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample an empty range");
        range.start + self.gen_below(range.end - range.start)
    }

    /// A uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = SimRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
        assert!((0..1000).all(|_| r.gen_index(1) == 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SimRng::seed_from_u64(0).gen_below(0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_validates_p() {
        let _ = SimRng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let shuffled = |seed| {
            let mut v: Vec<u32> = (0..100).collect();
            SimRng::seed_from_u64(seed).shuffle(&mut v);
            v
        };
        let a = shuffled(9);
        assert_eq!(a, shuffled(9));
        assert_ne!(a, (0..100).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_children_are_decorrelated_and_deterministic() {
        let mut parent = SimRng::seed_from_u64(11);
        let mut child = parent.split();
        let mut parent2 = SimRng::seed_from_u64(11);
        let mut child2 = parent2.split();
        for _ in 0..100 {
            assert_eq!(child.next_u64(), child2.next_u64());
            assert_eq!(parent.next_u64(), parent2.next_u64());
        }
        // The child does not shadow the parent's continuation.
        let mut p = SimRng::seed_from_u64(12);
        let mut c = p.split();
        let same = (0..64).filter(|_| p.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn named_streams_are_independent() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_stream(7, 0);
        let mut c = SimRng::seed_from_stream(7, 1);
        let ab = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(ab, 0);
        let mut b2 = SimRng::seed_from_stream(7, 0);
        let bc = (0..64).filter(|_| b2.next_u64() == c.next_u64()).count();
        assert_eq!(bc, 0);
        // Same (seed, stream) reproduces.
        let mut x = SimRng::seed_from_stream(9, 3);
        let mut y = SimRng::seed_from_stream(9, 3);
        assert!((0..100).all(|_| x.next_u64() == y.next_u64()));
    }

    #[test]
    fn stream_is_frozen() {
        // Guards against accidental algorithm changes: these values are
        // part of the repository's determinism contract.
        let mut r = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }
}
