//! Property-based tests for the simulation kernel.

use proptest::prelude::*;

use contutto_sim::{stats, Cycles, EventQueue, Frequency, Histogram, LatencyStats, SimTime};

proptest! {
    #[test]
    fn event_queue_matches_reference_model(
        ops in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 1..200)
    ) {
        // Reference: stable sort by (time, insertion index).
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut cancelled = Vec::new();
        let mut ids = Vec::new();
        for (i, (t, cancel_one)) in ops.iter().enumerate() {
            let id = q.schedule(SimTime::from_ps(*t), i);
            ids.push((id, *t, i));
            reference.push((*t, i));
            if *cancel_one && !ids.is_empty() {
                // Cancel a deterministic earlier event.
                let victim = ids[i / 2].0;
                if q.cancel(victim) {
                    cancelled.push(ids[i / 2].2);
                }
            }
        }
        reference.retain(|(_, i)| !cancelled.contains(i));
        reference.sort_by_key(|(t, i)| (*t, *i));
        let mut popped = Vec::new();
        while let Some((t, v)) = q.pop() {
            popped.push((t.as_ps(), v));
        }
        prop_assert_eq!(popped, reference);
    }

    #[test]
    fn frequency_cycle_roundtrip(mhz in 1u64..5000, cycles in 0u64..1_000_000) {
        let f = Frequency::from_mhz(mhz);
        let t = f.cycles_to_time(Cycles(cycles));
        prop_assert_eq!(f.time_to_cycles_ceil(t), Cycles(cycles.max(0)));
    }

    #[test]
    fn next_edge_is_aligned_and_minimal(mhz in 1u64..5000, ps in 0u64..10_000_000) {
        let f = Frequency::from_mhz(mhz);
        let t = SimTime::from_ps(ps);
        let edge = f.next_edge(t);
        prop_assert!(edge >= t);
        prop_assert_eq!(edge.as_ps() % f.period().as_ps(), 0);
        prop_assert!(edge.as_ps() < ps + f.period().as_ps());
    }

    #[test]
    fn latency_stats_merge_equals_combined(a in proptest::collection::vec(0u64..10_000_000, 1..50),
                                           b in proptest::collection::vec(0u64..10_000_000, 1..50)) {
        let mut sa = LatencyStats::new();
        for v in &a { sa.record(SimTime::from_ps(*v)); }
        let mut sb = LatencyStats::new();
        for v in &b { sb.record(SimTime::from_ps(*v)); }
        let mut merged = sa.clone();
        merged.merge(&sb);
        let mut combined = LatencyStats::new();
        for v in a.iter().chain(&b) { combined.record(SimTime::from_ps(*v)); }
        prop_assert_eq!(merged.count(), combined.count());
        prop_assert_eq!(merged.min(), combined.min());
        prop_assert_eq!(merged.max(), combined.max());
        prop_assert_eq!(merged.sum(), combined.sum());
    }

    #[test]
    fn histogram_quantiles_monotone(values in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut h = Histogram::new(10, 100);
        for v in &values { h.record(*v); }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q100 = h.quantile(1.0);
        if let (Some(a), Some(b)) = (q50, q90) { prop_assert!(a <= b); }
        if let (Some(b), Some(c)) = (q90, q100) { prop_assert!(b <= c); }
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    #[test]
    fn throughput_is_linear_in_ops(ops in 1u64..1_000_000, secs in 1u64..100) {
        let t = SimTime::from_secs(secs);
        let single = stats::ops_per_sec(ops, t);
        let double = stats::ops_per_sec(ops * 2, t);
        prop_assert!((double - single * 2.0).abs() < 1e-6 * double.max(1.0));
    }
}
