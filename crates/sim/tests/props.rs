//! Randomized property tests for the simulation kernel, driven by the
//! kernel's own deterministic [`SimRng`] (fixed seeds, fixed case
//! counts — every run exercises the same inputs).

use contutto_sim::{
    stats, Cycles, EventQueue, Frequency, Histogram, LatencyStats, SimRng, SimTime,
};

const CASES: u64 = 64;

#[test]
fn event_queue_matches_reference_model() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x51A7_0000 + case);
        let n = rng.gen_range(1..200) as usize;
        let ops: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.gen_range(0..1_000_000), rng.gen_bool(0.5)))
            .collect();
        // Reference: stable sort by (time, insertion index).
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut cancelled = Vec::new();
        let mut ids = Vec::new();
        for (i, (t, cancel_one)) in ops.iter().enumerate() {
            let id = q.schedule(SimTime::from_ps(*t), i);
            ids.push((id, *t, i));
            reference.push((*t, i));
            if *cancel_one && !ids.is_empty() {
                // Cancel a deterministic earlier event.
                let victim = ids[i / 2].0;
                if q.cancel(victim) {
                    cancelled.push(ids[i / 2].2);
                }
            }
        }
        reference.retain(|(_, i)| !cancelled.contains(i));
        reference.sort_by_key(|(t, i)| (*t, *i));
        let mut popped = Vec::new();
        while let Some((t, v)) = q.pop() {
            popped.push((t.as_ps(), v));
        }
        assert_eq!(popped, reference, "case {case}");
    }
}

#[test]
fn frequency_cycle_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x51A7_1000);
    for case in 0..CASES * 4 {
        let mhz = rng.gen_range(1..5000);
        let cycles = rng.gen_range(0..1_000_000);
        let f = Frequency::from_mhz(mhz);
        let t = f.cycles_to_time(Cycles(cycles));
        assert_eq!(f.time_to_cycles_ceil(t), Cycles(cycles), "case {case}");
    }
}

#[test]
fn next_edge_is_aligned_and_minimal() {
    let mut rng = SimRng::seed_from_u64(0x51A7_2000);
    for case in 0..CASES * 4 {
        let f = Frequency::from_mhz(rng.gen_range(1..5000));
        let ps = rng.gen_range(0..10_000_000);
        let t = SimTime::from_ps(ps);
        let edge = f.next_edge(t);
        assert!(edge >= t, "case {case}");
        assert_eq!(edge.as_ps() % f.period().as_ps(), 0, "case {case}");
        assert!(edge.as_ps() < ps + f.period().as_ps(), "case {case}");
    }
}

#[test]
fn latency_stats_merge_equals_combined() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x51A7_3000 + case);
        let sample = |rng: &mut SimRng| -> Vec<u64> {
            let n = rng.gen_range(1..50) as usize;
            (0..n).map(|_| rng.gen_range(0..10_000_000)).collect()
        };
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        let mut sa = LatencyStats::new();
        for v in &a {
            sa.record(SimTime::from_ps(*v));
        }
        let mut sb = LatencyStats::new();
        for v in &b {
            sb.record(SimTime::from_ps(*v));
        }
        let mut merged = sa.clone();
        merged.merge(&sb);
        let mut combined = LatencyStats::new();
        for v in a.iter().chain(&b) {
            combined.record(SimTime::from_ps(*v));
        }
        assert_eq!(merged.count(), combined.count(), "case {case}");
        assert_eq!(merged.min(), combined.min(), "case {case}");
        assert_eq!(merged.max(), combined.max(), "case {case}");
        assert_eq!(merged.sum(), combined.sum(), "case {case}");
    }
}

#[test]
fn histogram_quantiles_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x51A7_4000 + case);
        let n = rng.gen_range(1..200) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
        let mut h = Histogram::new(10, 100);
        for v in &values {
            h.record(*v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q100 = h.quantile(1.0);
        if let (Some(a), Some(b)) = (q50, q90) {
            assert!(a <= b, "case {case}");
        }
        if let (Some(b), Some(c)) = (q90, q100) {
            assert!(b <= c, "case {case}");
        }
        assert_eq!(h.count(), values.len() as u64, "case {case}");
    }
}

#[test]
fn throughput_is_linear_in_ops() {
    let mut rng = SimRng::seed_from_u64(0x51A7_5000);
    for case in 0..CASES * 4 {
        let ops = rng.gen_range(1..1_000_000);
        let t = SimTime::from_secs(rng.gen_range(1..100));
        let single = stats::ops_per_sec(ops, t);
        let double = stats::ops_per_sec(ops * 2, t);
        assert!(
            (double - single * 2.0).abs() < 1e-6 * double.max(1.0),
            "case {case}"
        );
    }
}
