//! The checkpoint campaign: snapshot/restore throughput plus the
//! prefix-reuse identity proof.
//!
//! Two halves, one contract:
//!
//! 1. **Throughput** — a steady-state testbed (stores landed, loads
//!    in flight, tracer live) is snapshotted and restored in a tight
//!    loop; `BENCH_checkpoint.json` records snapshots/sec and
//!    restores/sec behind the standard ≥0.8× regression gate. The
//!    image size is byte-deterministic, so it doubles as the
//!    baseline-comparability key.
//!
//! 2. **Prefix reuse** — the power crash-point sweep is run twice,
//!    straight and with [`crate::power::CampaignConfig::reuse_prefix`]
//!    set. The reused sweep must reproduce the straight sweep
//!    *record-for-record* (outcome, fingerprint, determinism verdict,
//!    rendered table) while simulating strictly fewer stores — the
//!    structural proof that the prefix really was skipped, not
//!    re-simulated. Wall-clock for both sweeps is recorded so the
//!    saving is visible, but only identity is gated: host timing is
//!    noise, simulated work is not.

use std::fmt::Write as _;
use std::time::Instant;

use contutto_core::{ContuttoConfig, MemoryPopulation};
use contutto_dmi::command::CacheLine;
use contutto_power8::firmware::layouts;
use contutto_power8::system::Power8System;

use crate::power;

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds for the prefix-reuse identity sweep.
    pub seeds: Vec<u64>,
    /// Stores per power-sweep run (crash points stride across them).
    pub lines: u64,
    /// Crash-point stride for the power sweep.
    pub cut_stride: u64,
    /// Snapshot / restore iterations for the throughput half.
    pub reps: u32,
}

impl CampaignConfig {
    /// The quick `scripts/verify.sh` gate.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1],
            lines: 8,
            cut_stride: 4,
            reps: 32,
        }
    }

    /// The full sweep.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: vec![1, 2, 3],
            lines: 16,
            cut_stride: 4,
            reps: 256,
        }
    }
}

/// What the campaign measured and proved.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Whole-system snapshots taken per host-second.
    pub snapshots_per_sec: f64,
    /// Restores (into an already-booted twin) per host-second.
    pub restores_per_sec: f64,
    /// Size of the testbed image — deterministic, used as the
    /// baseline-comparability key.
    pub snapshot_bytes: u64,
    /// Host seconds for the straight power sweep.
    pub straight_secs: f64,
    /// Host seconds for the prefix-reused power sweep.
    pub reused_secs: f64,
    /// Stores simulated by the straight sweep.
    pub stores_straight: u64,
    /// Stores simulated by the reused sweep (strictly fewer).
    pub stores_reused: u64,
    /// Identity / contract breaches found while running.
    pub failures: Vec<String>,
}

impl CampaignReport {
    /// Wall-clock speedup of the reused sweep over the straight one.
    pub fn speedup(&self) -> f64 {
        if self.reused_secs > 0.0 {
            self.straight_secs / self.reused_secs
        } else {
            0.0
        }
    }

    /// Contract breaches plus regression-gate failures against a
    /// previous `BENCH_checkpoint.json`.
    pub fn violations(&self, baseline_json: Option<&str>) -> Vec<String> {
        let mut out = self.failures.clone();
        if self.stores_reused >= self.stores_straight {
            out.push(format!(
                "checkpoint: reused sweep simulated {} stores, straight {} — \
                 the prefix was not skipped",
                self.stores_reused, self.stores_straight
            ));
        }
        if let Some(json) = baseline_json {
            if let Some(b) = parse_baseline(json) {
                // Only gate against a baseline of the same image — a
                // format or testbed change resets the comparison.
                if b.snapshot_bytes == self.snapshot_bytes {
                    if self.snapshots_per_sec < 0.8 * b.snapshots_per_sec {
                        out.push(format!(
                            "checkpoint: {:.1} snapshots/sec regressed >20% from \
                             baseline {:.1}",
                            self.snapshots_per_sec, b.snapshots_per_sec
                        ));
                    }
                    if self.restores_per_sec < 0.8 * b.restores_per_sec {
                        out.push(format!(
                            "checkpoint: {:.1} restores/sec regressed >20% from \
                             baseline {:.1}",
                            self.restores_per_sec, b.restores_per_sec
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders the human summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "checkpoint campaign");
        out.push_str(&"-".repeat(60));
        out.push('\n');
        let _ = writeln!(
            out,
            "snapshot throughput   {:>12.1} snapshots/sec ({} bytes/image)",
            self.snapshots_per_sec, self.snapshot_bytes
        );
        let _ = writeln!(
            out,
            "restore throughput    {:>12.1} restores/sec",
            self.restores_per_sec
        );
        let _ = writeln!(
            out,
            "power sweep straight  {:>12.3} s  ({} stores simulated)",
            self.straight_secs, self.stores_straight
        );
        let _ = writeln!(
            out,
            "power sweep reused    {:>12.3} s  ({} stores simulated)",
            self.reused_secs, self.stores_reused
        );
        let _ = writeln!(
            out,
            "prefix-reuse speedup  {:>12.2}x wall clock, {} of {} stores skipped",
            self.speedup(),
            self.stores_straight.saturating_sub(self.stores_reused),
            self.stores_straight
        );
        if self.failures.is_empty() {
            let _ = writeln!(out, "identity              reused sweep == straight sweep");
        } else {
            for f in &self.failures {
                let _ = writeln!(out, "FAILURE: {f}");
            }
        }
        out
    }

    /// Serializes the campaign aggregate (hand-rolled JSON).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"checkpoint\",\n  \
             \"snapshot_bytes\": {},\n  \
             \"snapshots_per_sec\": {:.3},\n  \
             \"restores_per_sec\": {:.3},\n  \
             \"straight_secs\": {:.3},\n  \
             \"reused_secs\": {:.3},\n  \
             \"prefix_reuse_speedup\": {:.3},\n  \
             \"stores_straight\": {},\n  \
             \"stores_reused\": {},\n  \
             \"violations\": {}\n}}\n",
            self.snapshot_bytes,
            self.snapshots_per_sec,
            self.restores_per_sec,
            self.straight_secs,
            self.reused_secs,
            self.speedup(),
            self.stores_straight,
            self.stores_reused,
            self.failures.len(),
        )
    }
}

/// Baseline numbers extracted from a previous `BENCH_checkpoint.json`.
struct Baseline {
    snapshot_bytes: u64,
    snapshots_per_sec: f64,
    restores_per_sec: f64,
}

/// Tolerant extractor: unparseable input yields no gate.
fn parse_baseline(json: &str) -> Option<Baseline> {
    let num = |key: &str| -> Option<f64> {
        let rest = json.split(key).nth(1)?;
        let text: String = rest
            .trim_start_matches([':', ' '])
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        text.parse().ok()
    };
    Some(Baseline {
        snapshot_bytes: num("\"snapshot_bytes\"")? as u64,
        snapshots_per_sec: num("\"snapshots_per_sec\"")?,
        restores_per_sec: num("\"restores_per_sec\"")?,
    })
}

/// Boots the throughput testbed: steady state with stores landed,
/// loads in flight and the tracer live — a snapshot with every
/// section populated, not an empty boot.
fn testbed(seed: u64) -> Power8System {
    let mut sys = Power8System::boot(
        layouts::one_contutto_six_cdimm(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        seed,
    )
    .expect("testbed boots");
    sys.enable_tracing(1 << 12);
    for i in 0..32u64 {
        sys.store_line(0x10_0000 + i * 128, CacheLine::patterned(seed * 97 + i))
            .expect("testbed store");
    }
    for i in 0..8u64 {
        sys.submit_load(0x10_0000 + i * 128).expect("testbed load");
    }
    sys
}

/// Runs the campaign.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut failures = Vec::new();
    let seed = 42;

    // -- Throughput half ------------------------------------------------
    let mut source = testbed(seed);
    let reps = cfg.reps.max(1);

    let started = Instant::now();
    let mut image = Vec::new();
    for _ in 0..reps {
        image = source.snapshot();
    }
    let snapshots_per_sec = f64::from(reps) / started.elapsed().as_secs_f64().max(1e-9);
    let snapshot_bytes = image.len() as u64;

    let mut twin = testbed(seed);
    let started = Instant::now();
    for _ in 0..reps {
        if let Err(e) = twin.restore(&image) {
            failures.push(format!("checkpoint: throughput restore failed: {e}"));
            break;
        }
    }
    let restores_per_sec = f64::from(reps) / started.elapsed().as_secs_f64().max(1e-9);
    if twin.tracer().fingerprint() != source.tracer().fingerprint() {
        failures.push(
            "checkpoint: restored twin's trace fingerprint diverges from the source".to_string(),
        );
    }

    // -- Prefix-reuse identity half -------------------------------------
    let mut pcfg = power::CampaignConfig {
        seeds: cfg.seeds.clone(),
        lines: cfg.lines,
        cut_stride: cfg.cut_stride.max(1),
        // Keep every record: the identity proof compares rings.
        ring_capacity: cfg.seeds.len().max(1) * (cfg.lines / cfg.cut_stride.max(1) + 2) as usize,
        reuse_prefix: false,
    };
    let started = Instant::now();
    let straight = power::run_campaign(&pcfg);
    let straight_secs = started.elapsed().as_secs_f64();

    pcfg.reuse_prefix = true;
    let started = Instant::now();
    let reused = power::run_campaign(&pcfg);
    let reused_secs = started.elapsed().as_secs_f64();

    for v in straight.violations() {
        failures.push(format!("checkpoint: straight power sweep: {v}"));
    }
    for v in reused.violations() {
        failures.push(format!("checkpoint: reused power sweep: {v}"));
    }
    if straight.render_table() != reused.render_table() {
        failures.push(
            "checkpoint: reused power sweep table differs from the straight sweep".to_string(),
        );
    }
    for (a, b) in straight.scenarios.iter().zip(&reused.scenarios) {
        if a.ring.len() != b.ring.len() {
            failures.push(format!(
                "checkpoint: {:?} kept {} records straight vs {} reused",
                a.scenario,
                a.ring.len(),
                b.ring.len()
            ));
            continue;
        }
        for (ra, rb) in a.ring.iter().zip(&b.ring) {
            if ra.fingerprint != rb.fingerprint {
                failures.push(format!(
                    "checkpoint: {:?} seed {} cut {}: fingerprint {:016x} straight \
                     vs {:016x} reused",
                    a.scenario, ra.seed, ra.cut_after, ra.fingerprint, rb.fingerprint
                ));
            }
            if ra.outcome != rb.outcome {
                failures.push(format!(
                    "checkpoint: {:?} seed {} cut {}: outcome diverges after restore",
                    a.scenario, ra.seed, ra.cut_after
                ));
            }
            if !rb.deterministic {
                failures.push(format!(
                    "checkpoint: {:?} seed {} cut {}: restore-twice run was not \
                     deterministic",
                    a.scenario, ra.seed, ra.cut_after
                ));
            }
        }
    }

    CampaignReport {
        snapshots_per_sec,
        restores_per_sec,
        snapshot_bytes,
        straight_secs,
        reused_secs,
        stores_straight: straight.stores_executed,
        stores_reused: reused.stores_executed,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_clean_and_skips_the_prefix() {
        let report = run_campaign(&CampaignConfig::smoke());
        let violations = report.violations(None);
        assert!(violations.is_empty(), "{}", violations.join("\n"));
        assert!(report.stores_reused < report.stores_straight);
        assert!(report.snapshots_per_sec > 0.0);
        assert!(report.restores_per_sec > 0.0);
        let table = report.render_table();
        assert!(table.contains("prefix-reuse speedup"), "{table}");
    }

    #[test]
    fn regression_gate_fires_against_an_inflated_baseline() {
        let report = CampaignReport {
            snapshots_per_sec: 10.0,
            restores_per_sec: 10.0,
            snapshot_bytes: 1234,
            straight_secs: 1.0,
            reused_secs: 0.5,
            stores_straight: 100,
            stores_reused: 10,
            failures: Vec::new(),
        };
        let baseline = "{\n  \"benchmark\": \"checkpoint\",\n  \
                        \"snapshot_bytes\": 1234,\n  \
                        \"snapshots_per_sec\": 100.0,\n  \
                        \"restores_per_sec\": 100.0\n}";
        let violations = report.violations(Some(baseline));
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("snapshots/sec regressed"));
        assert!(violations[1].contains("restores/sec regressed"));
    }

    #[test]
    fn regression_gate_skips_baselines_of_a_different_image() {
        let report = CampaignReport {
            snapshots_per_sec: 10.0,
            restores_per_sec: 10.0,
            snapshot_bytes: 1234,
            straight_secs: 1.0,
            reused_secs: 0.5,
            stores_straight: 100,
            stores_reused: 10,
            failures: Vec::new(),
        };
        let baseline = "{\n  \"snapshot_bytes\": 9999,\n  \
                        \"snapshots_per_sec\": 100.0,\n  \
                        \"restores_per_sec\": 100.0\n}";
        assert!(report.violations(Some(baseline)).is_empty());
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let report = CampaignReport {
            snapshots_per_sec: 123.456,
            restores_per_sec: 78.9,
            snapshot_bytes: 4096,
            straight_secs: 2.0,
            reused_secs: 1.0,
            stores_straight: 100,
            stores_reused: 10,
            failures: Vec::new(),
        };
        let b = parse_baseline(&report.to_json()).expect("parses");
        assert_eq!(b.snapshot_bytes, 4096);
        assert!((b.snapshots_per_sec - 123.456).abs() < 1e-6);
        assert!((b.restores_per_sec - 78.9).abs() < 1e-6);
    }

    #[test]
    fn a_failed_structural_skip_is_a_violation() {
        let report = CampaignReport {
            snapshots_per_sec: 10.0,
            restores_per_sec: 10.0,
            snapshot_bytes: 1234,
            straight_secs: 1.0,
            reused_secs: 1.0,
            stores_straight: 100,
            stores_reused: 100,
            failures: Vec::new(),
        };
        let violations = report.violations(None);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("prefix was not skipped"));
    }
}
