//! # contutto-bench
//!
//! Experiment runners that regenerate **every table and figure** of
//! the ConTutto paper from the simulated system. The `tables` binary
//! prints them; the benches under `benches/` time them with the
//! in-repo [`harness`].
//!
//! | function | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — FPGA resource utilization |
//! | [`table2`] | Table 2 — Centaur latency knobs vs DB2 BLU runtime |
//! | [`figure6`] | Figure 6 — SPEC CINT2006 ratios on Centaur settings |
//! | [`table3`] | Table 3 — latency configurations (Centaur vs ConTutto + knob) |
//! | [`figure7`] | Figure 7 — SPEC ratios on ConTutto (Centaur baseline) |
//! | [`figure8`] | Figure 8 — NVM endurance comparison |
//! | [`table4`] | Table 4 — GPFS IOPS per persistent store |
//! | [`figure9_10`] | Figures 9 & 10 — FIO IOPS and latency per technology/attach point |
//! | [`table5`] | Table 5 — near-memory acceleration vs software |
//!
//! Every latency used by the application models is **measured** with
//! the dependent-load probe on the simulated channel of the
//! corresponding configuration — the same methodology as the paper.

pub mod chaos;
pub mod checkpoint;
pub mod failover;
pub mod faults;
pub mod harness;
pub mod media;
pub mod overload;
pub mod pipeline;
pub mod power;
pub mod traffic;

use contutto_centaur::{Centaur, CentaurConfig};
use contutto_core::accel::block::{BlockAccelDriver, BlockOp, ControlBlock};
use contutto_core::avalon::AvalonBus;
use contutto_core::memctl::{MemoryController, MemoryKind};
use contutto_core::resources::ResourceReport;
use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_memdev::endurance::{figure8_dataset, EnduranceRow};
use contutto_power8::channel::{ChannelConfig, DmiChannel};
use contutto_power8::latency::{LatencyProbe, MeasurementLevel};
use contutto_sim::SimTime;
use contutto_storage::blockdev::{
    mram_contutto_device, nvdimm_contutto_device, BlockDevice, PcieCard,
};
use contutto_workloads::baseline::SoftwareBaselines;
use contutto_workloads::db2::Db2Workload;
use contutto_workloads::fio::{FioEngine, FioPattern, FioResult};
use contutto_workloads::gpfs::{GpfsExperiment, GpfsRow};
use contutto_workloads::spec::{self, SpecModel};

/// Builds a channel for a Centaur configuration.
pub fn centaur_channel(cfg: CentaurConfig) -> DmiChannel {
    DmiChannel::new(
        ChannelConfig::centaur(),
        Box::new(Centaur::new(cfg, 8 << 30)),
    )
}

/// Builds a channel for a ConTutto configuration (8 GB DRAM).
pub fn contutto_channel(cfg: ContuttoConfig) -> DmiChannel {
    DmiChannel::new(
        ChannelConfig::contutto(),
        Box::new(ConTutto::new(cfg, MemoryPopulation::dram_8gb())),
    )
}

// ---------------------------------------------------------------- Table 1

/// Table 1: the FPGA resource report (per-block inventory + totals).
pub fn table1() -> ResourceReport {
    ResourceReport::for_base_design()
}

// ---------------------------------------------------------------- Table 2

/// One Table 2 row: a Centaur setting, its measured latency and the
/// DB2 BLU suite runtime at that latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Setting label.
    pub setting: &'static str,
    /// Measured latency to memory (nest level), ns.
    pub latency_ns: f64,
    /// DB2 BLU 29-query runtime, seconds.
    pub db2_seconds: f64,
}

/// Table 2: Centaur latency knobs vs DB2 BLU runtime.
pub fn table2() -> Vec<Table2Row> {
    let probe = LatencyProbe::default();
    let db2 = Db2Workload::paper_suite();
    CentaurConfig::table2_settings()
        .into_iter()
        .map(|cfg| {
            let setting = cfg.name;
            let mut ch = centaur_channel(cfg);
            let latency = probe.measure(&mut ch, MeasurementLevel::Nest);
            Table2Row {
                setting,
                latency_ns: latency.as_ns_f64(),
                db2_seconds: db2.total_seconds(latency),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 6

/// One series point for Figures 6/7: a benchmark's ratio at a setting.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecPoint {
    /// Configuration label.
    pub setting: String,
    /// Measured latency, ns.
    pub latency_ns: f64,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// SPEC ratio.
    pub ratio: f64,
}

/// Figure 6: SPEC CINT2006 ratios across the Centaur settings.
pub fn figure6() -> Vec<SpecPoint> {
    let probe = LatencyProbe::default();
    let model = SpecModel::default();
    let mut points = Vec::new();
    let settings = CentaurConfig::table2_settings();
    let base_latency = {
        let mut ch = centaur_channel(settings[0].clone());
        probe.measure(&mut ch, MeasurementLevel::Nest)
    };
    for cfg in settings {
        let name = cfg.name;
        let mut ch = centaur_channel(cfg);
        let latency = probe.measure(&mut ch, MeasurementLevel::Nest);
        for b in spec::suite() {
            points.push(SpecPoint {
                setting: name.to_string(),
                latency_ns: latency.as_ns_f64(),
                benchmark: b.name,
                ratio: model.ratio(&b, latency, base_latency),
            });
        }
    }
    points
}

// ---------------------------------------------------------------- Table 3

/// One Table 3 row: a configuration and its measured latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Configuration label.
    pub configuration: String,
    /// Measured software-level latency, ns.
    pub latency_ns: f64,
}

/// Table 3: the latency configurations — optimized Centaur,
/// ConTutto base and the knob settings (plus the functionality-matched
/// Centaur the prose compares against).
pub fn table3() -> Vec<Table3Row> {
    let probe = LatencyProbe::default();
    let mut rows = Vec::new();
    let mut ch = centaur_channel(CentaurConfig::optimized());
    rows.push(Table3Row {
        configuration: "Centaur".into(),
        latency_ns: probe
            .measure(&mut ch, MeasurementLevel::Software)
            .as_ns_f64(),
    });
    for knob in [0u8, 2, 6, 7] {
        let mut ch = contutto_channel(ContuttoConfig::with_knob(knob));
        let label = if knob == 0 {
            "ConTutto base".to_string()
        } else {
            format!("ConTutto + knob @ {knob}")
        };
        rows.push(Table3Row {
            configuration: label,
            latency_ns: probe
                .measure(&mut ch, MeasurementLevel::Software)
                .as_ns_f64(),
        });
    }
    let mut ch = centaur_channel(CentaurConfig::contutto_matched());
    rows.push(Table3Row {
        configuration: "Centaur (matched to ConTutto functions)".into(),
        latency_ns: probe
            .measure(&mut ch, MeasurementLevel::Software)
            .as_ns_f64(),
    });
    rows
}

// ---------------------------------------------------------------- Figure 7

/// Figure 7: SPEC ratios on ConTutto latencies with Centaur baseline.
pub fn figure7() -> Vec<SpecPoint> {
    let probe = LatencyProbe::default();
    let model = SpecModel::default();
    let base_latency = {
        let mut ch = centaur_channel(CentaurConfig::optimized());
        probe.measure(&mut ch, MeasurementLevel::Software)
    };
    let mut points = Vec::new();
    for knob in [0u8, 2, 6, 7] {
        let cfg = ContuttoConfig::with_knob(knob);
        let name = cfg.name;
        let mut ch = contutto_channel(cfg);
        let latency = probe.measure(&mut ch, MeasurementLevel::Software);
        for b in spec::suite() {
            points.push(SpecPoint {
                setting: name.to_string(),
                latency_ns: latency.as_ns_f64(),
                benchmark: b.name,
                ratio: model.ratio(&b, latency, base_latency),
            });
        }
    }
    points
}

/// The Figure 7 summary statistics at the slowest knob, with latencies
/// measured in-simulator.
pub fn figure7_summary() -> spec::DegradationSummary {
    let probe = LatencyProbe::default();
    let base = {
        let mut ch = centaur_channel(CentaurConfig::optimized());
        probe.measure(&mut ch, MeasurementLevel::Software)
    };
    let slow = {
        let mut ch = contutto_channel(ContuttoConfig::with_knob(7));
        probe.measure(&mut ch, MeasurementLevel::Software)
    };
    spec::summarize(&SpecModel::default(), slow, base)
}

// ---------------------------------------------------------------- Figure 8

/// Figure 8: the endurance dataset.
pub fn figure8() -> Vec<EnduranceRow> {
    figure8_dataset()
}

// ---------------------------------------------------------------- Table 4

/// Table 4: GPFS IOPS rows.
pub fn table4() -> Vec<GpfsRow> {
    GpfsExperiment::default().table4()
}

// ------------------------------------------------------------ Figures 9/10

/// The FIO device set of Figures 9/10.
pub fn fio_devices() -> Vec<Box<dyn BlockDevice>> {
    vec![
        Box::new(PcieCard::flash_x4()),
        Box::new(PcieCard::nvram()),
        Box::new(PcieCard::mram()),
        Box::new(nvdimm_contutto_device()),
        Box::new(mram_contutto_device()),
    ]
}

/// Figures 9 and 10: FIO results (IOPS and latency) for every device
/// and both patterns.
pub fn figure9_10() -> Vec<FioResult> {
    let engine = FioEngine::default();
    let mut results = Vec::new();
    for pattern in [FioPattern::RandRead, FioPattern::RandWrite] {
        for mut dev in fio_devices() {
            results.push(engine.run(dev.as_mut(), pattern));
        }
    }
    results
}

// --------------------------------------------------- MRAM generations

/// One row of the iMTJ → pMTJ comparison (paper §4.2: "we have since
/// migrated to pMTJ which shows improved power/performance
/// characteristics").
#[derive(Debug, Clone, PartialEq)]
pub struct MramGenRow {
    /// Generation label.
    pub generation: &'static str,
    /// 64 B read latency, ns.
    pub read_ns: f64,
    /// 64 B write latency, ns.
    pub write_ns: f64,
    /// Write energy per 64 B line, pJ.
    pub write_energy_pj: f64,
}

/// The MRAM generation comparison, from the device models.
pub fn mram_generations() -> Vec<MramGenRow> {
    use contutto_memdev::MramGeneration;
    [
        ("iMTJ (initial demonstration)", MramGeneration::Imtj),
        ("pMTJ (migrated)", MramGeneration::Pmtj),
    ]
    .into_iter()
    .map(|(label, g)| MramGenRow {
        generation: label,
        read_ns: g.read_latency().as_ns_f64(),
        write_ns: g.write_latency().as_ns_f64(),
        write_energy_pj: g.write_energy_pj(),
    })
    .collect()
}

// ---------------------------------------------------------------- Table 5

/// One Table 5 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Accelerated function.
    pub function: &'static str,
    /// ConTutto throughput (unit in `unit`).
    pub contutto: f64,
    /// Software baseline throughput.
    pub software: f64,
    /// Unit label.
    pub unit: &'static str,
}

fn accel_bus() -> AvalonBus {
    AvalonBus::new(
        vec![
            MemoryController::new(MemoryKind::Ddr3Dram, 2 << 30),
            MemoryController::new(MemoryKind::Ddr3Dram, 2 << 30),
        ],
        5,
    )
}

/// Table 5: near-memory acceleration vs software, on a scaled-down
/// working set (64 MiB instead of 1 GB — throughput is size-invariant
/// past a few MiB, and the functional simulation moves real bytes).
pub fn table5() -> Vec<Table5Row> {
    let size: u64 = 64 << 20;
    let driver = BlockAccelDriver;
    let sw = SoftwareBaselines;

    // Memory copy.
    let mut avalon = accel_bus();
    let cb = driver
        .execute(
            &mut avalon,
            ControlBlock::new(BlockOp::Memcpy {
                src: 0,
                dst: 1 << 30,
                len: size,
            }),
            SimTime::ZERO,
        )
        .expect("memcpy control block");
    let memcpy_ct = cb.throughput_bytes_per_sec(SimTime::ZERO) / 1e9;
    let src = vec![0u8; 1 << 20];
    let mut dst = vec![0u8; 1 << 20];
    let (_, memcpy_sw) = sw.memcpy(&src, &mut dst);

    // Min/max.
    let mut avalon = accel_bus();
    let cb = driver
        .execute(
            &mut avalon,
            ControlBlock::new(BlockOp::MinMax { addr: 0, len: size }),
            SimTime::ZERO,
        )
        .expect("minmax control block");
    let minmax_ct = cb.throughput_bytes_per_sec(SimTime::ZERO) / 1e9;
    let values = vec![7u32; 1 << 18];
    let (_, _, _, minmax_sw) = sw.minmax(&values);

    // FFT.
    let mut avalon = accel_bus();
    let fft_len = 8 << 20; // 1 M samples
    let cb = driver
        .execute(
            &mut avalon,
            ControlBlock::new(BlockOp::Fft {
                src: 0,
                dst: 1 << 30,
                len: fft_len,
            }),
            SimTime::ZERO,
        )
        .expect("fft control block");
    let fft_samples = fft_len as f64 / 8.0;
    let fft_ct = fft_samples / cb.completed_at.as_secs_f64() / 1e9;
    let mut samples = vec![contutto_core::accel::fft::Complex32::default(); 8192];
    let (_, fft_sw) = sw.fft_blocks(&mut samples);

    vec![
        Table5Row {
            function: "memory copy (1 GB block)",
            contutto: memcpy_ct,
            software: memcpy_sw,
            unit: "GB/s",
        },
        Table5Row {
            function: "min+max search (256M integers)",
            contutto: minmax_ct,
            software: minmax_sw,
            unit: "GB/s",
        },
        Table5Row {
            function: "1024-pt FFT (8B complex samples)",
            contutto: fft_ct,
            software: fft_sw,
            unit: "Gsamples/s",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let total = table1().total();
        assert_eq!(total.alms, 136_856);
    }

    #[test]
    fn table3_shape() {
        let rows = table3();
        assert_eq!(rows.len(), 6);
        let centaur = rows[0].latency_ns;
        let base = rows[1].latency_ns;
        let knob7 = rows[4].latency_ns;
        assert!((92.0..102.0).contains(&centaur), "{centaur}");
        assert!((370.0..410.0).contains(&base), "{base}");
        assert!(knob7 > base + 150.0);
    }

    #[test]
    fn pmtj_improves_on_imtj_everywhere() {
        let rows = mram_generations();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].read_ns < rows[0].read_ns);
        assert!(rows[1].write_ns < rows[0].write_ns);
        assert!(rows[1].write_energy_pj < rows[0].write_energy_pj);
    }

    #[test]
    fn table5_factors() {
        let rows = table5();
        // Paper: 1.9x (memcpy), 21x (minmax), 1.9x (fft).
        let memcpy_factor = rows[0].contutto / rows[0].software;
        let minmax_factor = rows[1].contutto / rows[1].software;
        let fft_factor = rows[2].contutto / rows[2].software;
        assert!(
            (1.4..2.5).contains(&memcpy_factor),
            "memcpy {memcpy_factor}"
        );
        assert!(
            (15.0..30.0).contains(&minmax_factor),
            "minmax {minmax_factor}"
        );
        assert!((1.4..2.5).contains(&fft_factor), "fft {fft_factor}");
    }
}
