//! Metastable-failure campaign: does the system *stay* congested after
//! the trigger clears?
//!
//! A metastable failure needs two ingredients: a trigger that
//! temporarily cuts capacity, and a sustaining feedback loop — retries,
//! queue backlog — that keeps demand above the restored capacity after
//! the trigger is gone. This campaign builds exactly that trigger (a
//! slow-not-dead channel plus link noise for a bounded window, mid-run,
//! under open-loop load that does not slow down) and runs it against
//! two service-path configurations:
//!
//! * **naive** — client retries on, every overload defense off
//!   ([`OverloadConfig::off`]). The contract is that congestion
//!   *persists*: the recovery-phase p99 must stay more than
//!   [`NAIVE_CONGESTION_FACTOR`]× the steady-phase p99 after the
//!   trigger has cleared. If the naive row recovers cleanly the
//!   trigger is too weak and the campaign proves nothing.
//! * **protected** — the same trigger, same retrying clients, but with
//!   deadlines on every request and [`OverloadConfig::protective`]:
//!   admission control, the success-funded retry budget, per-channel
//!   circuit breakers, hedged reads against the mirror, brownout. The
//!   contract is the opposite: recovery-phase p99 back within
//!   [`PROTECTED_RECOVERY_FACTOR`]× of steady, with zero duplicate
//!   completions (a hedge and its loser must never both deliver).
//!
//! Both rows run over the mirrored failover testbed (hedging needs a
//! shadow copy), both run twice per seed, and fingerprint + full
//! report must be byte-identical — the defenses are deterministic
//! policy, not wall-clock heuristics.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use contutto_core::{ContuttoConfig, MemoryPopulation};
use contutto_power8::failover::FailoverMode;
use contutto_power8::firmware::layouts;
use contutto_power8::inject::FaultAction;
use contutto_power8::system::Power8System;
use contutto_power8::{HedgeConfig, OverloadConfig};
use contutto_sim::{MetricsRegistry, SimTime};
use contutto_workloads::traffic::{
    ArrivalProcess, LoopMode, Phase, TrafficConfig, TrafficEngine, TrafficReport,
};

use crate::failover::{SPARE_SLOT, VICTIM_SLOT};
use crate::faults::campaign_policy;

/// How long the trigger holds: the victim channel's in-flight window is
/// collapsed to one tag and its links are noisy for this long, then
/// both clear.
pub const FAULT_HOLD: SimTime = SimTime::from_us(25);

/// Per-frame corruption probability on the victim's links during the
/// trigger window — enough CRC replays to feed the ladder, not a
/// blackout.
pub const LINK_NOISE: f64 = 0.06;

/// Client retries per logical request, both rows. The naive row is not
/// allowed to win by simply not retrying — the retries *are* the
/// sustaining feedback loop under test.
pub const CLIENT_RETRIES: u32 = 4;

/// Request deadline in the protected row, relative to nominal arrival
/// — a small multiple of the steady-state p99 (~1.3 µs on this
/// testbed), the way latency-sensitive clients actually set them. The
/// deadline is what stops backlog survivors from being serviced long
/// after anyone wants the answer: a completion past its deadline is a
/// typed error, not a late success.
pub const DEADLINE: SimTime = SimTime::from_ns(1300);

/// Hedge threshold in the protected row. It must sit *below* the
/// deadline or the hedge can never rescue a read before the deadline
/// kills it.
pub const HEDGE_AFTER: SimTime = SimTime::from_ns(600);

/// The naive row must stay at least this many times worse than steady
/// in the recovery phase — the evidence that congestion outlived the
/// trigger.
pub const NAIVE_CONGESTION_FACTOR: u64 = 5;

/// The protected row must be back within this factor of steady p99 in
/// the recovery phase.
pub const PROTECTED_RECOVERY_FACTOR: u64 = 2;

/// Service-path configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Client retries, no defenses: must go metastable.
    Naive,
    /// Deadlines + the full overload policy: must recover.
    Protected,
}

impl Scenario {
    /// Every scenario, table order.
    pub fn all() -> Vec<Scenario> {
        vec![Scenario::Naive, Scenario::Protected]
    }

    /// Stable display name (also the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Naive => "naive",
            Scenario::Protected => "protected",
        }
    }

    fn overload_config(self) -> OverloadConfig {
        match self {
            Scenario::Naive => OverloadConfig::off(),
            Scenario::Protected => {
                let mut cfg = OverloadConfig::protective();
                cfg.hedge = Some(HedgeConfig {
                    after: HEDGE_AFTER,
                    ..HedgeConfig::default()
                });
                cfg
            }
        }
    }

    fn deadline(self) -> Option<SimTime> {
        match self {
            Scenario::Naive => None,
            Scenario::Protected => Some(DEADLINE),
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds swept per scenario.
    pub seeds: Vec<u64>,
    /// Requests issued per run.
    pub requests: u64,
}

impl CampaignConfig {
    /// The quick gate used by `scripts/verify.sh`.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1, 2],
            requests: 420,
        }
    }

    /// The full sweep.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: (1..=3).collect(),
            requests: 840,
        }
    }
}

/// The demand stream: open-loop Poisson (arrivals do not slow down when
/// the system congests — the precondition for metastability), zipfian
/// keys, mostly reads so the mirror can hedge.
fn traffic_config(scenario: Scenario, requests: u64, seed: u64) -> TrafficConfig {
    TrafficConfig {
        mode: LoopMode::Open,
        arrival: ArrivalProcess::Poisson,
        requests,
        users: 1000,
        per_user_rps: 6_000.0, // 6M rps aggregate of simulated time
        think: SimTime::from_us(1),
        keys: 2048,
        zipf_theta: 0.99,
        read_fraction: 0.9,
        mlp_window: 16,
        slo: SimTime::from_us(4),
        deadline: scenario.deadline(),
        client_retries: CLIENT_RETRIES,
        client_backoff: SimTime::from_us(2),
        seed,
    }
}

/// One scenario × seed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario that ran.
    pub scenario: Scenario,
    /// Seed parameterizing boot, arrivals and the trigger noise.
    pub seed: u64,
    /// The traffic engine's full report (histograms included).
    pub report: TrafficReport,
    /// The trigger fired AND cleared, and work completed under it.
    pub fault_fired: bool,
    /// Second same-seed run produced an identical fingerprint AND an
    /// identical report (histogram identity).
    pub deterministic: bool,
    /// Trace fingerprint of the run.
    pub fingerprint: u64,
    /// Full metrics snapshot (`system.overload.*` included).
    pub metrics: MetricsRegistry,
    /// Panic payload, if the run panicked (always a violation).
    pub panicked: Option<String>,
}

impl RunReport {
    /// Steady-phase p99 in picoseconds.
    pub fn steady_p99(&self) -> u64 {
        self.report.quantile(Phase::Steady, 0.99).as_ps()
    }

    /// Recovery-phase p99 in picoseconds.
    pub fn recovery_p99(&self) -> u64 {
        self.report.quantile(Phase::Recovery, 0.99).as_ps()
    }

    /// Whether this run breaks the campaign contract.
    pub fn is_violation(&self) -> bool {
        self.violation_reason().is_some()
    }

    /// The first broken clause, if any — the table and the gate both
    /// name it.
    pub fn violation_reason(&self) -> Option<String> {
        if self.panicked.is_some() {
            return Some("panicked".into());
        }
        if !self.deterministic {
            return Some("double run diverged (fingerprint or report)".into());
        }
        let r = &self.report;
        if r.completed == 0 {
            return Some("nothing completed".into());
        }
        if r.completed + r.errors + r.orphaned != r.submitted {
            return Some(format!(
                "accounting leak: {} + {} + {} != {}",
                r.completed, r.errors, r.orphaned, r.submitted
            ));
        }
        if !self.fault_fired {
            return Some("trigger never fired/cleared under load".into());
        }
        if r.duplicate_completions > 0 {
            return Some(format!(
                "{} duplicate completions (hedge double-apply)",
                r.duplicate_completions
            ));
        }
        if r.recovery.count() == 0 {
            return Some("no recovery-phase completions to judge".into());
        }
        if self.scenario == Scenario::Protected {
            // A protected row where no defense ever engaged proves only
            // that the trigger missed it.
            let shed: u64 = r.shed.iter().sum();
            let hedges: u64 = r.hedges.iter().sum();
            if shed + hedges + r.client_retries_denied == 0 {
                return Some("no defense engaged (nothing shed, hedged or denied)".into());
            }
        }
        None
    }
}

/// The campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every run, scenario-major.
    pub runs: Vec<RunReport>,
    /// Requests per run — part of the baseline key, so a smoke run
    /// never gates against a full-campaign baseline.
    pub requests: u64,
}

/// Drives one run: boots the mirrored testbed, arms the scenario's
/// overload policy, runs open-loop traffic with the trigger hook, and
/// snapshots metrics.
fn run_once(scenario: Scenario, seed: u64, requests: u64) -> RunReport {
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut sys = Power8System::boot_with_failover(
            layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            seed,
            FailoverMode::Mirrored {
                primary: VICTIM_SLOT,
                mirror: SPARE_SLOT,
            },
        )
        .expect("overload testbed boots");
        sys.set_retry_policy(campaign_policy());
        sys.set_overload_config(scenario.overload_config());
        let tracer = sys.enable_tracing(1 << 16);
        let engine = TrafficEngine::new(traffic_config(scenario, requests, seed), &sys);
        let trigger = requests / 3;
        let mut fired_at: Option<SimTime> = None;
        let mut cleared = false;
        let report = engine.run(&mut sys, |sys, tick| {
            if fired_at.is_none() && tick.completed >= trigger {
                fired_at = Some(tick.now);
                sys.apply_fault_action(
                    tick.now,
                    &FaultAction::SlowChannel {
                        slot: VICTIM_SLOT,
                        window: FAULT_HOLD,
                    },
                );
                sys.apply_fault_action(
                    tick.now,
                    &FaultAction::LinkNoise {
                        slot: VICTIM_SLOT,
                        down: LINK_NOISE,
                        up: LINK_NOISE,
                        seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(7),
                    },
                );
            }
            match fired_at {
                None => Phase::Steady,
                Some(at) if !cleared && tick.now < at + FAULT_HOLD => Phase::Fault,
                Some(_) => {
                    if !cleared {
                        cleared = true;
                        sys.apply_fault_action(
                            tick.now,
                            &FaultAction::LinkClear { slot: VICTIM_SLOT },
                        );
                    }
                    Phase::Recovery
                }
            }
        });
        let metrics = {
            let mut m = sys.metrics();
            report.publish(&mut m);
            m
        };
        let fault_fired = fired_at.is_some() && cleared && report.fault.count() > 0;
        RunReport {
            scenario,
            seed,
            report,
            fault_fired,
            deterministic: true,
            fingerprint: tracer.fingerprint(),
            metrics,
            panicked: None,
        }
    }));
    result.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        RunReport {
            scenario,
            seed,
            report: TrafficReport {
                submitted: 0,
                completed: 0,
                errors: 0,
                orphaned: 0,
                elapsed: SimTime::ZERO,
                steady: Default::default(),
                fault: Default::default(),
                recovery: Default::default(),
                steady_slo_violations: 0,
                fault_slo_violations: 0,
                recovery_slo_violations: 0,
                shed: [0; 3],
                deadline_expired: 0,
                client_retries: 0,
                client_retries_denied: 0,
                duplicate_completions: 0,
                hedges: [0; 3],
                hot_key_completions: 0,
            },
            fault_fired: false,
            deterministic: true,
            fingerprint: 0,
            metrics: MetricsRegistry::new(),
            panicked: Some(msg),
        }
    })
}

/// Runs one scenario at one seed — twice. Fingerprints AND the full
/// reports must match or the run is marked non-deterministic.
pub fn run_scenario(scenario: Scenario, seed: u64, requests: u64) -> RunReport {
    let requests = requests.max(60);
    let (mut report, deterministic) = crate::harness::run_twice_assert_identical(
        || run_once(scenario, seed, requests),
        |a, b| a.fingerprint == b.fingerprint && a.report == b.report && a.panicked == b.panicked,
    );
    report.deterministic = deterministic;
    report
}

/// Runs every scenario across every seed.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut runs = Vec::new();
    for scenario in Scenario::all() {
        for &seed in &cfg.seeds {
            runs.push(run_scenario(scenario, seed, cfg.requests));
        }
    }
    CampaignReport {
        runs,
        requests: cfg.requests.max(60),
    }
}

impl CampaignReport {
    /// The steady-state p99 yardstick in picoseconds, from the
    /// seeds-merged steady-phase histogram of every run. Per-run steady
    /// p99 over ~100 completions is one unlucky arrival wide; pooling
    /// every run's pre-trigger phase (same testbed, same load) makes
    /// the baseline the factor checks divide by statistically stable.
    pub fn steady_ref_ps(&self) -> u64 {
        let mut merged = contutto_sim::LogHistogram::new();
        for r in &self.runs {
            merged.merge(&r.report.steady);
        }
        if merged.count() == 0 {
            0
        } else {
            SimTime::from_ns(merged.quantile(0.99)).as_ps()
        }
    }

    /// Runs that break the contract — structural per-run clauses, the
    /// campaign-level metastability verdicts, and regression-gate
    /// failures against a previous `BENCH_overload.json`.
    pub fn violations(&self, baseline_json: Option<&str>) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.runs {
            if let Some(reason) = r.violation_reason() {
                v.push(format!("{} seed {}: {reason}", r.scenario.name(), r.seed));
            }
        }
        let steady = self.steady_ref_ps();
        if steady == 0 {
            v.push("no steady-phase completions anywhere: no yardstick".into());
        }
        for r in &self.runs {
            if steady == 0 || r.violation_reason().is_some() {
                continue;
            }
            let recovery = r.recovery_p99();
            match r.scenario {
                // The whole campaign rests on the naive row actually
                // going metastable: congestion must outlive the
                // trigger.
                Scenario::Naive if recovery <= NAIVE_CONGESTION_FACTOR * steady => {
                    v.push(format!(
                        "naive seed {}: metastable congestion did not reproduce: recovery \
                         p99 {recovery} ps <= {NAIVE_CONGESTION_FACTOR}x steady {steady} ps",
                        r.seed
                    ));
                }
                Scenario::Protected if recovery > PROTECTED_RECOVERY_FACTOR * steady => {
                    v.push(format!(
                        "protected seed {}: defenses failed to restore service: recovery \
                         p99 {recovery} ps > {PROTECTED_RECOVERY_FACTOR}x steady {steady} ps",
                        r.seed
                    ));
                }
                _ => {}
            }
        }
        if let Some(json) = baseline_json {
            for (name, old_requests, old_rps) in parse_baseline(json) {
                if old_requests != self.requests {
                    continue;
                }
                if let Some(rps) = self.scenario_rps(&name) {
                    if rps < 0.8 * old_rps {
                        v.push(format!(
                            "{name}: {rps:.0} req/sec regressed >20% from baseline {old_rps:.0}"
                        ));
                    }
                }
            }
        }
        v
    }

    fn scenario_runs<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RunReport> + 'a {
        self.runs.iter().filter(move |r| r.scenario.name() == name)
    }

    /// Mean achieved requests/sec across a scenario's seeds.
    pub fn scenario_rps(&self, name: &str) -> Option<f64> {
        let (sum, n) = self.scenario_runs(name).fold((0.0, 0u32), |(s, n), r| {
            (s + r.report.achieved_rps(), n + 1)
        });
        (n > 0).then(|| sum / f64::from(n))
    }

    /// Worst recovery p99 : steady-yardstick ratio across a scenario's
    /// seeds.
    fn worst_recovery_ratio(&self, name: &str) -> f64 {
        let steady = self.steady_ref_ps();
        if steady == 0 {
            return 0.0;
        }
        self.scenario_runs(name)
            .filter(|r| r.panicked.is_none())
            .map(|r| r.recovery_p99() as f64 / steady as f64)
            .fold(0.0, f64::max)
    }

    /// All run metrics merged (counters accumulate, log-histograms
    /// fold).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for r in &self.runs {
            merged.merge(&r.metrics);
        }
        merged
    }

    /// Renders the metastability table: steady / fault / recovery p99
    /// side by side, plus what the defenses did.
    pub fn render_table(&self) -> String {
        let q = |r: &TrafficReport, p: Phase| -> String {
            let h = match p {
                Phase::Steady => &r.steady,
                Phase::Fault => &r.fault,
                Phase::Recovery => &r.recovery,
            };
            if h.count() == 0 {
                "-".into()
            } else {
                format!("{:.1}", h.quantile(0.99) as f64 / 1000.0)
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>4} {:>5} {:>5}  {:>8} {:>8} {:>8} {:>6}  {:>5} {:>6} {:>7} {:>6} {:>4}  {:<16}",
            "scenario", "seed", "done", "err",
            "s-p99us", "f-p99us", "r-p99us", "r/s",
            "shed", "dlexp", "retries", "hedge", "det", "fingerprint"
        );
        out.push_str(&"-".repeat(124));
        out.push('\n');
        let steady_ref = self.steady_ref_ps();
        for r in &self.runs {
            if let Some(msg) = &r.panicked {
                let _ = writeln!(out, "{:<10} {:>4}  PANIC: {msg}", r.scenario.name(), r.seed);
                continue;
            }
            let t = &r.report;
            let ratio = if steady_ref > 0 {
                format!("{:.1}", r.recovery_p99() as f64 / steady_ref as f64)
            } else {
                "-".into()
            };
            let _ = writeln!(
                out,
                "{:<10} {:>4} {:>5} {:>5}  {:>8} {:>8} {:>8} {:>6}  {:>5} {:>6} {:>7} {:>6} {:>4}  {:016x}",
                r.scenario.name(),
                r.seed,
                t.completed,
                t.errors,
                q(t, Phase::Steady),
                q(t, Phase::Fault),
                q(t, Phase::Recovery),
                ratio,
                t.shed.iter().sum::<u64>(),
                t.deadline_expired,
                format!("{}/{}", t.client_retries, t.client_retries_denied),
                t.hedges.iter().sum::<u64>(),
                if r.deterministic { "yes" } else { "NO" },
                r.fingerprint,
            );
        }
        let _ = writeln!(
            out,
            "\n{} runs, {} violations (p99 latencies in µs; r/s = recovery p99 : merged \
             steady p99 ({:.1} µs); retries = granted/denied)",
            self.runs.len(),
            self.violations(None).len(),
            steady_ref as f64 / 1_000_000.0,
        );
        out
    }

    /// Serializes the per-scenario aggregate (hand-rolled JSON, no
    /// external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"overload\",\n  \"scenarios\": [\n");
        let names: Vec<&str> = Scenario::all().iter().map(|s| s.name()).collect();
        for (i, name) in names.iter().enumerate() {
            let rps = self.scenario_rps(name).unwrap_or(0.0);
            let ratio = self.worst_recovery_ratio(name);
            let (shed, hedges): (u64, u64) = self
                .scenario_runs(name)
                .map(|r| {
                    (
                        r.report.shed.iter().sum::<u64>(),
                        r.report.hedges.iter().sum::<u64>(),
                    )
                })
                .fold((0, 0), |(s, h), (a, b)| (s + a, h + b));
            let _ = write!(
                out,
                "    {{\"scenario\": \"{}\", \"requests_per_run\": {}, \
                 \"requests_per_sec\": {:.3}, \
                 \"recovery_ratio\": {:.3}, \"shed\": {}, \"hedges\": {}}}",
                name, self.requests, rps, ratio, shed, hedges,
            );
            out.push_str(if i + 1 < names.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Extracts `(scenario, requests_per_run, requests_per_sec)` triples
/// from a previous report's JSON. Tolerant scanner; unparseable input
/// yields no entries (no gate).
fn parse_baseline(json: &str) -> Vec<(String, u64, f64)> {
    let number_after = |chunk: &str, key: &str| -> Option<f64> {
        let rest = chunk.split(key).nth(1)?;
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        num.parse().ok()
    };
    let mut entries = Vec::new();
    for chunk in json.split("\"scenario\":").skip(1) {
        let Some(name) = chunk.split('"').nth(1) else {
            continue;
        };
        let Some(requests) = number_after(chunk, "\"requests_per_run\":") else {
            continue;
        };
        let Some(rps) = number_after(chunk, "\"requests_per_sec\":") else {
            continue;
        };
        entries.push((name.to_string(), requests as u64, rps));
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_row_goes_metastable_and_protected_recovers() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1],
            requests: 420,
        });
        let violations = report.violations(None);
        assert!(
            violations.is_empty(),
            "{violations:?}\n{}",
            report.render_table()
        );
        // The pair is the point: same trigger, opposite outcomes.
        let naive = &report.runs[0];
        let protected = &report.runs[1];
        assert!(
            naive.recovery_p99() > protected.recovery_p99(),
            "naive recovery p99 ({}) must exceed protected ({})",
            naive.recovery_p99(),
            protected.recovery_p99()
        );
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1],
            requests: 420,
        });
        let json = report.to_json();
        let pairs = parse_baseline(&json);
        assert_eq!(pairs.len(), Scenario::all().len());
        assert!(report
            .violations(Some(&json))
            .iter()
            .all(|v| !v.contains("regressed")));
        let inflated = json.replace("\"requests_per_sec\": ", "\"requests_per_sec\": 9");
        assert!(report
            .violations(Some(&inflated))
            .iter()
            .any(|v| v.contains("regressed")));
    }
}
