//! SLO-under-fault traffic campaign: what does the tail do *during* a
//! fault?
//!
//! Every prior campaign asserts correctness (no lost bytes, typed
//! errors, determinism). This one asserts the *service level*: an
//! open-loop zipfian request stream runs over the failover testbed
//! while a fault fires mid-run, and the report answers the question
//! none of the earlier tables could — p50/p99/p99.9/p99.99 and
//! SLO-violation counts for steady state versus the fault window, for
//! each of:
//!
//! * **steady** — no fault; the baseline row (and the row the
//!   regression gate tracks);
//! * **scrub-storm** — a seeded media flip storm lands while patrol
//!   scrub sweeps the victim card and both link directions turn noisy
//!   (CRC replays are what genuinely stretch the tail — scrub itself
//!   runs in the controller's idle slots);
//! * **failover** — a concurrent-maintenance pull evacuates the victim
//!   to the hot spare while demand traffic keeps arriving;
//! * **epow-reboot** — an orderly EPOW flush, a power cut that orphans
//!   every in-flight request, and a cold reboot, with arrivals
//!   continuing on the nominal clock throughout (open loop: recovery
//!   backlog is measured, not hidden).
//!
//! Determinism is part of the contract: every scenario × seed runs
//! twice and both the trace fingerprint *and the full
//! [`TrafficReport`] — histograms included —* must be identical.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_dmi::link::BitErrorInjector;
use contutto_memdev::FaultConfig;
use contutto_power8::channel::{ChannelConfig, DmiChannel};
use contutto_power8::failover::FailoverMode;
use contutto_power8::firmware::layouts;
use contutto_power8::system::Power8System;
use contutto_sim::{MetricsRegistry, SimTime};
use contutto_workloads::traffic::{
    ArrivalProcess, LoopMode, Phase, TrafficConfig, TrafficEngine, TrafficReport,
};

use crate::failover::{SPARE_SLOT, VICTIM_SLOT};
use crate::faults::campaign_policy;

/// Flips rained on the victim during the scrub storm. Spread across a
/// wide hot range so they stay single-bit per ECC word (corrected, not
/// uncorrectable — this scenario measures the tail, not the budget).
pub const SCRUB_STORM_FLIPS: u32 = 40;

/// The storm lands inside this window from the victim's power-on.
pub const SCRUB_STORM_WINDOW: SimTime = SimTime::from_us(20);

/// Patrol-scrub interval on the victim during the storm.
pub const SCRUB_STORM_INTERVAL: SimTime = SimTime::from_us(8);

/// Per-frame corruption probability on each link direction during the
/// storm — the CRC-replay traffic that actually moves the tail.
pub const SCRUB_STORM_NOISE: f64 = 0.002;

/// Simulated outage between the power cut and the reboot.
pub const OUTAGE: SimTime = SimTime::from_us(50);

/// What fires mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No fault: the baseline SLO row.
    Steady,
    /// Media flip storm + armed patrol scrub + noisy links.
    ScrubStorm,
    /// Concurrent-maintenance pull, evacuation to the hot spare.
    Failover,
    /// EPOW flush, power cut, cold reboot.
    EpowReboot,
}

impl Scenario {
    /// Every scenario, table order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::Steady,
            Scenario::ScrubStorm,
            Scenario::Failover,
            Scenario::EpowReboot,
        ]
    }

    /// Stable display name (also the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Steady => "steady",
            Scenario::ScrubStorm => "scrub-storm",
            Scenario::Failover => "failover",
            Scenario::EpowReboot => "epow-reboot",
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds swept per scenario.
    pub seeds: Vec<u64>,
    /// Requests issued per run.
    pub requests: u64,
}

impl CampaignConfig {
    /// The quick gate used by `scripts/verify.sh`.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1, 2],
            requests: 150,
        }
    }

    /// The full sweep.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: (1..=3).collect(),
            requests: 450,
        }
    }
}

/// The traffic shape every scenario runs: open-loop Poisson (queueing
/// delay during the fault is the result), zipfian keys, mostly reads.
fn traffic_config(requests: u64, seed: u64) -> TrafficConfig {
    TrafficConfig {
        mode: LoopMode::Open,
        arrival: ArrivalProcess::Poisson,
        requests,
        users: 1000,
        per_user_rps: 4_000.0, // 4M rps aggregate of simulated time
        think: SimTime::from_us(1),
        keys: 2048,
        zipf_theta: 0.99,
        read_fraction: 0.9,
        mlp_window: 16,
        slo: SimTime::from_us(4),
        deadline: None,
        client_retries: 0,
        client_backoff: SimTime::from_us(2),
        seed,
    }
}

/// One scenario × seed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario that ran.
    pub scenario: Scenario,
    /// Seed parameterizing boot, arrivals and the fault pattern.
    pub seed: u64,
    /// The traffic engine's full report (histograms included).
    pub report: TrafficReport,
    /// Scenario-specific evidence that the fault actually fired.
    pub fault_fired: bool,
    /// Second same-seed run produced an identical fingerprint AND an
    /// identical report (histogram identity).
    pub deterministic: bool,
    /// Trace fingerprint of the run.
    pub fingerprint: u64,
    /// Full metrics snapshot for `--metrics` aggregation.
    pub metrics: MetricsRegistry,
    /// Panic payload, if the run panicked (always a violation).
    pub panicked: Option<String>,
}

impl RunReport {
    /// Whether this run breaks the campaign contract.
    pub fn is_violation(&self) -> bool {
        if self.panicked.is_some() || !self.deterministic {
            return true;
        }
        let r = &self.report;
        // Every issued request must be accounted for, and some must
        // actually complete.
        if r.completed == 0 || r.completed + r.errors + r.orphaned != r.submitted {
            return true;
        }
        match self.scenario {
            // The baseline must be clean: any error or orphan in
            // steady state is a failure of the serving layer itself.
            Scenario::Steady => r.errors + r.orphaned > 0 || r.fault.count() > 0,
            // A fault scenario whose fault never fired proves nothing.
            _ => !self.fault_fired || r.fault.count() == 0,
        }
    }
}

/// The campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every run, scenario-major.
    pub runs: Vec<RunReport>,
    /// Requests per run — part of the baseline key, so a smoke run
    /// never gates against a full-campaign baseline (a reboot outage
    /// amortizes differently over 150 vs 450 requests).
    pub requests: u64,
}

/// Drives one run: boots the failover testbed (with the scrub-storm
/// victim pre-armed when the scenario needs it), runs the traffic with
/// the scenario's fault hook, and snapshots metrics.
fn run_once(scenario: Scenario, seed: u64, requests: u64) -> RunReport {
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut sys = Power8System::boot_with_failover(
            layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
            seed,
            FailoverMode::Spare { spare: SPARE_SLOT },
        )
        .expect("traffic testbed boots");
        if scenario == Scenario::ScrubStorm {
            let mut card = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
            card.attach_media_faults(FaultConfig {
                transient_flips: SCRUB_STORM_FLIPS,
                window: SCRUB_STORM_WINDOW,
                hot_start: 0,
                hot_len: 1 << 20, // thin spread: single-bit, correctable
                ..FaultConfig::none(seed)
            });
            card.enable_scrub(SCRUB_STORM_INTERVAL);
            let victim = DmiChannel::new(ChannelConfig::contutto(), Box::new(card));
            sys.channel_mut(VICTIM_SLOT).expect("victim slot").channel = victim;
        }
        sys.set_retry_policy(campaign_policy());
        let tracer = sys.enable_tracing(1 << 16);
        let engine = TrafficEngine::new(traffic_config(requests, seed), &sys);
        let trigger = requests / 3;
        let mut fired = false;
        let report = engine.run(&mut sys, |sys, tick| {
            if !fired && tick.completed >= trigger {
                fired = true;
                match scenario {
                    Scenario::Steady => {}
                    Scenario::ScrubStorm => {
                        // The flips and scrub are armed from power-on;
                        // the trigger turns the links noisy.
                        let ch = sys.channel_mut(VICTIM_SLOT).expect("victim slot");
                        ch.channel.set_down_injector(BitErrorInjector::bernoulli(
                            SCRUB_STORM_NOISE,
                            seed.wrapping_mul(31).wrapping_add(1),
                        ));
                        ch.channel.set_up_injector(BitErrorInjector::bernoulli(
                            SCRUB_STORM_NOISE,
                            seed.wrapping_mul(31).wrapping_add(2),
                        ));
                    }
                    Scenario::Failover => {
                        sys.maintenance_pull(VICTIM_SLOT)
                            .expect("pull has a spare to fail over to");
                    }
                    Scenario::EpowReboot => {
                        sys.epow();
                        let at = sys.now();
                        sys.power_cut(at);
                        sys.reboot(at + OUTAGE).expect("reboot after the outage");
                    }
                }
            }
            if fired && scenario != Scenario::Steady {
                Phase::Fault
            } else {
                Phase::Steady
            }
        });
        let metrics = {
            let mut m = sys.metrics();
            report.publish(&mut m);
            m
        };
        let fault_fired = match scenario {
            Scenario::Steady => true,
            Scenario::ScrubStorm => {
                metrics.counter("buffer.media.scrub_passes") > 0
                    && metrics.counter("buffer.media.scrub_corrected")
                        + metrics.counter("buffer.media.demand_corrected")
                        > 0
            }
            Scenario::Failover => metrics.counter("system.failover.failovers") > 0,
            Scenario::EpowReboot => fired && report.orphaned + report.errors > 0,
        };
        RunReport {
            scenario,
            seed,
            report,
            fault_fired,
            deterministic: true,
            fingerprint: tracer.fingerprint(),
            metrics,
            panicked: None,
        }
    }));
    result.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        RunReport {
            scenario,
            seed,
            report: TrafficReport {
                submitted: 0,
                completed: 0,
                errors: 0,
                orphaned: 0,
                elapsed: SimTime::ZERO,
                steady: Default::default(),
                fault: Default::default(),
                recovery: Default::default(),
                steady_slo_violations: 0,
                fault_slo_violations: 0,
                recovery_slo_violations: 0,
                shed: [0; 3],
                deadline_expired: 0,
                client_retries: 0,
                client_retries_denied: 0,
                duplicate_completions: 0,
                hedges: [0; 3],
                hot_key_completions: 0,
            },
            fault_fired: false,
            deterministic: true,
            fingerprint: 0,
            metrics: MetricsRegistry::new(),
            panicked: Some(msg),
        }
    })
}

/// Runs one scenario at one seed — twice. The fingerprints must match
/// and the two [`TrafficReport`]s must be structurally identical
/// (latency histograms included), or the run is marked
/// non-deterministic.
pub fn run_scenario(scenario: Scenario, seed: u64, requests: u64) -> RunReport {
    let requests = requests.max(30);
    let (mut report, deterministic) = crate::harness::run_twice_assert_identical(
        || run_once(scenario, seed, requests),
        |a, b| a.fingerprint == b.fingerprint && a.report == b.report && a.panicked == b.panicked,
    );
    report.deterministic = deterministic;
    report
}

/// Runs every scenario across every seed.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut runs = Vec::new();
    for scenario in Scenario::all() {
        for &seed in &cfg.seeds {
            runs.push(run_scenario(scenario, seed, cfg.requests));
        }
    }
    CampaignReport {
        runs,
        requests: cfg.requests.max(30),
    }
}

impl CampaignReport {
    /// Runs that break the contract, plus regression-gate failures
    /// against a previous `BENCH_traffic.json`.
    pub fn violations(&self, baseline_json: Option<&str>) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.runs {
            if let Some(msg) = &r.panicked {
                v.push(format!(
                    "{} seed {}: PANIC: {msg}",
                    r.scenario.name(),
                    r.seed
                ));
            } else if !r.deterministic {
                v.push(format!(
                    "{} seed {}: double run diverged (fingerprint or histogram)",
                    r.scenario.name(),
                    r.seed
                ));
            } else if r.is_violation() {
                v.push(format!(
                    "{} seed {}: contract violated (completed {}, errors {}, orphaned {}, fault_fired {})",
                    r.scenario.name(),
                    r.seed,
                    r.report.completed,
                    r.report.errors,
                    r.report.orphaned,
                    r.fault_fired,
                ));
            }
        }
        if let Some(json) = baseline_json {
            for (name, old_requests, old_rps) in parse_baseline(json) {
                if old_requests != self.requests {
                    continue;
                }
                if let Some(rps) = self.scenario_rps(&name) {
                    if rps < 0.8 * old_rps {
                        v.push(format!(
                            "{name}: {rps:.0} req/sec regressed >20% from baseline {old_rps:.0}"
                        ));
                    }
                }
            }
        }
        v
    }

    fn scenario_runs<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RunReport> + 'a {
        self.runs.iter().filter(move |r| r.scenario.name() == name)
    }

    /// Mean achieved requests/sec across a scenario's seeds.
    pub fn scenario_rps(&self, name: &str) -> Option<f64> {
        let (sum, n) = self.scenario_runs(name).fold((0.0, 0u32), |(s, n), r| {
            (s + r.report.achieved_rps(), n + 1)
        });
        (n > 0).then(|| sum / f64::from(n))
    }

    /// A scenario's seeds-merged latency distribution (steady + fault
    /// phases folded together), exercising histogram mergeability.
    fn merged_latency(&self, name: &str) -> contutto_sim::LogHistogram {
        let mut h = contutto_sim::LogHistogram::new();
        for r in self.scenario_runs(name) {
            h.merge(&r.report.steady);
            h.merge(&r.report.fault);
        }
        h
    }

    /// All run metrics merged (counters accumulate, log-histograms
    /// fold).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for r in &self.runs {
            merged.merge(&r.metrics);
        }
        merged
    }

    /// Renders the SLO-under-fault table: per run, the steady-phase
    /// and fault-phase tails side by side.
    pub fn render_table(&self) -> String {
        let q = |h: &contutto_sim::LogHistogram, q: f64| -> String {
            if h.count() == 0 {
                "-".into()
            } else {
                format!("{:.1}", h.quantile(q) as f64 / 1000.0)
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>5} {:>4} {:>4}  {:>8} {:>8} {:>8} {:>9}  {:>8} {:>9}  {:>7} {:>4}  {:<16}",
            "scenario", "seed", "done", "err", "orph",
            "s-p50us", "s-p99us", "s-p99.9", "s-p99.99",
            "f-p99.9", "f-p99.99", "slo s/f", "det", "fingerprint"
        );
        out.push_str(&"-".repeat(132));
        out.push('\n');
        for r in &self.runs {
            if let Some(msg) = &r.panicked {
                let _ = writeln!(out, "{:<12} {:>4}  PANIC: {msg}", r.scenario.name(), r.seed);
                continue;
            }
            let t = &r.report;
            let _ = writeln!(
                out,
                "{:<12} {:>4} {:>5} {:>4} {:>4}  {:>8} {:>8} {:>8} {:>9}  {:>8} {:>9}  {:>7} {:>4}  {:016x}",
                r.scenario.name(),
                r.seed,
                t.completed,
                t.errors,
                t.orphaned,
                q(&t.steady, 0.5),
                q(&t.steady, 0.99),
                q(&t.steady, 0.999),
                q(&t.steady, 0.9999),
                q(&t.fault, 0.999),
                q(&t.fault, 0.9999),
                format!("{}/{}", t.steady_slo_violations, t.fault_slo_violations),
                if r.deterministic { "yes" } else { "NO" },
                r.fingerprint,
            );
        }
        let _ = writeln!(
            out,
            "\n{} runs, {} violations (latencies in µs)",
            self.runs.len(),
            self.violations(None).len(),
        );
        out
    }

    /// Serializes the per-scenario aggregate (hand-rolled JSON, no
    /// external deps): requests/sec, merged p99.9, SLO violations.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"traffic\",\n  \"scenarios\": [\n");
        let names: Vec<&str> = Scenario::all().iter().map(|s| s.name()).collect();
        for (i, name) in names.iter().enumerate() {
            let rps = self.scenario_rps(name).unwrap_or(0.0);
            let merged = self.merged_latency(name);
            let slo: u64 = self
                .scenario_runs(name)
                .map(|r| r.report.steady_slo_violations + r.report.fault_slo_violations)
                .sum();
            let _ = write!(
                out,
                "    {{\"scenario\": \"{}\", \"requests_per_run\": {}, \
                 \"requests_per_sec\": {:.3}, \
                 \"p999_ns\": {}, \"slo_violations\": {}}}",
                name,
                self.requests,
                rps,
                merged.quantile(0.999),
                slo,
            );
            out.push_str(if i + 1 < names.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Extracts `(scenario, requests_per_run, requests_per_sec)` triples
/// from a previous report's JSON. Tolerant scanner; unparseable input
/// yields no entries (no gate). Entries without a `requests_per_run`
/// (older baselines) are skipped — their workload size is unknown, so
/// they cannot be compared fairly.
fn parse_baseline(json: &str) -> Vec<(String, u64, f64)> {
    let number_after = |chunk: &str, key: &str| -> Option<f64> {
        let rest = chunk.split(key).nth(1)?;
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        num.parse().ok()
    };
    let mut entries = Vec::new();
    for chunk in json.split("\"scenario\":").skip(1) {
        let Some(name) = chunk.split('"').nth(1) else {
            continue;
        };
        let Some(requests) = number_after(chunk, "\"requests_per_run\":") else {
            continue;
        };
        let Some(rps) = number_after(chunk, "\"requests_per_sec\":") else {
            continue;
        };
        entries.push((name.to_string(), requests as u64, rps));
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_run_is_clean_and_deterministic() {
        let r = run_scenario(Scenario::Steady, 1, 90);
        assert!(r.panicked.is_none(), "{:?}", r.panicked);
        assert!(!r.is_violation(), "steady run violated the contract");
        assert_eq!(r.report.errors, 0);
        assert_eq!(r.report.fault.count(), 0);
        assert!(r.deterministic);
    }

    #[test]
    fn failover_moves_the_tail_but_loses_nothing() {
        let r = run_scenario(Scenario::Failover, 1, 90);
        assert!(!r.is_violation(), "failover run violated the contract");
        assert!(r.fault_fired, "maintenance pull must register a failover");
        assert!(r.report.fault.count() > 0, "no fault-phase completions");
    }

    #[test]
    fn epow_reboot_orphans_and_recovers() {
        let r = run_scenario(Scenario::EpowReboot, 1, 90);
        assert!(!r.is_violation(), "epow run violated the contract");
        assert!(
            r.report.orphaned + r.report.errors > 0,
            "a power cut mid-traffic must orphan or fail something"
        );
        assert!(r.report.completed > 0, "traffic must resume after reboot");
    }

    #[test]
    fn scrub_storm_scrubs_and_corrects() {
        let r = run_scenario(Scenario::ScrubStorm, 1, 90);
        assert!(!r.is_violation(), "scrub-storm run violated the contract");
        assert!(r.metrics.counter("buffer.media.scrub_passes") > 0);
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1],
            requests: 60,
        });
        let json = report.to_json();
        let pairs = parse_baseline(&json);
        assert_eq!(pairs.len(), Scenario::all().len());
        // A fresh report never regresses against its own numbers.
        assert!(report
            .violations(Some(&json))
            .iter()
            .all(|v| !v.contains("regressed")));
        // A 10x faster fake baseline trips the 20% gate.
        let inflated = json.replace("\"requests_per_sec\": ", "\"requests_per_sec\": 9");
        assert!(report
            .violations(Some(&inflated))
            .iter()
            .any(|v| v.contains("regressed")));
    }
}
