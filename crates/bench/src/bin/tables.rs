//! Regenerates every table and figure of the ConTutto paper from the
//! simulated system and prints them in the paper's layout.
//!
//! ```text
//! cargo run -p contutto-bench --release --bin tables            # everything
//! cargo run -p contutto-bench --release --bin tables -- --table3
//! ```

use contutto_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |key: &str| args.is_empty() || args.iter().any(|a| a == key);

    if want("--table1") {
        print_table1();
    }
    if want("--table2") {
        print_table2();
    }
    if want("--figure6") {
        print_figure6();
    }
    if want("--table3") {
        print_table3();
    }
    if want("--figure7") {
        print_figure7();
    }
    if want("--figure8") {
        print_figure8();
    }
    if want("--table4") {
        print_table4();
    }
    if want("--figure9") || want("--figure10") {
        print_figures9_10();
    }
    if want("--table5") {
        print_table5();
    }
    if want("--mram") {
        print_mram_generations();
    }
    if want("--metrics") {
        print_metrics();
    }
}

/// Runs a noisy-channel replay scenario with tracing enabled and
/// renders the full hierarchical metrics registry: per-direction frame
/// counters, CRC failures, replay counts, cache and device activity.
fn print_metrics() {
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_dmi::command::CacheLine;
    use contutto_dmi::link::BitErrorInjector;
    use contutto_power8::channel::{ChannelConfig, DmiChannel};

    rule("Observability: replay-scenario metrics (2% frame errors, both directions)");
    let mut cfg = ChannelConfig::contutto();
    cfg.down_errors = BitErrorInjector::bernoulli(0.02, 11);
    cfg.up_errors = BitErrorInjector::bernoulli(0.02, 13);
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    let tracer = ch.enable_tracing(4096);
    for i in 0..16u64 {
        let line = CacheLine::patterned(i);
        ch.write_line_blocking(i * 128, line).expect("tags free");
        let (back, _) = ch.read_line_blocking(i * 128).expect("tags free");
        assert_eq!(back, line, "data survived the noisy link");
    }
    print!("{}", ch.metrics().render());
    println!(
        "trace: {} events recorded ({} retained), fingerprint {:016x}",
        tracer.total_recorded(),
        tracer.len(),
        tracer.fingerprint()
    );
    print_overload_metrics();
}

/// Runs a short overload scenario — hedged reads with deadlines
/// against a slowed mirrored primary — and renders the system-level
/// registry so the `system.overload.*` counters show with live values.
fn print_overload_metrics() {
    use contutto_core::{ContuttoConfig, MemoryPopulation};
    use contutto_power8::failover::FailoverMode;
    use contutto_power8::firmware::layouts;
    use contutto_power8::inject::FaultAction;
    use contutto_power8::system::Power8System;
    use contutto_power8::{HedgeConfig, OverloadConfig};
    use contutto_sim::SimTime;

    rule("Overload: system metrics (slowed primary, hedged reads, deadlines)");
    let mut sys = Power8System::boot_with_failover(
        layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        11,
        FailoverMode::Mirrored {
            primary: 2,
            mirror: 4,
        },
    )
    .expect("mirrored testbed boots");
    let mut cfg = OverloadConfig::protective();
    cfg.hedge = Some(HedgeConfig {
        after: SimTime::from_ns(400),
        max_in_flight: 8,
    });
    sys.set_overload_config(cfg);
    sys.set_mlp_window(16);
    sys.apply_fault_action(
        sys.now(),
        &FaultAction::SlowChannel {
            slot: 2,
            window: SimTime::from_us(50),
        },
    );
    let base = 4u64 << 30; // the ConTutto region behind slot 2
    let deadline = sys.now() + SimTime::from_us(5);
    let mut issued = 0u64;
    for i in 0..32u64 {
        if sys
            .submit_load_deadline(base + i * 128, Some(deadline))
            .is_ok()
        {
            issued += 1;
        }
    }
    let done = sys.drain();
    assert_eq!(done.len() as u64, issued, "every admitted read resolves");
    print!("{}", sys.metrics().render());
}

fn print_mram_generations() {
    rule("STT-MRAM generations (paper §4.2: iMTJ -> pMTJ migration)");
    println!(
        "{:<30} {:>14} {:>14} {:>20}",
        "generation", "read (ns)", "write (ns)", "write energy (pJ)"
    );
    for row in bench::mram_generations() {
        println!(
            "{:<30} {:>14.0} {:>14.0} {:>20.0}",
            row.generation, row.read_ns, row.write_ns, row.write_energy_pj
        );
    }
}

fn rule(title: &str) {
    println!("\n=== {title} ===");
}

fn print_table1() {
    rule("Table 1. FPGA resource utilization");
    let report = bench::table1();
    println!(
        "{:<48} {:>10} {:>10} {:>6}",
        "Block", "ALMs", "Registers", "M20K"
    );
    for b in &report.blocks {
        println!(
            "{:<48} {:>10} {:>10} {:>6}",
            b.block, b.usage.alms, b.usage.registers, b.usage.m20k
        );
    }
    let total = report.total();
    let (a, r, m) = total.percent_of_device();
    println!(
        "{:<48} {:>10} {:>10} {:>6}",
        "TOTAL", total.alms, total.registers, total.m20k
    );
    println!("utilization: ALMs {a}%  registers {r}%  M20K {m}%  (paper: 43% / 30% / 9%)");
}

fn print_table2() {
    rule("Table 2. Centaur latency settings vs DB2 BLU runtime");
    println!(
        "{:<24} {:>16} {:>18}   paper anchors: 79->5387s ... 249->5802s",
        "Setting", "latency (ns)", "DB2 runtime (s)"
    );
    for row in bench::table2() {
        println!(
            "{:<24} {:>16.1} {:>18.0}",
            row.setting, row.latency_ns, row.db2_seconds
        );
    }
}

fn print_figure6() {
    rule("Figure 6. SPEC CINT2006 ratios with variable latency on Centaur");
    let points = bench::figure6();
    let mut settings: Vec<String> = points.iter().map(|p| p.setting.clone()).collect();
    settings.dedup();
    print!("{:<18}", "benchmark");
    for s in &settings {
        print!(" {:>22}", s.trim_start_matches("centaur-"));
    }
    println!();
    let benchmarks: Vec<&str> = {
        let mut b: Vec<&str> = points.iter().map(|p| p.benchmark).collect();
        b.dedup();
        b.truncate(12);
        b
    };
    for b in benchmarks {
        print!("{b:<18}");
        for s in &settings {
            let p = points
                .iter()
                .find(|p| p.benchmark == b && &p.setting == s)
                .expect("full grid");
            print!(" {:>22.2}", p.ratio);
        }
        println!();
    }
}

fn print_table3() {
    rule("Table 3. Variable latency settings on ConTutto");
    println!(
        "{:<44} {:>18}   paper: 97 / 390 / 438 / 534 / 558 / 293 ns",
        "Configuration", "latency (ns)"
    );
    for row in bench::table3() {
        println!("{:<44} {:>18.1}", row.configuration, row.latency_ns);
    }
}

fn print_figure7() {
    rule("Figure 7. SPEC CINT2006 ratios on ConTutto (Centaur baseline)");
    let points = bench::figure7();
    let mut settings: Vec<String> = points.iter().map(|p| p.setting.clone()).collect();
    settings.dedup();
    print!("{:<18}", "benchmark");
    for s in &settings {
        print!(" {:>18}", s.trim_start_matches("contutto-"));
    }
    println!();
    let benchmarks: Vec<&str> = {
        let mut b: Vec<&str> = points.iter().map(|p| p.benchmark).collect();
        b.dedup();
        b.truncate(12);
        b
    };
    for b in benchmarks {
        print!("{b:<18}");
        for s in &settings {
            let p = points
                .iter()
                .find(|p| p.benchmark == b && &p.setting == s)
                .expect("full grid");
            print!(" {:>18.2}", p.ratio);
        }
        println!();
    }
    let s = bench::figure7_summary();
    println!(
        "summary at slowest knob: {:.0}% of suite <2% degradation, {:.0}% <10%, \
         {:.0}% in 15-35% band, {:.0}% >50% (worst {:.0}%)",
        s.under_2pct * 100.0,
        s.under_10pct * 100.0,
        s.band_15_35 * 100.0,
        s.over_50pct * 100.0,
        s.worst * 100.0
    );
    println!("paper: ~half <2%, ~two-thirds <10%, tail 15-35%, one >50%");
}

fn print_figure8() {
    rule("Figure 8. Endurance comparison of non-volatile memories");
    println!(
        "{:<12} {:>12} {:>12} {:>26}",
        "technology", "log10 min", "log10 max", "days @ 1M writes/s (min)"
    );
    for row in bench::figure8() {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>26.3}",
            row.technology.to_string(),
            row.log10_min,
            row.log10_max,
            row.lifetime_days_at_1mwps
        );
    }
}

fn print_table4() {
    rule("Table 4. GPFS performance per persistent store");
    println!(
        "{:<28} {:>20} {:>12}   paper: 75 / 15K / 125K",
        "Technology", "Interface", "IOPS"
    );
    for row in bench::table4() {
        println!(
            "{:<28} {:>20} {:>12.0}",
            row.technology, row.interface, row.iops
        );
    }
}

fn print_figures9_10() {
    rule("Figures 9 & 10. FIO IOPS and latency per technology/attach point");
    println!(
        "{:<20} {:>10} {:>12} {:>16}",
        "device", "pattern", "IOPS", "latency (us)"
    );
    for r in bench::figure9_10() {
        let pattern = match r.pattern {
            contutto_workloads::fio::FioPattern::RandRead => "read",
            contutto_workloads::fio::FioPattern::RandWrite => "write",
        };
        println!(
            "{:<20} {:>10} {:>12.0} {:>16.2}",
            r.device,
            pattern,
            r.iops,
            r.latency.mean().as_us_f64()
        );
    }
    println!("paper ratios (ConTutto vs PCIe): MRAM 2.4x/5x lower latency, NVDIMM 7.5x/12.5x");
}

fn print_table5() {
    rule("Table 5. Near-memory acceleration vs software");
    println!(
        "{:<36} {:>14} {:>14} {:>8}   paper: 6/3.2, 10.5/0.5, 1.3/0.68",
        "Function", "ConTutto", "Software", "unit"
    );
    for row in bench::table5() {
        println!(
            "{:<36} {:>14.2} {:>14.2} {:>8}",
            row.function, row.contutto, row.software, row.unit
        );
    }
}
