//! Runs the deterministic fault-injection campaigns and renders the
//! pass/degrade/fail tables.
//!
//! ```text
//! faults [--chaos | --media | --failover | --power | --traffic | --overload
//!         | --checkpoint]
//!        [--smoke] [--seeds N] [--lines N] [--metrics] [--replay FILE]
//!        [--reuse-prefix]
//! ```
//!
//! * `--chaos` — run the chaos campaign: seed-generated composable
//!   fault plans (link noise, flip storms, scrub toggles, maintenance
//!   pulls, EPOW, power cuts, rate steps, checkpoints and timeline
//!   rewinds) against a ledgered load,
//!   every plan executed twice and held to the global durability
//!   oracle; failing plans are shrunk to minimal JSON reproducers
//!   (`CHAOS_repro_*.json`) replayable with `--replay FILE`, and
//!   `BENCH_chaos.json` is written with a ≥0.8× plans/sec gate;
//! * `--traffic` — run the SLO-under-fault traffic campaign: an
//!   open-loop zipfian request stream over the failover testbed while
//!   {nothing, a scrub storm, a channel failover, an EPOW + reboot}
//!   fires mid-run; steady-phase vs fault-phase tail percentiles and
//!   SLO-violation counts are reported, every run is executed twice
//!   and must be byte-identical (fingerprint + histogram identity),
//!   and `BENCH_traffic.json` is written with a ≥0.8× requests/sec
//!   regression gate against any prior baseline;
//! * `--overload` — run the metastable-failure campaign: the same
//!   open-loop stream over the *mirrored* testbed while a slow-channel
//!   plus link-noise trigger holds for a bounded window mid-run; the
//!   naive row (client retries, no defenses) must stay congested after
//!   the trigger clears, the protected row (deadlines, admission
//!   control, retry budget, breakers, hedged reads, brownout) must
//!   recover to within 2× of steady p99 with zero duplicate
//!   completions; `BENCH_overload.json` is written with a ≥0.8×
//!   requests/sec regression gate;
//! * `--media`   — run the media-fault campaign (seeded bit flips in
//!   the DIMM arrays across {DRAM, MRAM, NVDIMM} × {scrub on/off})
//!   instead of the link-fault campaign;
//! * `--failover` — run the channel-failover campaign ({spare,
//!   mirrored} × {error-budget, dead-link, maintenance-pull}): a
//!   victim buffer dies mid-workload and zero data loss is asserted;
//! * `--power`   — run the power-fail crash-point sweep ({armed,
//!   disarmed supercap} × {generous, starved energy} × {orderly EPOW,
//!   surprise cut} × crash points): the whole system loses power and
//!   the durability contract is asserted — NVDIMM contents survive or
//!   produce a typed loss report, never silent corruption;
//! * `--reuse-prefix` — with `--power`: simulate each (scenario, seed)
//!   store prefix once, snapshot it at every crash point, and restore
//!   the snapshot instead of re-simulating the stores. Results are
//!   byte-identical to the straight sweep;
//! * `--checkpoint` — run the checkpoint campaign: snapshot/restore
//!   throughput plus a prefix-reuse identity proof (the reused power
//!   sweep must match the straight sweep record-for-record while
//!   simulating strictly fewer stores); writes `BENCH_checkpoint.json`
//!   with ≥0.8× snapshots/sec and restores/sec regression gates;
//! * `--smoke`   — the quick `scripts/verify.sh` gate;
//! * `--seeds N` — sweep seeds 1..=N (default: the full 5-seed sweep);
//! * `--lines N` — lines written/read back per run;
//! * `--metrics` — also print the merged metrics registry.
//!
//! Exits nonzero if any run panics, corrupts data, or fails where the
//! scenario does not permit a typed failure — and, for `--media`, if
//! disabling scrub does not raise the uncorrectable aggregate.

use contutto_bench::{chaos, checkpoint, failover, faults, media, overload, power, traffic};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let text = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let value = |name: &str| -> Option<u64> { text(name).and_then(|v| v.parse().ok()) };

    if flag("--chaos") {
        if let Some(path) = text("--replay") {
            let json = match std::fs::read_to_string(path) {
                Ok(json) => json,
                Err(e) => {
                    eprintln!("cannot read reproducer {path}: {e}");
                    std::process::exit(1);
                }
            };
            let plan = match chaos::FaultPlan::from_json(&json) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("cannot parse reproducer {path}: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "replaying {path}: {} layout, seed {}, {} requests, {} actions",
                plan.layout.name(),
                plan.seed,
                plan.requests,
                plan.actions.len()
            );
            let report = chaos::run_plan(&plan);
            println!(
                "fingerprint {:016x}, {} applied, {} reboots, deterministic: {}",
                report.fingerprint,
                report.applied,
                report.reboots,
                if report.deterministic { "yes" } else { "NO" }
            );
            for v in &report.violations {
                println!("VIOLATION: {v}");
            }
            if report.clean() {
                println!("plan upheld the durability contract");
            } else {
                std::process::exit(1);
            }
            return;
        }
        let mut cfg = if flag("--smoke") {
            chaos::CampaignConfig::smoke()
        } else {
            chaos::CampaignConfig::full()
        };
        if let Some(n) = value("--seeds") {
            cfg.seeds = (1..=n.max(1)).collect();
        }
        if let Some(n) = value("--lines") {
            cfg.requests = n.max(16);
        }
        let report = chaos::run_campaign(&cfg);
        print!("{}", report.render_table());
        let mut repro = 0usize;
        for record in &report.records {
            if let Some(plan) = &record.reproducer {
                let path = format!("CHAOS_repro_{repro}.json");
                match std::fs::write(&path, plan.to_json()) {
                    Ok(()) => eprintln!(
                        "wrote minimal reproducer {path} (seed {} plan {}) — replay with \
                         `faults --chaos --replay {path}`",
                        record.seed, record.index
                    ),
                    Err(e) => eprintln!("warning: could not write {path}: {e}"),
                }
                repro += 1;
            }
        }
        let baseline = std::fs::read_to_string("BENCH_chaos.json").ok();
        let violations = report.violations(baseline.as_deref());
        for v in &violations {
            eprintln!("violation: {v}");
        }
        if let Err(e) = std::fs::write("BENCH_chaos.json", report.to_json()) {
            eprintln!("warning: could not write BENCH_chaos.json: {e}");
        } else {
            println!("wrote BENCH_chaos.json");
        }
        if !violations.is_empty() {
            eprintln!("chaos campaign FAILED: see violations above");
            std::process::exit(1);
        }
        return;
    }

    if flag("--traffic") {
        let mut cfg = if flag("--smoke") {
            traffic::CampaignConfig::smoke()
        } else {
            traffic::CampaignConfig::full()
        };
        if let Some(n) = value("--seeds") {
            cfg.seeds = (1..=n.max(1)).collect();
        }
        if let Some(n) = value("--lines") {
            cfg.requests = n.max(30);
        }
        let report = traffic::run_campaign(&cfg);
        print!("{}", report.render_table());
        if flag("--metrics") {
            println!("\nmerged metrics across all runs:");
            print!("{}", report.merged_metrics().render());
        }
        let baseline = std::fs::read_to_string("BENCH_traffic.json").ok();
        let violations = report.violations(baseline.as_deref());
        for v in &violations {
            eprintln!("violation: {v}");
        }
        let json = report.to_json();
        if let Err(e) = std::fs::write("BENCH_traffic.json", &json) {
            eprintln!("warning: could not write BENCH_traffic.json: {e}");
        } else {
            println!("wrote BENCH_traffic.json");
        }
        if !violations.is_empty() {
            eprintln!("traffic campaign FAILED: see violations above");
            std::process::exit(1);
        }
        return;
    }

    if flag("--overload") {
        let mut cfg = if flag("--smoke") {
            overload::CampaignConfig::smoke()
        } else {
            overload::CampaignConfig::full()
        };
        if let Some(n) = value("--seeds") {
            cfg.seeds = (1..=n.max(1)).collect();
        }
        if let Some(n) = value("--lines") {
            cfg.requests = n.max(60);
        }
        let report = overload::run_campaign(&cfg);
        print!("{}", report.render_table());
        if flag("--metrics") {
            println!("\nmerged metrics across all runs:");
            print!("{}", report.merged_metrics().render());
        }
        let baseline = std::fs::read_to_string("BENCH_overload.json").ok();
        let violations = report.violations(baseline.as_deref());
        for v in &violations {
            eprintln!("violation: {v}");
        }
        let json = report.to_json();
        if let Err(e) = std::fs::write("BENCH_overload.json", &json) {
            eprintln!("warning: could not write BENCH_overload.json: {e}");
        } else {
            println!("wrote BENCH_overload.json");
        }
        if !violations.is_empty() {
            eprintln!("overload campaign FAILED: see violations above");
            std::process::exit(1);
        }
        return;
    }

    if flag("--checkpoint") {
        let mut cfg = if flag("--smoke") {
            checkpoint::CampaignConfig::smoke()
        } else {
            checkpoint::CampaignConfig::full()
        };
        if let Some(n) = value("--seeds") {
            cfg.seeds = (1..=n.max(1)).collect();
        }
        if let Some(n) = value("--lines") {
            cfg.lines = n.max(1);
        }
        let report = checkpoint::run_campaign(&cfg);
        print!("{}", report.render_table());
        let baseline = std::fs::read_to_string("BENCH_checkpoint.json").ok();
        let violations = report.violations(baseline.as_deref());
        for v in &violations {
            eprintln!("violation: {v}");
        }
        let json = report.to_json();
        if let Err(e) = std::fs::write("BENCH_checkpoint.json", &json) {
            eprintln!("warning: could not write BENCH_checkpoint.json: {e}");
        } else {
            println!("wrote BENCH_checkpoint.json");
        }
        if !violations.is_empty() {
            eprintln!("checkpoint campaign FAILED: see violations above");
            std::process::exit(1);
        }
        return;
    }

    if flag("--power") {
        let mut cfg = if flag("--smoke") {
            power::CampaignConfig::smoke()
        } else {
            power::CampaignConfig::full()
        };
        if let Some(n) = value("--seeds") {
            cfg.seeds = (1..=n.max(1)).collect();
        }
        if let Some(n) = value("--lines") {
            cfg.lines = n.max(1);
        }
        cfg.reuse_prefix = flag("--reuse-prefix");
        let report = power::run_campaign(&cfg);
        print!("{}", report.render_table());
        println!(
            "stores simulated: {}{}",
            report.stores_executed,
            if cfg.reuse_prefix {
                " (prefix reused)"
            } else {
                ""
            }
        );
        if flag("--metrics") {
            println!("\nmerged metrics across all runs:");
            print!("{}", report.merged_metrics().render());
        }
        if !report.violations().is_empty() {
            eprintln!("power-fail campaign FAILED: see violations above");
            std::process::exit(1);
        }
        return;
    }

    if flag("--failover") {
        let mut cfg = if flag("--smoke") {
            failover::CampaignConfig::smoke()
        } else {
            failover::CampaignConfig::full()
        };
        if let Some(n) = value("--seeds") {
            cfg.seeds = (1..=n.max(1)).collect();
        }
        if let Some(n) = value("--lines") {
            cfg.lines = n.max(1);
        }
        let report = failover::run_campaign(&cfg);
        print!("{}", report.render_table());
        if flag("--metrics") {
            println!("\nmerged metrics across all runs:");
            print!("{}", report.merged_metrics().render());
        }
        if !report.violations().is_empty() {
            eprintln!("failover campaign FAILED: see violations above");
            std::process::exit(1);
        }
        return;
    }

    if flag("--media") {
        let mut cfg = if flag("--smoke") {
            media::CampaignConfig::smoke()
        } else {
            media::CampaignConfig::full()
        };
        if let Some(n) = value("--seeds") {
            cfg.seeds = (1..=n.max(1)).collect();
        }
        if let Some(n) = value("--lines") {
            cfg.lines = n.max(1);
        }
        let report = media::run_campaign(&cfg);
        print!("{}", report.render_table());
        if flag("--metrics") {
            println!("\nmerged metrics across all runs:");
            print!("{}", report.merged_metrics().render());
        }
        if !report.violations().is_empty() {
            eprintln!("media-fault campaign FAILED: see violations above");
            std::process::exit(1);
        }
        if !report.scrub_helps() {
            eprintln!("media-fault campaign FAILED: scrub showed no benefit");
            std::process::exit(1);
        }
        return;
    }

    let mut cfg = if flag("--smoke") {
        faults::CampaignConfig::smoke()
    } else {
        faults::CampaignConfig::full()
    };
    if let Some(n) = value("--seeds") {
        cfg.seeds = (1..=n.max(1)).collect();
    }
    if let Some(n) = value("--lines") {
        cfg.lines = n.max(1);
    }

    let report = faults::run_campaign(&cfg);
    print!("{}", report.render_table());

    if flag("--metrics") {
        println!("\nmerged metrics across all runs:");
        print!("{}", report.merged_metrics().render());
    }

    if !report.violations().is_empty() {
        eprintln!("fault campaign FAILED: see violations above");
        std::process::exit(1);
    }
}
