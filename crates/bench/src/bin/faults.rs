//! Runs the deterministic fault-injection campaign and renders the
//! pass/degrade/fail table.
//!
//! ```text
//! faults [--smoke] [--seeds N] [--lines N] [--metrics]
//! ```
//!
//! * `--smoke`   — 3 seeds × 6 lines (the `scripts/verify.sh` gate);
//! * `--seeds N` — sweep seeds 1..=N (default: the full 5-seed sweep);
//! * `--lines N` — lines written/read back per run;
//! * `--metrics` — also print the merged metrics registry.
//!
//! Exits nonzero if any run panics, corrupts data, or fails where the
//! scenario does not permit a typed failure.

use contutto_bench::faults::{run_campaign, CampaignConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };

    let mut cfg = if flag("--smoke") {
        CampaignConfig::smoke()
    } else {
        CampaignConfig::full()
    };
    if let Some(n) = value("--seeds") {
        cfg.seeds = (1..=n.max(1)).collect();
    }
    if let Some(n) = value("--lines") {
        cfg.lines = n.max(1);
    }

    let report = run_campaign(&cfg);
    print!("{}", report.render_table());

    if flag("--metrics") {
        println!("\nmerged metrics across all runs:");
        print!("{}", report.merged_metrics().render());
    }

    if !report.violations().is_empty() {
        eprintln!("fault campaign FAILED: see violations above");
        std::process::exit(1);
    }
}
