//! Runs the memory-level-parallelism pipeline sweep and writes
//! `BENCH_pipeline.json`.
//!
//! ```text
//! pipeline [--smoke] [--reads N] [--out PATH]
//! ```
//!
//! * `--smoke`  — the quick `scripts/verify.sh` gate (256 reads per
//!   depth instead of 2048);
//! * `--reads N` — override the reads per depth;
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_pipeline.json` in the working directory).
//!
//! Each window depth runs twice and must replay to byte-identical
//! trace fingerprints. Exits nonzero if determinism breaks, if
//! depth-16 throughput is not at least 4x depth-1, or if any depth's
//! simulated throughput regressed more than 20 % against the previous
//! report at `--out` (the old file, when present, is the baseline and
//! is only overwritten after the comparison).

use contutto_bench::pipeline::{run_sweep, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let mut cfg = if flag("--smoke") {
        PipelineConfig::smoke()
    } else {
        PipelineConfig::full()
    };
    if let Some(n) = value("--reads").and_then(|v| v.parse().ok()) {
        cfg.reads = std::cmp::max(1u64, n);
    }
    let out = value("--out").unwrap_or_else(|| "BENCH_pipeline.json".into());

    let baseline = std::fs::read_to_string(&out).ok();
    let report = run_sweep(&cfg);
    print!("{}", report.render_table());

    let violations = report.violations(baseline.as_deref());
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("report written to {out}");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("pipeline gate FAILED: {v}");
        }
        std::process::exit(1);
    }
}
