//! Deterministic media-fault campaign: bit flips in the DIMM arrays.
//!
//! Where [`crate::faults`] attacks the *link*, this campaign attacks
//! the *media* behind it: seeded single-bit flips rain on a hot range
//! of each DIMM while the same write-then-read-back workload runs
//! through a ConTutto channel, for every populated technology
//! ({DRAM, STT-MRAM, NVDIMM-N}) with patrol scrub on and off. The
//! invariant asserted by [`CampaignReport::violations`] is the
//! RAS contract end to end:
//!
//! * **no silent corruption, ever** — a completed read either returns
//!   exactly the written bytes (clean or ECC-corrected) or surfaces a
//!   typed [`DmiError::Poisoned`]; a mismatch that sneaks through is a
//!   campaign violation, as is any panic;
//! * **scrub measurably helps** — the aggregate uncorrectable count
//!   with scrub disabled must exceed the scrub-enabled aggregate
//!   ([`CampaignReport::scrub_benefit`]), or the scrubber is dead
//!   weight.
//!
//! Runs are deterministic: the same scenario and seed produce a
//! byte-identical trace fingerprint, printed in the table.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_dmi::command::CacheLine;
use contutto_dmi::DmiError;
use contutto_memdev::{FaultConfig, MramGeneration};
use contutto_power8::channel::{ChannelConfig, DmiChannel};
use contutto_sim::{MetricsRegistry, SimTime};

use crate::faults::campaign_policy;

/// The flips are spread over this much sim time from power-on.
pub const FAULT_WINDOW: SimTime = SimTime::from_us(200);

/// Patrol-scrub interval for the scrub-enabled runs: ten passes fit
/// inside the fault window, so latent flips are healed before a second
/// flip can join them in the same ECC word.
pub const SCRUB_INTERVAL: SimTime = SimTime::from_us(20);

/// Transient single-bit flips injected per run (split across the two
/// DIMM ports). Dense enough that, unscrubbed, many words collect two
/// flips and go uncorrectable.
pub const TRANSIENT_FLIPS: u32 = 120;

/// The memory technology populated behind the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Media {
    /// 2 × 4 GB DDR3 DRAM.
    Dram,
    /// 2 × 256 MB STT-MRAM.
    Mram,
    /// 2 × 4 GB NVDIMM-N.
    Nvdimm,
}

impl Media {
    /// Every technology, in campaign order.
    pub fn all() -> [Media; 3] {
        [Media::Dram, Media::Mram, Media::Nvdimm]
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Media::Dram => "dram",
            Media::Mram => "mram",
            Media::Nvdimm => "nvdimm",
        }
    }

    fn population(self) -> MemoryPopulation {
        match self {
            Media::Dram => MemoryPopulation::dram_8gb(),
            Media::Mram => MemoryPopulation::mram_512mb(MramGeneration::Pmtj),
            Media::Nvdimm => MemoryPopulation::nvdimm_8gb(),
        }
    }
}

/// One campaign cell: a technology with scrub on or off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Populated media.
    pub media: Media,
    /// Whether patrol scrub runs at [`SCRUB_INTERVAL`].
    pub scrub: bool,
}

impl Scenario {
    /// Every media × scrub combination, scrub-on first per media.
    pub fn all() -> Vec<Scenario> {
        let mut out = Vec::new();
        for media in Media::all() {
            for scrub in [true, false] {
                out.push(Scenario { media, scrub });
            }
        }
        out
    }

    /// Stable display name (also the table key).
    pub fn name(self) -> String {
        format!(
            "{}{}",
            self.media.name(),
            if self.scrub { "+scrub" } else { "-noscrub" }
        )
    }
}

/// How a single run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every read returned the written bytes without ECC intervention.
    Pass,
    /// Data integrity held, but the RAS machinery acted: corrections,
    /// page retirements, or loud [`DmiError::Poisoned`] reads.
    Degraded,
    /// An unexpected typed error (media faults must never hang the
    /// protocol or starve tags).
    Fail(DmiError),
    /// A read returned bytes that differ from what was written with no
    /// poison flag — silent corruption, the one unforgivable outcome.
    Corrupt {
        /// Number of mismatching lines.
        mismatches: u64,
    },
    /// The run panicked — always a campaign violation.
    Panicked(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Pass => write!(f, "pass"),
            Outcome::Degraded => write!(f, "degraded"),
            Outcome::Fail(e) => write!(f, "fail: {e}"),
            Outcome::Corrupt { mismatches } => write!(f, "CORRUPT ({mismatches} lines)"),
            Outcome::Panicked(msg) => write!(f, "PANIC: {msg}"),
        }
    }
}

/// The record of one scenario × seed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario that ran.
    pub scenario: Scenario,
    /// Seed that parameterized the fault pattern.
    pub seed: u64,
    /// Classified end state.
    pub outcome: Outcome,
    /// ECC corrections (demand + scrub) across both ports.
    pub corrected: u64,
    /// Uncorrectable errors striking *demand* reads — the number that
    /// matters to the host, and the one patrol scrub exists to drive
    /// down. (Scrub's own detections recur every pass over a latent
    /// bad line, so they live in the metrics, not this column.)
    pub uncorrectable: u64,
    /// Patrol-scrub passes that ran.
    pub scrub_passes: u64,
    /// Pages retired over the correctable-error threshold.
    pub pages_retired: u64,
    /// Reads surfaced to the host as [`DmiError::Poisoned`].
    pub poisoned_reads: u64,
    /// Trace fingerprint — byte-identical across same-seed runs.
    pub fingerprint: u64,
    /// Same-seed rerun matched (fingerprint and outcome).
    pub deterministic: bool,
    /// Full metrics snapshot for `--metrics` aggregation.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Whether this run violates the no-silent-corruption contract.
    /// Poison is *not* a violation — it is the loud failure the whole
    /// pipeline exists to deliver.
    pub fn is_violation(&self) -> bool {
        if !self.deterministic {
            return true;
        }
        match &self.outcome {
            Outcome::Pass | Outcome::Degraded => false,
            Outcome::Fail(_) | Outcome::Corrupt { .. } | Outcome::Panicked(_) => true,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds swept per scenario.
    pub seeds: Vec<u64>,
    /// Cache lines written and read back per run (kept inside the hot
    /// range; rounded up to an even count so both DIMM ports see the
    /// same number of lines).
    pub lines: u64,
}

impl CampaignConfig {
    /// The quick gate used by `scripts/verify.sh`: 2 seeds, 8 lines.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1, 2],
            lines: 8,
        }
    }

    /// The full sweep: 5 seeds, 8 lines per run.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: (1..=5).collect(),
            lines: 8,
        }
    }
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every run, in scenario-major order.
    pub runs: Vec<RunReport>,
}

impl CampaignReport {
    /// Runs that break the no-silent-corruption contract.
    pub fn violations(&self) -> Vec<&RunReport> {
        self.runs.iter().filter(|r| r.is_violation()).collect()
    }

    /// Aggregate demand-read uncorrectable counts as (scrub on, scrub
    /// off). The off total exceeding the on total is the scrubber's
    /// measurable benefit; [`CampaignReport::scrub_helps`] checks it.
    pub fn scrub_benefit(&self) -> (u64, u64) {
        let mut on = 0;
        let mut off = 0;
        for r in &self.runs {
            if r.scenario.scrub {
                on += r.uncorrectable;
            } else {
                off += r.uncorrectable;
            }
        }
        (on, off)
    }

    /// Whether disabling scrub measurably raised the aggregate
    /// uncorrectable count.
    pub fn scrub_helps(&self) -> bool {
        let (on, off) = self.scrub_benefit();
        off > on
    }

    /// All run metrics merged (counters accumulate).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for r in &self.runs {
            merged.merge(&r.metrics);
        }
        merged
    }

    /// Renders the campaign table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>4}  {:<10} {:>9} {:>7} {:>6} {:>7} {:>8} {:>4}  {:<16}\n",
            "scenario",
            "seed",
            "outcome",
            "corrected",
            "uncorr",
            "scrubs",
            "retired",
            "poisoned",
            "det",
            "fingerprint"
        ));
        out.push_str(&"-".repeat(101));
        out.push('\n');
        for r in &self.runs {
            out.push_str(&format!(
                "{:<16} {:>4}  {:<10} {:>9} {:>7} {:>6} {:>7} {:>8} {:>4}  {:016x}\n",
                r.scenario.name(),
                r.seed,
                r.outcome.to_string(),
                r.corrected,
                r.uncorrectable,
                r.scrub_passes,
                r.pages_retired,
                r.poisoned_reads,
                if r.deterministic { "yes" } else { "NO" },
                r.fingerprint,
            ));
        }
        let (on, off) = self.scrub_benefit();
        out.push_str(&format!(
            "\n{} runs, {} violations; aggregate uncorrectable: {} with scrub, {} without\n",
            self.runs.len(),
            self.violations().len(),
            on,
            off,
        ));
        out
    }
}

/// Builds the channel for one run: a ConTutto card populated with the
/// scenario's media, a seeded flip storm over the first `lines` cache
/// lines of each DIMM port, and scrub armed when the scenario says so.
fn channel_for(scenario: Scenario, seed: u64, lines: u64) -> DmiChannel {
    let mut card = ConTutto::new(ContuttoConfig::base(), scenario.media.population());
    card.attach_media_faults(FaultConfig {
        transient_flips: TRANSIENT_FLIPS,
        window: FAULT_WINDOW,
        hot_start: 0,
        // Global lines interleave across the two ports, so each port's
        // hot range holds half of them (in device-local addresses).
        hot_len: (lines / 2).max(1) * 128,
        ..FaultConfig::none(seed)
    });
    if scenario.scrub {
        card.enable_scrub(SCRUB_INTERVAL);
    }
    let mut ch = DmiChannel::new(ChannelConfig::contutto(), Box::new(card));
    ch.set_retry_policy(campaign_policy());
    ch
}

/// The workload: write patterned lines, idle across the fault window,
/// read each line back. Returns (silent mismatches, unexpected error,
/// poisoned reads).
fn workload(ch: &mut DmiChannel, seed: u64, lines: u64) -> (u64, Option<DmiError>, u64) {
    let mut written = Vec::new();
    for i in 0..lines {
        let addr = i * 128;
        let line = CacheLine::patterned(seed.wrapping_mul(1000) + i);
        if let Err(e) = ch.write_line_blocking(addr, line) {
            return (0, Some(e), 0);
        }
        written.push((addr, line));
    }
    // Idle until every scheduled flip has fallen due (plus slack so
    // the final scrub pass lands before the reads).
    let resume = ch.now().max(FAULT_WINDOW) + SCRUB_INTERVAL * 3;
    ch.run_until(resume);
    let mut mismatches = 0;
    let mut poisoned = 0;
    for (addr, line) in written {
        match ch.read_line_blocking(addr) {
            Ok((back, _)) if back == line => {}
            Ok(_) => mismatches += 1,
            Err(DmiError::Poisoned { .. }) => poisoned += 1,
            Err(e) => return (mismatches, Some(e), poisoned),
        }
    }
    (mismatches, None, poisoned)
}

fn run_once(scenario: Scenario, seed: u64, lines: u64) -> RunReport {
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut ch = channel_for(scenario, seed, lines);
        let tracer = ch.enable_tracing(1 << 15);
        let (mismatches, error, poisoned) = workload(&mut ch, seed, lines);
        let metrics = ch.metrics();
        let corrected = metrics.counter("buffer.media.demand_corrected")
            + metrics.counter("buffer.media.scrub_corrected");
        let uncorrectable = metrics.counter("buffer.media.demand_uncorrectable");
        let scrub_passes = metrics.counter("buffer.media.scrub_passes");
        let pages_retired = metrics.counter("buffer.media.pages_retired");
        let ras_acted = corrected + uncorrectable + pages_retired + poisoned > 0;
        let outcome = if mismatches > 0 {
            Outcome::Corrupt { mismatches }
        } else if let Some(e) = error {
            Outcome::Fail(e)
        } else if ras_acted {
            Outcome::Degraded
        } else {
            Outcome::Pass
        };
        RunReport {
            scenario,
            seed,
            outcome,
            corrected,
            uncorrectable,
            scrub_passes,
            pages_retired,
            poisoned_reads: poisoned,
            fingerprint: tracer.fingerprint(),
            deterministic: true,
            metrics,
        }
    }));
    result.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        RunReport {
            scenario,
            seed,
            outcome: Outcome::Panicked(msg),
            corrected: 0,
            uncorrectable: 0,
            scrub_passes: 0,
            pages_retired: 0,
            poisoned_reads: 0,
            fingerprint: 0,
            deterministic: true,
            metrics: MetricsRegistry::new(),
        }
    })
}

/// Runs one scenario at one seed — twice, because byte-identical
/// same-seed traces are part of the contract: a divergence marks the
/// run non-deterministic, which is always a violation. Panics are
/// caught so a regression shows up as a `Panicked` row rather than
/// aborting the campaign.
pub fn run_scenario(scenario: Scenario, seed: u64, lines: u64) -> RunReport {
    let lines = lines.max(2).next_multiple_of(2);
    let (mut report, deterministic) = crate::harness::run_twice_assert_identical(
        || run_once(scenario, seed, lines),
        |a, b| a.fingerprint == b.fingerprint && a.outcome == b.outcome,
    );
    report.deterministic = deterministic;
    report
}

/// Runs every media × scrub scenario across every seed.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut runs = Vec::new();
    for scenario in Scenario::all() {
        for &seed in &cfg.seeds {
            runs.push(run_scenario(scenario, seed, cfg.lines));
        }
    }
    CampaignReport { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_never_corrupts_silently() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1, 2],
            lines: 8,
        });
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "{}",
            violations
                .iter()
                .map(|r| format!("{} seed {}: {}", r.scenario.name(), r.seed, r.outcome))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.scrub_helps(),
            "disabling scrub must raise the uncorrectable aggregate: {:?}",
            report.scrub_benefit()
        );
    }

    #[test]
    fn unscrubbed_faults_go_loud_not_silent() {
        // Without scrub the flip storm must produce uncorrectable
        // lines, and every one of them must surface as poison — never
        // as quietly wrong data.
        let r = run_scenario(
            Scenario {
                media: Media::Dram,
                scrub: false,
            },
            1,
            8,
        );
        assert!(!r.is_violation(), "{}", r.outcome);
        assert!(r.uncorrectable > 0, "storm should defeat SEC-DED");
        assert!(r.poisoned_reads > 0, "uncorrectable reads poison loudly");
    }

    #[test]
    fn scrubbed_run_heals_and_traces_passes() {
        let r = run_scenario(
            Scenario {
                media: Media::Mram,
                scrub: true,
            },
            3,
            8,
        );
        assert!(!r.is_violation(), "{}", r.outcome);
        assert!(r.scrub_passes > 0, "scrub must actually run");
        assert!(r.corrected > 0, "scrub corrects latent flips");
    }

    #[test]
    fn same_seed_reruns_are_fingerprint_identical() {
        let s = Scenario {
            media: Media::Nvdimm,
            scrub: true,
        };
        let a = run_scenario(s, 4, 8);
        let b = run_scenario(s, 4, 8);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.outcome, b.outcome);
    }
}
