//! Memory-level-parallelism pipeline benchmark.
//!
//! Drives the non-blocking [`Power8System::submit_load`] /
//! [`Power8System::poll`] path with uniform random reads against the
//! §4.1 single-ConTutto layout at a sweep of in-flight window depths,
//! and reports:
//!
//! * **lines/sec** — simulated read throughput (reads ÷ simulated
//!   elapsed time); the paper's motivation for a deep DMI tag window;
//! * **achieved MLP** — Little's-law concurrency (Σ per-read latency ÷
//!   elapsed time), which saturates at the channel's frame-slot
//!   bandwidth no matter how deep the window goes;
//! * **events/sec** — simulator wall-clock throughput (completions per
//!   host second), the cost of running the model itself.
//!
//! Every depth runs **twice** and the two trace fingerprints must be
//! byte-identical — the determinism invariant holds at any depth. The
//! report gates on depth-16 achieving at least 4x the depth-1
//! throughput, and (when a previous `BENCH_pipeline.json` exists) on
//! no depth regressing its simulated throughput by more than 20 %.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use contutto_core::ContuttoConfig;
use contutto_dmi::command::CacheLine;
use contutto_power8::firmware::layouts;
use contutto_power8::system::Power8System;
use contutto_sim::SimTime;

/// Slot of the ConTutto card in the single-card latency layout.
const CONTUTTO_SLOT: usize = 2;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// In-flight window depths to sweep.
    pub depths: Vec<usize>,
    /// Uniform random reads per depth.
    pub reads: u64,
    /// Distinct cache lines in the working set.
    pub lines: u64,
    /// Boot / address-stream seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// The quick `scripts/verify.sh` gate.
    pub fn smoke() -> Self {
        PipelineConfig {
            depths: vec![1, 4, 16, 32],
            reads: 256,
            lines: 32,
            seed: 7,
        }
    }

    /// The full sweep.
    pub fn full() -> Self {
        PipelineConfig {
            reads: 2048,
            lines: 128,
            ..PipelineConfig::smoke()
        }
    }
}

/// Measurements for one window depth.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthRun {
    /// The in-flight window applied to every channel.
    pub depth: usize,
    /// Reads completed.
    pub reads: u64,
    /// Simulated time the sweep took.
    pub sim_seconds: f64,
    /// Host time the sweep took (both fingerprint runs).
    pub wall_seconds: f64,
    /// Simulated read throughput.
    pub lines_per_sec: f64,
    /// Completions per host wall-clock second.
    pub events_per_sec: f64,
    /// Little's-law concurrency actually achieved.
    pub achieved_mlp: f64,
    /// Trace fingerprint (identical across both runs).
    pub fingerprint: u64,
}

/// The sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// One entry per depth, in sweep order.
    pub runs: Vec<DepthRun>,
}

fn boot(seed: u64) -> Power8System {
    Power8System::boot(
        layouts::single_contutto_for_latency(ContuttoConfig::base()),
        seed,
    )
    .expect("pipeline benchmark system boots")
}

fn contutto_base(sys: &Power8System) -> u64 {
    sys.memory_map()
        .regions()
        .iter()
        .find(|r| r.channel == CONTUTTO_SLOT)
        .expect("contutto region")
        .base
}

fn channel_now(sys: &Power8System) -> SimTime {
    sys.channels()
        .iter()
        .find(|c| c.slot == CONTUTTO_SLOT)
        .expect("contutto channel")
        .channel
        .now()
}

/// One measured pass at a depth: returns (sim elapsed, Σ latency,
/// fingerprint).
fn one_pass(cfg: &PipelineConfig, depth: usize) -> (f64, f64, u64) {
    let mut sys = boot(cfg.seed);
    let tracer = sys.enable_tracing(1 << 16);
    sys.set_mlp_window(depth);
    let base = contutto_base(&sys);
    for i in 0..cfg.lines {
        sys.store_line(base + i * 128, CacheLine::patterned(i + 1))
            .expect("working-set store");
    }
    let mut lcg = cfg.seed | 1;
    let mut next_line = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg % cfg.lines
    };
    let t0 = channel_now(&sys);
    let mut submit_times: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut latency_sum = 0.0f64;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    while completed < cfg.reads {
        // Keep exactly `depth` requests in the system so the achieved
        // MLP measures the window, not software queueing.
        while submitted < cfg.reads && submitted - completed < depth as u64 {
            let addr = base + next_line() * 128;
            let id = sys.submit_load(addr).expect("pipeline submit");
            submit_times.insert(id.raw(), channel_now(&sys));
            submitted += 1;
        }
        for (id, result) in sys.poll() {
            let c = result.expect("pipeline read completes");
            let issued = submit_times
                .remove(&id.raw())
                .expect("completion for submitted read");
            latency_sum += (c.completed_at - issued).as_secs_f64();
            completed += 1;
        }
    }
    let elapsed = (channel_now(&sys) - t0).as_secs_f64();
    (elapsed, latency_sum, tracer.fingerprint())
}

/// Runs the sweep. Each depth runs twice; the two trace fingerprints
/// must match or the depth is reported as a determinism violation by
/// [`PipelineReport::violations`] (the run itself records the
/// mismatch by storing fingerprint 0, which never collides with a
/// real FNV-1a fingerprint of a non-empty trace).
pub fn run_sweep(cfg: &PipelineConfig) -> PipelineReport {
    let mut runs = Vec::with_capacity(cfg.depths.len());
    for &depth in &cfg.depths {
        let wall = std::time::Instant::now();
        let (sim_a, lat_a, fp_a) = one_pass(cfg, depth);
        let (sim_b, lat_b, fp_b) = one_pass(cfg, depth);
        let wall_seconds = wall.elapsed().as_secs_f64();
        let deterministic = fp_a == fp_b && sim_a == sim_b && lat_a == lat_b;
        runs.push(DepthRun {
            depth,
            reads: cfg.reads,
            sim_seconds: sim_a,
            wall_seconds,
            lines_per_sec: cfg.reads as f64 / sim_a,
            events_per_sec: 2.0 * cfg.reads as f64 / wall_seconds.max(1e-9),
            achieved_mlp: lat_a / sim_a,
            fingerprint: if deterministic { fp_a } else { 0 },
        });
    }
    PipelineReport { runs }
}

impl PipelineReport {
    /// The headline ratio: simulated throughput at depth 16 over
    /// depth 1, `None` if either depth was not swept.
    pub fn speedup_16_vs_1(&self) -> Option<f64> {
        let at = |d: usize| {
            self.runs
                .iter()
                .find(|r| r.depth == d)
                .map(|r| r.lines_per_sec)
        };
        Some(at(16)? / at(1)?)
    }

    /// Gate violations: determinism, the 4x depth-16 speedup floor,
    /// and (given a previous report's JSON) any depth more than 20 %
    /// slower in simulated throughput than it used to be.
    pub fn violations(&self, baseline_json: Option<&str>) -> Vec<String> {
        let mut v = Vec::new();
        for r in &self.runs {
            if r.fingerprint == 0 {
                v.push(format!(
                    "depth {}: trace fingerprints differ between identical runs",
                    r.depth
                ));
            }
        }
        match self.speedup_16_vs_1() {
            Some(s) if s < 4.0 => v.push(format!(
                "depth-16 throughput only {s:.2}x depth-1 (floor is 4x)"
            )),
            Some(_) => {}
            None => v.push("sweep must include depths 1 and 16".into()),
        }
        if let Some(json) = baseline_json {
            for (depth, old) in parse_baseline(json) {
                if let Some(r) = self.runs.iter().find(|r| r.depth == depth) {
                    if r.lines_per_sec < 0.8 * old {
                        v.push(format!(
                            "depth {}: {:.0} lines/sec regressed >20% from baseline {:.0}",
                            depth, r.lines_per_sec, old
                        ));
                    }
                }
            }
        }
        v
    }

    /// Renders the human table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>13} {:>13} {:>11} {:>18}",
            "depth", "lines/sec", "achieved MLP", "sim ms", "events/s", "fingerprint"
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "{:>6} {:>14.0} {:>13.2} {:>13.4} {:>11.0} {:>#18x}",
                r.depth,
                r.lines_per_sec,
                r.achieved_mlp,
                r.sim_seconds * 1e3,
                r.events_per_sec,
                r.fingerprint
            );
        }
        if let Some(s) = self.speedup_16_vs_1() {
            let _ = writeln!(out, "depth-16 vs depth-1 speedup: {s:.2}x");
        }
        out
    }

    /// Serializes the report (hand-rolled JSON; no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmark\": \"pipeline\",\n  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"depth\": {}, \"reads\": {}, \"lines_per_sec\": {:.3}, \
                 \"achieved_mlp\": {:.4}, \"sim_seconds\": {:.9}, \
                 \"events_per_sec\": {:.1}, \"fingerprint\": \"{:#x}\"}}",
                r.depth,
                r.reads,
                r.lines_per_sec,
                r.achieved_mlp,
                r.sim_seconds,
                r.events_per_sec,
                r.fingerprint
            );
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"speedup_depth16_vs_depth1\": {:.3}",
            self.speedup_16_vs_1().unwrap_or(0.0)
        );
        out.push_str("}\n");
        out
    }
}

/// Extracts `(depth, lines_per_sec)` pairs from a previous report's
/// JSON. Tolerant scanner over the format [`PipelineReport::to_json`]
/// emits; unparseable input yields no pairs (no gate).
fn parse_baseline(json: &str) -> Vec<(usize, f64)> {
    let mut pairs = Vec::new();
    for chunk in json.split("\"depth\":").skip(1) {
        let depth: usize = match chunk
            .trim_start()
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .and_then(|d| d.parse().ok())
        {
            Some(d) => d,
            None => continue,
        };
        let Some(rest) = chunk.split("\"lines_per_sec\":").nth(1) else {
            continue;
        };
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse() {
            pairs.push((depth, v));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PipelineConfig {
        PipelineConfig {
            depths: vec![1, 16],
            reads: 48,
            lines: 8,
            seed: 7,
        }
    }

    #[test]
    fn depth16_is_at_least_4x_depth1() {
        let report = run_sweep(&tiny());
        let s = report.speedup_16_vs_1().unwrap();
        assert!(s >= 4.0, "speedup {s}");
        assert!(report.violations(None).is_empty());
    }

    #[test]
    fn achieved_mlp_tracks_the_window() {
        let report = run_sweep(&tiny());
        let d1 = &report.runs[0];
        let d16 = &report.runs[1];
        assert!(d1.achieved_mlp <= 1.05, "depth-1 MLP {}", d1.achieved_mlp);
        assert!(d16.achieved_mlp > 4.0, "depth-16 MLP {}", d16.achieved_mlp);
        assert!(d16.achieved_mlp <= 16.5);
    }

    #[test]
    fn double_runs_are_fingerprint_identical() {
        let report = run_sweep(&tiny());
        for r in &report.runs {
            assert_ne!(r.fingerprint, 0, "depth {} not deterministic", r.depth);
        }
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let report = run_sweep(&tiny());
        let pairs = parse_baseline(&report.to_json());
        assert_eq!(pairs.len(), report.runs.len());
        for ((d, v), r) in pairs.iter().zip(&report.runs) {
            assert_eq!(*d, r.depth);
            assert!((v - r.lines_per_sec).abs() < 0.01);
        }
        // A fresh report never regresses against its own numbers.
        assert!(report.violations(Some(&report.to_json())).is_empty());
        // A 10x faster fake baseline trips the 20% gate.
        let inflated = report
            .to_json()
            .replace("\"lines_per_sec\": ", "\"lines_per_sec\": 9")
            .replace("\"benchmark\"", "\"benchmark_inflated\"");
        assert!(!report.violations(Some(&inflated)).is_empty());
    }
}
