//! The deterministic chaos engine: composable fault plans, a global
//! durability oracle, and automatic shrinking to minimal reproducers.
//!
//! The per-campaign harnesses (`faults`, `media`, `failover`, `power`,
//! `traffic`) each exercise one fault family against one invariant.
//! This module closes the gap between them: a [`FaultPlan`] is a
//! time-ordered list of typed actions — link noise windows, media flip
//! storms, scrub toggles, maintenance pulls, EPOW, surprise power
//! cuts, slow-channel windows, traffic-rate steps, bounded demand
//! spikes, and whole-system checkpoints with timeline rewinds
//! (`Checkpoint` / `RestoreLatest`) — generated from a seed at a configurable
//! intensity and applied against a live system through
//! [`contutto_power8::Power8System::apply_fault_action`] while a
//! ledgered key/value load
//! ([`contutto_workloads::chaos_load::ChaosLoad`]) runs. Compositions
//! no hand-written campaign enumerates (a power cut mid-evacuation, a
//! flip storm during a link blackout) fall out of the generator for
//! free.
//!
//! After every plan the global durability [`Oracle`] holds the system
//! to one contract, whatever the fault mix was:
//!
//! * every **acknowledged** store is readable with its last acked
//!   value, or surfaced as a *typed* loss (a poison error, an orphan,
//!   a reboot `data_loss` report) — never silently wrong
//!   ([`Violation::SilentCorruption`], [`Violation::UnreportedLoss`]);
//! * volatile contents never survive a power cut
//!   ([`Violation::Resurrection`]);
//! * nothing panics ([`Violation::Panicked`]);
//! * a same-seed rerun is byte-identical — trace fingerprint and
//!   violation list ([`Violation::NonDeterministic`]).
//!
//! When a plan fails, [`shrink`] greedily deletes actions, truncates
//! the request stream and narrows fault parameters while the failure
//! (same violation kind) persists, and the minimal plan serializes to
//! a JSON reproducer replayable with `faults --chaos --replay <file>`.
//!
//! Plan actions trigger on the load's *logical* step counter (requests
//! submitted), not on wall-clock picoseconds, so a latency shift
//! cannot reorder a plan against its workload.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::{self, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};

use contutto_centaur::CentaurConfig;
use contutto_core::{ContuttoConfig, MemoryKind, MemoryPopulation};
use contutto_dmi::command::CacheLine;
use contutto_power8::failover::FailoverMode;
use contutto_power8::firmware::{layouts, BootError, SlotPopulation};
use contutto_power8::system::{Power8System, SystemError};
use contutto_power8::{FaultAction, FaultOutcome};
use contutto_sim::{SimRng, SimTime};
use contutto_workloads::chaos_load::{
    ChaosLoad, ChaosLoadConfig, HookVerdict, RewindPoint, StoreEvent, StoreOutcome,
};

use crate::failover::{SPARE_SLOT, VICTIM_SLOT};
use crate::faults::campaign_policy;

/// Keys the chaos load spreads across the memory map.
const LOAD_KEYS: u64 = 64;

/// Read fraction of the chaos load (the rest are versioned stores).
const LOAD_READ_FRACTION: f64 = 0.5;

/// Default inter-submit gap (a plan's `RateStep` actions rewrite it).
const DEFAULT_GAP: SimTime = SimTime::from_ns(400);

// ------------------------------------------------------------- layouts

/// Which testbed a plan runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanLayout {
    /// The failover pair: CDIMM system memory, a ConTutto DRAM victim
    /// at slot 2 and a hot spare at slot 4 (all volatile).
    Failover,
    /// CDIMM system memory plus a small NVDIMM ConTutto at slot 2 —
    /// the layout where a power cut has something durable to lose.
    Nvdimm,
}

impl PlanLayout {
    /// Stable display name (also the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            PlanLayout::Failover => "failover",
            PlanLayout::Nvdimm => "nvdimm",
        }
    }

    /// Parses [`PlanLayout::name`] back.
    pub fn parse(s: &str) -> Option<PlanLayout> {
        match s {
            "failover" => Some(PlanLayout::Failover),
            "nvdimm" => Some(PlanLayout::Nvdimm),
            _ => None,
        }
    }

    /// Slots a plan may target with link-level faults.
    fn fault_slots(self) -> &'static [usize] {
        match self {
            PlanLayout::Failover => &[0, VICTIM_SLOT, SPARE_SLOT],
            PlanLayout::Nvdimm => &[0, 2],
        }
    }

    /// The ConTutto slot with fault-capable media hooks.
    fn contutto_slot(self) -> usize {
        2
    }

    fn boot(self, seed: u64) -> Result<Power8System, BootError> {
        match self {
            PlanLayout::Failover => Power8System::boot_with_failover(
                layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
                seed,
                FailoverMode::Spare { spare: SPARE_SLOT },
            ),
            PlanLayout::Nvdimm => Power8System::boot(
                vec![
                    SlotPopulation::Cdimm {
                        config: CentaurConfig::optimized(),
                        capacity: 4 << 30,
                    },
                    SlotPopulation::Empty,
                    SlotPopulation::ConTutto {
                        config: ContuttoConfig::base(),
                        population: MemoryPopulation {
                            kind: MemoryKind::NvdimmN,
                            dimm_capacity: 512 << 10,
                            dimms: 2,
                        },
                    },
                    SlotPopulation::Empty,
                ],
                seed,
            ),
        }
    }
}

// ---------------------------------------------------------------- plans

/// One plan-level action: a typed system fault, or a load-shape change.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAction {
    /// A fault routed through `apply_fault_action`.
    Fault(FaultAction),
    /// A traffic-rate step: the load's inter-submit gap becomes `gap`.
    RateStep {
        /// New inter-submit gap.
        gap: SimTime,
    },
    /// A bounded demand burst: the inter-submit gap drops to `gap` for
    /// `steps` logical steps, then snaps back to whatever the base
    /// rate was (the plan's gap, or the last `RateStep`). Composed
    /// with a `SlowChannel` window this is the metastable-failure
    /// trigger shape: a load spike landing on degraded capacity.
    TrafficSpike {
        /// Burst inter-submit gap (smaller = harder).
        gap: SimTime,
        /// Logical steps the burst lasts.
        steps: u64,
    },
    /// Snapshot the whole system mid-plan. A later `RestoreLatest`
    /// rewinds to it; a checkpoint nobody restores is still a fault
    /// (the snapshot walk itself must not perturb the run).
    Checkpoint,
    /// Restore the most recent `Checkpoint`, abandoning everything
    /// simulated since: in-flight requests, faults, even power cuts.
    /// The ledger demotes the abandoned timeline and the oracle holds
    /// the system to the *surviving* one — a rolled-back value
    /// showing up afterwards is a resurrection. Skipped if no
    /// checkpoint has been taken yet.
    RestoreLatest,
}

/// An action bound to the logical step it fires at.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedAction {
    /// Fires when the load has submitted this many requests.
    pub at_step: u64,
    /// What fires.
    pub action: PlanAction,
}

/// A serializable, seed-generated chaos plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Testbed the plan runs against.
    pub layout: PlanLayout,
    /// Seed for boot and the load's key/op stream.
    pub seed: u64,
    /// Requests the load submits.
    pub requests: u64,
    /// Initial inter-submit gap.
    pub gap: SimTime,
    /// Actions in firing order (sorted by `at_step`).
    pub actions: Vec<PlannedAction>,
}

fn in_range(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    lo + rng.gen_below(hi - lo + 1)
}

impl FaultPlan {
    /// Generates plan `index` for `(layout, seed)` with `intensity`
    /// action draws. Deterministic: the same inputs always yield the
    /// same plan. Link noise is always paired with a later clear; at
    /// most one power cut and one maintenance pull per plan so runs
    /// stay bounded.
    pub fn generate(
        layout: PlanLayout,
        seed: u64,
        index: u64,
        intensity: u32,
        requests: u64,
    ) -> FaultPlan {
        let requests = requests.max(16);
        let mut rng = SimRng::seed_from_stream(seed, 0xC4A0_5000 ^ index);
        let mut actions = Vec::new();
        let mut cuts = 0u32;
        let mut pulls = 0u32;
        for _ in 0..intensity {
            let at_step = rng.gen_below(requests);
            let slots = layout.fault_slots();
            let slot = slots[rng.gen_below(slots.len() as u64) as usize];
            let contutto = layout.contutto_slot();
            match rng.gen_below(12) {
                0 | 1 => {
                    // Noise window: per-frame corruption the retry
                    // ladder must absorb, cleared later in the run.
                    let p = in_range(&mut rng, 1, 20) as f64 / 1000.0;
                    let noise_seed = rng.next_u64();
                    actions.push(PlannedAction {
                        at_step,
                        action: PlanAction::Fault(FaultAction::LinkNoise {
                            slot,
                            down: p,
                            up: p / 2.0,
                            seed: noise_seed,
                        }),
                    });
                    actions.push(PlannedAction {
                        at_step: (at_step + requests / 8 + 1).min(requests),
                        action: PlanAction::Fault(FaultAction::LinkClear { slot }),
                    });
                }
                2 => {
                    let storm_seed = rng.next_u64();
                    let flips = in_range(&mut rng, 4, 24) as u32;
                    let window = SimTime::from_us(in_range(&mut rng, 20, 60));
                    let hot_start = in_range(&mut rng, 0, 8191) * 128;
                    let hot_len = in_range(&mut rng, 1, 16) * 4096;
                    let stuck = in_range(&mut rng, 0, 1) as u32;
                    actions.push(PlannedAction {
                        at_step,
                        action: PlanAction::Fault(FaultAction::FlipStorm {
                            slot: contutto,
                            seed: storm_seed,
                            flips,
                            window,
                            hot_start,
                            hot_len,
                            stuck,
                        }),
                    });
                }
                3 => actions.push(PlannedAction {
                    at_step,
                    action: PlanAction::Fault(FaultAction::ScrubOn {
                        slot: contutto,
                        interval: SimTime::from_us(in_range(&mut rng, 5, 25)),
                    }),
                }),
                4 => actions.push(PlannedAction {
                    at_step,
                    action: PlanAction::Fault(FaultAction::ScrubOff { slot: contutto }),
                }),
                5 => actions.push(PlannedAction {
                    at_step,
                    action: PlanAction::Fault(FaultAction::Epow),
                }),
                6 => {
                    let action = if cuts == 0 {
                        cuts += 1;
                        FaultAction::PowerCut {
                            outage: SimTime::from_us(in_range(&mut rng, 30, 120)),
                        }
                    } else {
                        FaultAction::Epow
                    };
                    actions.push(PlannedAction {
                        at_step,
                        action: PlanAction::Fault(action),
                    });
                }
                8 => {
                    // Latency degradation: the channel goes slow, not
                    // dead — the shape retry storms feed on.
                    actions.push(PlannedAction {
                        at_step,
                        action: PlanAction::Fault(FaultAction::SlowChannel {
                            slot,
                            window: SimTime::from_us(in_range(&mut rng, 10, 40)),
                        }),
                    });
                }
                9 => {
                    let steps = in_range(&mut rng, 4, requests / 4 + 4);
                    actions.push(PlannedAction {
                        at_step,
                        action: PlanAction::TrafficSpike {
                            gap: SimTime::from_ps(in_range(&mut rng, 50_000, 200_000)),
                            steps,
                        },
                    });
                }
                10 => {
                    // Checkpoint paired with a later rewind: whatever
                    // other draws land in between gets un-happened.
                    actions.push(PlannedAction {
                        at_step,
                        action: PlanAction::Checkpoint,
                    });
                    actions.push(PlannedAction {
                        at_step: (at_step + requests / 8 + 1).min(requests),
                        action: PlanAction::RestoreLatest,
                    });
                }
                11 => actions.push(PlannedAction {
                    at_step,
                    action: PlanAction::Checkpoint,
                }),
                _ => {
                    if layout == PlanLayout::Failover && pulls == 0 {
                        pulls += 1;
                        actions.push(PlannedAction {
                            at_step,
                            action: PlanAction::Fault(FaultAction::MaintenancePull {
                                slot: VICTIM_SLOT,
                            }),
                        });
                    } else {
                        actions.push(PlannedAction {
                            at_step,
                            action: PlanAction::RateStep {
                                gap: SimTime::from_ps(in_range(&mut rng, 100_000, 1_500_000)),
                            },
                        });
                    }
                }
            }
        }
        actions.sort_by_key(|a| a.at_step);
        FaultPlan {
            layout,
            seed,
            requests,
            gap: DEFAULT_GAP,
            actions,
        }
    }

    /// Serializes the plan as a self-contained JSON reproducer
    /// (hand-rolled; the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"chaos_plan\": 1,");
        let _ = writeln!(out, "  \"layout\": \"{}\",", self.layout.name());
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"gap_ps\": {},", self.gap.as_ps());
        let _ = writeln!(out, "  \"actions\": [");
        for (i, pa) in self.actions.iter().enumerate() {
            let body = match &pa.action {
                PlanAction::Fault(FaultAction::LinkNoise {
                    slot,
                    down,
                    up,
                    seed,
                }) => format!(
                    "\"kind\": \"link_noise\", \"slot\": {slot}, \"down\": {down:.6}, \
                     \"up\": {up:.6}, \"seed\": {seed}"
                ),
                PlanAction::Fault(FaultAction::LinkClear { slot }) => {
                    format!("\"kind\": \"link_clear\", \"slot\": {slot}")
                }
                PlanAction::Fault(FaultAction::SlowChannel { slot, window }) => format!(
                    "\"kind\": \"slow_channel\", \"slot\": {slot}, \"window_ps\": {}",
                    window.as_ps()
                ),
                PlanAction::Fault(FaultAction::FlipStorm {
                    slot,
                    seed,
                    flips,
                    window,
                    hot_start,
                    hot_len,
                    stuck,
                }) => format!(
                    "\"kind\": \"flip_storm\", \"slot\": {slot}, \"seed\": {seed}, \
                     \"flips\": {flips}, \"window_ps\": {}, \"hot_start\": {hot_start}, \
                     \"hot_len\": {hot_len}, \"stuck\": {stuck}",
                    window.as_ps()
                ),
                PlanAction::Fault(FaultAction::ScrubOn { slot, interval }) => format!(
                    "\"kind\": \"scrub_on\", \"slot\": {slot}, \"interval_ps\": {}",
                    interval.as_ps()
                ),
                PlanAction::Fault(FaultAction::ScrubOff { slot }) => {
                    format!("\"kind\": \"scrub_off\", \"slot\": {slot}")
                }
                PlanAction::Fault(FaultAction::MaintenancePull { slot }) => {
                    format!("\"kind\": \"maintenance_pull\", \"slot\": {slot}")
                }
                PlanAction::Fault(FaultAction::Epow) => "\"kind\": \"epow\"".to_string(),
                PlanAction::Fault(FaultAction::PowerCut { outage }) => {
                    format!("\"kind\": \"power_cut\", \"outage_ps\": {}", outage.as_ps())
                }
                PlanAction::Fault(FaultAction::Sabotage { slot, addr }) => {
                    format!("\"kind\": \"sabotage\", \"slot\": {slot}, \"addr\": {addr}")
                }
                PlanAction::Checkpoint => "\"kind\": \"checkpoint\"".to_string(),
                PlanAction::RestoreLatest => "\"kind\": \"restore\"".to_string(),
                PlanAction::RateStep { gap } => {
                    format!("\"kind\": \"rate_step\", \"gap_ps\": {}", gap.as_ps())
                }
                PlanAction::TrafficSpike { gap, steps } => format!(
                    "\"kind\": \"traffic_spike\", \"gap_ps\": {}, \"steps\": {steps}",
                    gap.as_ps()
                ),
            };
            let _ = writeln!(
                out,
                "    {{\"at_step\": {}, {body}}}{}",
                pa.at_step,
                if i + 1 < self.actions.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a reproducer produced by [`FaultPlan::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first unparseable field. Hostile
    /// values (absurd probabilities, zero ranges) are *not* rejected
    /// here — the injection layer clamps them, because a reproducer is
    /// external input and must never abort the process.
    pub fn from_json(json: &str) -> Result<FaultPlan, String> {
        if !json.contains("\"chaos_plan\"") {
            return Err("not a chaos plan (missing \"chaos_plan\" marker)".into());
        }
        let num = |chunk: &str, key: &str| -> Option<f64> {
            let rest = chunk.split(key).nth(1)?;
            let text: String = rest
                .trim_start_matches([':', ' '])
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            text.parse().ok()
        };
        // Integers parse directly — a u64 round-tripped through f64
        // loses low bits above 2^53, and seeds use the full range.
        let int = |chunk: &str, key: &str| -> Option<u64> {
            let rest = chunk.split(key).nth(1)?;
            let text: String = rest
                .trim_start_matches([':', ' '])
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            text.parse().ok()
        };
        let layout_name = json
            .split("\"layout\"")
            .nth(1)
            .and_then(|rest| rest.split('"').nth(1))
            .ok_or("missing layout")?;
        let layout =
            PlanLayout::parse(layout_name).ok_or_else(|| format!("bad layout {layout_name:?}"))?;
        let head = json.split("\"actions\"").next().unwrap_or(json);
        let seed = int(head, "\"seed\"").ok_or("missing seed")?;
        let requests = int(head, "\"requests\"").ok_or("missing requests")?;
        let gap = SimTime::from_ps(int(head, "\"gap_ps\"").ok_or("missing gap_ps")?.max(1));
        let mut actions = Vec::new();
        for chunk in json.split("{\"at_step\"").skip(1) {
            let at_step = int(chunk, ":").ok_or("action missing at_step")?;
            let kind = chunk
                .split("\"kind\"")
                .nth(1)
                .and_then(|rest| rest.split('"').nth(1))
                .ok_or("action missing kind")?;
            let slot = || int(chunk, "\"slot\"").ok_or("action missing slot");
            let action = match kind {
                "link_noise" => PlanAction::Fault(FaultAction::LinkNoise {
                    slot: slot()? as usize,
                    down: num(chunk, "\"down\"").ok_or("link_noise missing down")?,
                    up: num(chunk, "\"up\"").ok_or("link_noise missing up")?,
                    seed: int(chunk, "\"seed\"").ok_or("link_noise missing seed")?,
                }),
                "link_clear" => PlanAction::Fault(FaultAction::LinkClear {
                    slot: slot()? as usize,
                }),
                "slow_channel" => PlanAction::Fault(FaultAction::SlowChannel {
                    slot: slot()? as usize,
                    window: SimTime::from_ps(
                        int(chunk, "\"window_ps\"")
                            .ok_or("slow_channel missing window_ps")?
                            .max(1),
                    ),
                }),
                "flip_storm" => PlanAction::Fault(FaultAction::FlipStorm {
                    slot: slot()? as usize,
                    seed: int(chunk, "\"seed\"").ok_or("flip_storm missing seed")?,
                    flips: int(chunk, "\"flips\"").ok_or("flip_storm missing flips")? as u32,
                    window: SimTime::from_ps(
                        int(chunk, "\"window_ps\"").ok_or("flip_storm missing window_ps")?,
                    ),
                    hot_start: int(chunk, "\"hot_start\"").ok_or("flip_storm missing hot_start")?,
                    hot_len: int(chunk, "\"hot_len\"").ok_or("flip_storm missing hot_len")?,
                    stuck: int(chunk, "\"stuck\"").ok_or("flip_storm missing stuck")? as u32,
                }),
                "scrub_on" => PlanAction::Fault(FaultAction::ScrubOn {
                    slot: slot()? as usize,
                    interval: SimTime::from_ps(
                        int(chunk, "\"interval_ps\"").ok_or("scrub_on missing interval_ps")?,
                    ),
                }),
                "scrub_off" => PlanAction::Fault(FaultAction::ScrubOff {
                    slot: slot()? as usize,
                }),
                "maintenance_pull" => PlanAction::Fault(FaultAction::MaintenancePull {
                    slot: slot()? as usize,
                }),
                "epow" => PlanAction::Fault(FaultAction::Epow),
                "power_cut" => PlanAction::Fault(FaultAction::PowerCut {
                    outage: SimTime::from_ps(
                        int(chunk, "\"outage_ps\"").ok_or("power_cut missing outage_ps")?,
                    ),
                }),
                "sabotage" => PlanAction::Fault(FaultAction::Sabotage {
                    slot: slot()? as usize,
                    addr: int(chunk, "\"addr\"").ok_or("sabotage missing addr")?,
                }),
                "checkpoint" => PlanAction::Checkpoint,
                "restore" => PlanAction::RestoreLatest,
                "rate_step" => PlanAction::RateStep {
                    gap: SimTime::from_ps(
                        int(chunk, "\"gap_ps\"")
                            .ok_or("rate_step missing gap_ps")?
                            .max(1),
                    ),
                },
                "traffic_spike" => PlanAction::TrafficSpike {
                    gap: SimTime::from_ps(
                        int(chunk, "\"gap_ps\"")
                            .ok_or("traffic_spike missing gap_ps")?
                            .max(1),
                    ),
                    steps: int(chunk, "\"steps\"")
                        .ok_or("traffic_spike missing steps")?
                        .max(1),
                },
                other => return Err(format!("unknown action kind {other:?}")),
            };
            actions.push(PlannedAction { at_step, action });
        }
        actions.sort_by_key(|a| a.at_step);
        Ok(FaultPlan {
            layout,
            seed,
            requests,
            gap,
            actions,
        })
    }
}

// --------------------------------------------------------------- oracle

/// One breach of the durability contract. The taxonomy is the oracle's
/// public interface: the shrinker preserves the *kind* while deleting
/// everything else from a failing plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A read completed cleanly with bytes that were never any
    /// acceptable value for the address — corruption with no report.
    SilentCorruption {
        /// Affected physical address.
        phys: u64,
    },
    /// A read returned a value from *before* a power cut that wiped
    /// the address — volatile contents must not survive — or from a
    /// timeline a snapshot restore abandoned: a rolled-back store's
    /// value must never be visible again.
    Resurrection {
        /// Affected physical address.
        phys: u64,
    },
    /// A read returned a stale or zero line where an acknowledged
    /// store should live, with no typed loss reported anywhere.
    UnreportedLoss {
        /// Affected physical address.
        phys: u64,
    },
    /// The harness hit an error outside the contract (boot failure,
    /// replay of an inapplicable plan…).
    UnexpectedError {
        /// What failed.
        context: String,
    },
    /// The run panicked — always a violation.
    Panicked(String),
    /// The same-seed rerun diverged (fingerprint or violations).
    NonDeterministic,
    /// The system never dug itself out after the plan's faults: the
    /// post-load drain tripped the no-progress watchdog and stranded
    /// requests as `Stalled`. Recovery — not just durability — is
    /// part of the contract: a wedged channel after every fault has
    /// cleared is a metastable outcome, not an acceptable end state.
    NoRecovery {
        /// Requests stranded by the watchdog.
        stranded: u64,
    },
}

impl Violation {
    /// The taxonomy label ([`shrink`] preserves it).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::SilentCorruption { .. } => "silent-corruption",
            Violation::Resurrection { .. } => "resurrection",
            Violation::UnreportedLoss { .. } => "unreported-loss",
            Violation::UnexpectedError { .. } => "unexpected-error",
            Violation::Panicked(_) => "panic",
            Violation::NonDeterministic => "non-deterministic",
            Violation::NoRecovery { .. } => "no-recovery",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SilentCorruption { phys } => {
                write!(f, "silent corruption at {phys:#x}")
            }
            Violation::Resurrection { phys } => {
                write!(f, "pre-cut data resurrected at {phys:#x}")
            }
            Violation::UnreportedLoss { phys } => {
                write!(f, "acked store lost without a report at {phys:#x}")
            }
            Violation::UnexpectedError { context } => write!(f, "unexpected error: {context}"),
            Violation::Panicked(msg) => write!(f, "PANIC: {msg}"),
            Violation::NonDeterministic => write!(f, "double run diverged"),
            Violation::NoRecovery { stranded } => {
                write!(f, "no recovery: {stranded} requests stranded in the drain")
            }
        }
    }
}

/// A power cut observed during a run, for the oracle's wipe model.
#[derive(Debug, Clone)]
pub struct Wipe {
    /// When the rail dropped.
    pub at: SimTime,
    /// Slots whose *preserved* media failed to restore (from the
    /// reboot report) — their loss is typed, so it is excused.
    pub reported_loss: BTreeSet<usize>,
}

#[derive(Debug, Clone)]
struct RegionInfo {
    base: u64,
    os_size: u64,
    preserved: bool,
    channel: usize,
}

/// The global durability oracle: replays a [`StoreEvent`] ledger
/// against the post-run system and classifies every discrepancy.
#[derive(Debug, Clone)]
pub struct Oracle {
    regions: Vec<RegionInfo>,
}

/// What a line may legally contain: all-zero (boot / post-wipe) or a
/// specific store's pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Candidate {
    Zero,
    Token(u64),
}

impl Candidate {
    fn matches(self, line: &CacheLine) -> bool {
        match self {
            Candidate::Zero => *line == CacheLine::ZERO,
            Candidate::Token(t) => *line == CacheLine::patterned(t),
        }
    }
}

impl Oracle {
    /// Snapshots the freshly booted system's memory map. Region
    /// attributes (base, size, preserved flag, owning channel) anchor
    /// the wipe model; take the snapshot before any fault runs.
    pub fn new(sys: &Power8System) -> Self {
        Oracle {
            regions: sys
                .memory_map()
                .regions()
                .iter()
                .map(|r| RegionInfo {
                    base: r.base,
                    os_size: r.os_size,
                    preserved: r.flags.preserved,
                    channel: r.channel,
                })
                .collect(),
        }
    }

    fn region_of(&self, phys: u64) -> Option<&RegionInfo> {
        self.regions
            .iter()
            .find(|r| phys >= r.base && phys < r.base + r.os_size)
    }

    /// Checks every address the ledger touched against the durability
    /// contract and returns the violations found. Reads go through the
    /// normal load path, so a typed error (poison, route loss, powered
    /// off) counts as a *reported* loss — acceptable; only clean reads
    /// with wrong bytes violate.
    pub fn check(
        &self,
        sys: &mut Power8System,
        ledger: &[StoreEvent],
        wipes: &[Wipe],
    ) -> Vec<Violation> {
        let mut by_addr: BTreeMap<u64, Vec<&StoreEvent>> = BTreeMap::new();
        for ev in ledger {
            by_addr.entry(ev.phys).or_default().push(ev);
        }
        let mut violations = Vec::new();
        for (phys, events) in by_addr {
            let region = self.region_of(phys);
            let preserved = region.map(|r| r.preserved).unwrap_or(false);
            let channel = region.map(|r| r.channel);
            // Walk stores and wipes in time order, maintaining the set
            // of values the line may legally hold plus the set it must
            // *no longer* hold (for resurrection classification).
            let mut acceptable: BTreeSet<Candidate> = BTreeSet::from([Candidate::Zero]);
            let mut superseded: BTreeSet<Candidate> = BTreeSet::new();
            let mut rolled_back: BTreeSet<Candidate> = BTreeSet::new();
            let mut excused = false;
            let mut wiped = false;
            let mut wi = 0usize;
            for ev in events {
                // Rolled-back stores belong to an abandoned timeline:
                // their submit times are not on the surviving clock,
                // so they don't advance the wipe cursor. Their value
                // must simply never be seen again.
                if ev.outcome == StoreOutcome::RolledBack {
                    rolled_back.insert(Candidate::Token(ev.token));
                    continue;
                }
                while wi < wipes.len() && wipes[wi].at <= ev.submitted_at {
                    apply_wipe(
                        &wipes[wi],
                        preserved,
                        channel,
                        &mut acceptable,
                        &mut superseded,
                        &mut excused,
                        &mut wiped,
                    );
                    wi += 1;
                }
                match ev.outcome {
                    StoreOutcome::Acked(_) => {
                        superseded.extend(acceptable.iter().copied());
                        acceptable.clear();
                        acceptable.insert(Candidate::Token(ev.token));
                    }
                    // The write may or may not have landed: both the
                    // old and the new value are legal.
                    StoreOutcome::Pending | StoreOutcome::Errored | StoreOutcome::Orphaned => {
                        acceptable.insert(Candidate::Token(ev.token));
                    }
                    // Filtered above.
                    StoreOutcome::RolledBack => unreachable!(),
                }
            }
            while wi < wipes.len() {
                apply_wipe(
                    &wipes[wi],
                    preserved,
                    channel,
                    &mut acceptable,
                    &mut superseded,
                    &mut excused,
                    &mut wiped,
                );
                wi += 1;
            }
            match sys.load_line(phys) {
                // A typed error is a *reported* loss — the contract's
                // loud path, never a violation.
                Err(_) => {}
                Ok((line, _)) => {
                    if excused || acceptable.iter().any(|c| c.matches(&line)) {
                        continue;
                    }
                    if rolled_back.iter().any(|c| c.matches(&line)) {
                        // A value from a timeline a restore abandoned
                        // is back: the rewind leaked.
                        violations.push(Violation::Resurrection { phys });
                    } else if superseded.iter().any(|c| c.matches(&line)) {
                        if wiped {
                            violations.push(Violation::Resurrection { phys });
                        } else {
                            violations.push(Violation::UnreportedLoss { phys });
                        }
                    } else if line == CacheLine::ZERO {
                        violations.push(Violation::UnreportedLoss { phys });
                    } else {
                        violations.push(Violation::SilentCorruption { phys });
                    }
                }
            }
        }
        violations
    }
}

fn apply_wipe(
    wipe: &Wipe,
    preserved: bool,
    channel: Option<usize>,
    acceptable: &mut BTreeSet<Candidate>,
    superseded: &mut BTreeSet<Candidate>,
    excused: &mut bool,
    wiped: &mut bool,
) {
    if preserved {
        // Durable media survives a cut — unless the reboot reported
        // the slot's restore failed, which excuses the address (the
        // loss is typed, exactly what the contract demands).
        if channel.is_some_and(|c| wipe.reported_loss.contains(&c)) {
            *excused = true;
        }
    } else {
        superseded.extend(acceptable.iter().copied());
        superseded.remove(&Candidate::Zero);
        acceptable.clear();
        acceptable.insert(Candidate::Zero);
        *wiped = true;
    }
}

// ------------------------------------------------------------ execution

/// The result of executing one plan (once or twice).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRunReport {
    /// Everything the oracle (or the harness) found wrong.
    pub violations: Vec<Violation>,
    /// Trace fingerprint of the run.
    pub fingerprint: u64,
    /// Actions that applied (including reboots).
    pub applied: u64,
    /// Actions skipped as inapplicable to the layout.
    pub skipped: u64,
    /// Power-cut reboots that completed.
    pub reboots: u64,
    /// Requests the load resolved (completed + errors + orphans).
    pub resolved: u64,
    /// Same-seed rerun was byte-identical. Set by [`run_plan`];
    /// a single run reports `true`.
    pub deterministic: bool,
}

impl PlanRunReport {
    /// Whether the run upheld the whole contract.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Executes a plan once: boot, snapshot the oracle, run the ledgered
/// load with the plan's actions firing on their steps, then hold the
/// final state to the durability contract. Panics anywhere inside
/// become [`Violation::Panicked`].
pub fn run_plan_once(plan: &FaultPlan) -> PlanRunReport {
    let plan = plan.clone();
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut sys = match plan.layout.boot(plan.seed) {
            Ok(sys) => sys,
            Err(e) => {
                return PlanRunReport {
                    violations: vec![Violation::UnexpectedError {
                        context: format!("boot: {e}"),
                    }],
                    fingerprint: 0,
                    applied: 0,
                    skipped: 0,
                    reboots: 0,
                    resolved: 0,
                    deterministic: true,
                }
            }
        };
        sys.set_retry_policy(campaign_policy());
        let tracer = sys.enable_tracing(1 << 16);
        let oracle = Oracle::new(&sys);
        let load = ChaosLoad::new(
            ChaosLoadConfig {
                requests: plan.requests,
                gap: plan.gap,
                keys: LOAD_KEYS,
                read_fraction: LOAD_READ_FRACTION,
                mlp_window: 8,
                seed: plan.seed,
            },
            &sys,
        );
        let mut cursor = 0usize;
        let mut wipes: Vec<Wipe> = Vec::new();
        let mut applied = 0u64;
        let mut skipped = 0u64;
        let mut reboots = 0u64;
        let mut base_gap = plan.gap;
        let mut spike_until: Option<u64> = None;
        // The latest `Checkpoint`'s image plus the rewind point a
        // `RestoreLatest` hands back to the driver.
        let mut checkpoint: Option<(Vec<u8>, RewindPoint)> = None;
        let mut restore_failures: Vec<String> = Vec::new();
        let report = load.run(&mut sys, |sys, tick| {
            let mut new_gap = None;
            let mut rewound = None;
            if spike_until.is_some_and(|until| tick.step >= until) {
                spike_until = None;
                new_gap = Some(base_gap);
            }
            while cursor < plan.actions.len() && plan.actions[cursor].at_step <= tick.step {
                let now = sys.now();
                match &plan.actions[cursor].action {
                    PlanAction::RateStep { gap } => {
                        base_gap = *gap;
                        new_gap = Some(*gap);
                        applied += 1;
                    }
                    PlanAction::TrafficSpike { gap, steps } => {
                        new_gap = Some(*gap);
                        spike_until = Some(tick.step + (*steps).max(1));
                        applied += 1;
                    }
                    PlanAction::Checkpoint => {
                        checkpoint = Some((
                            sys.snapshot(),
                            RewindPoint {
                                at: sys.now(),
                                stores: tick.stores,
                            },
                        ));
                        applied += 1;
                    }
                    PlanAction::RestoreLatest => match &checkpoint {
                        Some((image, rp)) => match sys.restore(image) {
                            Ok(()) => {
                                applied += 1;
                                // Wipes in the abandoned timeline
                                // never happened.
                                wipes.retain(|w| w.at <= rp.at);
                                rewound = Some(*rp);
                            }
                            Err(e) => {
                                // Same-topology in-place restore must
                                // not fail; surface it loudly.
                                restore_failures.push(format!("in-place restore: {e}"));
                                skipped += 1;
                            }
                        },
                        None => skipped += 1,
                    },
                    PlanAction::Fault(action) => match sys.apply_fault_action(now, action) {
                        FaultOutcome::Applied => applied += 1,
                        FaultOutcome::Rebooted(r) => {
                            applied += 1;
                            reboots += 1;
                            wipes.push(Wipe {
                                at: now,
                                reported_loss: r.data_loss.iter().map(|d| d.slot).collect(),
                            });
                        }
                        FaultOutcome::RebootFailed(_) => {
                            // Terminal but typed: the machine stays
                            // dark, every later access errors loudly
                            // and the readback sees typed losses.
                            applied += 1;
                            wipes.push(Wipe {
                                at: now,
                                reported_loss: BTreeSet::new(),
                            });
                        }
                        FaultOutcome::Skipped(_) => skipped += 1,
                    },
                }
                cursor += 1;
            }
            HookVerdict { new_gap, rewound }
        });
        let drained = sys.drain();
        let stranded = drained
            .iter()
            .filter(|(_, r)| matches!(r, Err(SystemError::Stalled)))
            .count() as u64;
        let mut violations = oracle.check(&mut sys, &report.ledger, &wipes);
        if stranded > 0 {
            violations.push(Violation::NoRecovery { stranded });
        }
        for context in restore_failures {
            violations.push(Violation::UnexpectedError { context });
        }
        PlanRunReport {
            violations,
            fingerprint: tracer.fingerprint(),
            applied,
            skipped,
            reboots,
            resolved: report.completed + report.errors + report.orphaned,
            deterministic: true,
        }
    }));
    result.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        PlanRunReport {
            violations: vec![Violation::Panicked(msg)],
            fingerprint: 0,
            applied: 0,
            skipped: 0,
            reboots: 0,
            resolved: 0,
            deterministic: true,
        }
    })
}

/// Executes a plan twice (the campaign's double-run contract): the
/// fingerprints and violation lists must match, or
/// [`Violation::NonDeterministic`] is appended.
pub fn run_plan(plan: &FaultPlan) -> PlanRunReport {
    let (mut report, deterministic) =
        crate::harness::run_twice_assert_identical(|| run_plan_once(plan), |a, b| a == b);
    report.deterministic = deterministic;
    if !deterministic {
        report.violations.push(Violation::NonDeterministic);
    }
    report
}

// -------------------------------------------------------------- shrinker

/// Greedily minimizes a failing plan while it keeps failing with the
/// same violation kind: (1) delete actions one at a time to fixpoint,
/// (2) truncate the request stream, (3) narrow fault parameters
/// (noise probabilities, flip counts, outages). Returns `None` if the
/// plan does not fail at all; otherwise the minimal plan and the kind
/// it reproduces.
pub fn shrink(plan: &FaultPlan) -> Option<(FaultPlan, &'static str)> {
    let kind = run_plan_once(plan).violations.first().map(|v| v.kind())?;
    let fails = |candidate: &FaultPlan| {
        run_plan_once(candidate)
            .violations
            .iter()
            .any(|v| v.kind() == kind)
    };
    let mut current = plan.clone();
    // Phase 1: action deletion to fixpoint.
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.actions.len() {
            let mut candidate = current.clone();
            candidate.actions.remove(i);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    // Phase 2: request truncation (never below the last trigger).
    let last_step = current.actions.iter().map(|a| a.at_step).max().unwrap_or(0);
    loop {
        let target = (current.requests / 2).max(last_step + 4).max(16);
        if target >= current.requests {
            break;
        }
        let mut candidate = current.clone();
        candidate.requests = target;
        if fails(&candidate) {
            current = candidate;
        } else {
            break;
        }
    }
    // Phase 3: parameter narrowing while the failure persists.
    for _ in 0..4 {
        let candidate = FaultPlan {
            actions: current.actions.iter().map(narrow).collect(),
            ..current.clone()
        };
        if candidate == current || !fails(&candidate) {
            break;
        }
        current = candidate;
    }
    Some((current, kind))
}

fn narrow(pa: &PlannedAction) -> PlannedAction {
    let action = match &pa.action {
        PlanAction::Fault(FaultAction::LinkNoise {
            slot,
            down,
            up,
            seed,
        }) => PlanAction::Fault(FaultAction::LinkNoise {
            slot: *slot,
            down: down / 2.0,
            up: up / 2.0,
            seed: *seed,
        }),
        PlanAction::Fault(FaultAction::FlipStorm {
            slot,
            seed,
            flips,
            window,
            hot_start,
            hot_len,
            stuck,
        }) => PlanAction::Fault(FaultAction::FlipStorm {
            slot: *slot,
            seed: *seed,
            flips: (*flips / 2).max(1),
            window: *window,
            hot_start: *hot_start,
            hot_len: *hot_len,
            stuck: *stuck / 2,
        }),
        PlanAction::Fault(FaultAction::PowerCut { outage }) => {
            PlanAction::Fault(FaultAction::PowerCut {
                outage: SimTime::from_ps((outage.as_ps() / 2).max(1_000_000)),
            })
        }
        PlanAction::Fault(FaultAction::SlowChannel { slot, window }) => {
            PlanAction::Fault(FaultAction::SlowChannel {
                slot: *slot,
                window: SimTime::from_ps((window.as_ps() / 2).max(1_000_000)),
            })
        }
        PlanAction::TrafficSpike { gap, steps } => PlanAction::TrafficSpike {
            gap: SimTime::from_ps(gap.as_ps().saturating_mul(2)),
            steps: (*steps / 2).max(1),
        },
        other => other.clone(),
    };
    PlannedAction {
        at_step: pa.at_step,
        action,
    }
}

// -------------------------------------------------------------- campaign

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds swept.
    pub seeds: Vec<u64>,
    /// Generated plans per seed (layouts alternate per plan).
    pub plans_per_seed: u64,
    /// Requests per plan.
    pub requests: u64,
    /// Action draws per plan.
    pub intensity: u32,
}

impl CampaignConfig {
    /// The quick gate used by `scripts/verify.sh`.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1, 2],
            plans_per_seed: 2,
            requests: 72,
            intensity: 4,
        }
    }

    /// The full sweep: 4 seeds × 16 plans = 64 plans, each run twice.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: (1..=4).collect(),
            plans_per_seed: 16,
            requests: 160,
            intensity: 6,
        }
    }
}

/// One plan's campaign record.
#[derive(Debug, Clone)]
pub struct PlanRecord {
    /// Seed the plan was generated from.
    pub seed: u64,
    /// Plan index within the seed.
    pub index: u64,
    /// Testbed it ran on.
    pub layout: PlanLayout,
    /// Actions in the plan.
    pub actions: usize,
    /// The double-run result.
    pub report: PlanRunReport,
    /// The minimal reproducer, when the plan failed.
    pub reproducer: Option<FaultPlan>,
}

/// The whole campaign's result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every plan, seed-major.
    pub records: Vec<PlanRecord>,
    /// Requests per plan (baseline key).
    pub requests: u64,
    /// Plans executed per host-second (each plan runs twice).
    pub plans_per_sec: f64,
}

impl CampaignReport {
    /// Contract breaches plus regression-gate failures against a
    /// previous `BENCH_chaos.json`.
    pub fn violations(&self, baseline_json: Option<&str>) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.records {
            for v in &r.report.violations {
                out.push(format!(
                    "{} seed {} plan {}: {v}",
                    r.layout.name(),
                    r.seed,
                    r.index
                ));
            }
        }
        if let Some(json) = baseline_json {
            if let Some((old_requests, old_pps)) = parse_baseline(json) {
                if old_requests == self.requests && self.plans_per_sec < 0.8 * old_pps {
                    out.push(format!(
                        "chaos: {:.2} plans/sec regressed >20% from baseline {:.2}",
                        self.plans_per_sec, old_pps
                    ));
                }
            }
        }
        out
    }

    /// Renders the per-plan table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<9} {:>4} {:>4} {:>7} {:>7} {:>7} {:>7} {:>8} {:>4}  {:<16}",
            "layout",
            "seed",
            "plan",
            "actions",
            "applied",
            "skipped",
            "reboots",
            "resolved",
            "det",
            "fingerprint"
        );
        out.push_str(&"-".repeat(96));
        out.push('\n');
        for r in &self.records {
            let _ = writeln!(
                out,
                "{:<9} {:>4} {:>4} {:>7} {:>7} {:>7} {:>7} {:>8} {:>4}  {:016x}",
                r.layout.name(),
                r.seed,
                r.index,
                r.actions,
                r.report.applied,
                r.report.skipped,
                r.report.reboots,
                r.report.resolved,
                if r.report.deterministic { "yes" } else { "NO" },
                r.report.fingerprint,
            );
            for v in &r.report.violations {
                let _ = writeln!(out, "    VIOLATION: {v}");
            }
        }
        let violations: usize = self.records.iter().map(|r| r.report.violations.len()).sum();
        let _ = writeln!(
            out,
            "\n{} plans (each run twice), {} violations, {:.2} plans/sec",
            self.records.len(),
            violations,
            self.plans_per_sec,
        );
        out
    }

    /// Serializes the campaign aggregate (hand-rolled JSON).
    pub fn to_json(&self) -> String {
        let violations: usize = self.records.iter().map(|r| r.report.violations.len()).sum();
        format!(
            "{{\n  \"benchmark\": \"chaos\",\n  \"plans\": {},\n  \
             \"requests_per_plan\": {},\n  \"plans_per_sec\": {:.3},\n  \
             \"violations\": {}\n}}\n",
            self.records.len(),
            self.requests,
            self.plans_per_sec,
            violations,
        )
    }
}

/// Extracts `(requests_per_plan, plans_per_sec)` from a previous
/// `BENCH_chaos.json`. Tolerant: unparseable input yields no gate.
fn parse_baseline(json: &str) -> Option<(u64, f64)> {
    let num = |key: &str| -> Option<f64> {
        let rest = json.split(key).nth(1)?;
        let text: String = rest
            .trim_start_matches([':', ' '])
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        text.parse().ok()
    };
    Some((
        num("\"requests_per_plan\"")? as u64,
        num("\"plans_per_sec\"")?,
    ))
}

/// Runs the campaign: per seed, `plans_per_seed` generated plans with
/// layouts alternating, every plan executed twice and held to the
/// oracle. Failing plans are shrunk to minimal reproducers on the
/// spot.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let started = std::time::Instant::now();
    let mut records = Vec::new();
    for &seed in &cfg.seeds {
        for index in 0..cfg.plans_per_seed {
            let layout = if index % 2 == 0 {
                PlanLayout::Failover
            } else {
                PlanLayout::Nvdimm
            };
            let plan = FaultPlan::generate(layout, seed, index, cfg.intensity, cfg.requests);
            let report = run_plan(&plan);
            let reproducer = if report.clean() {
                None
            } else {
                shrink(&plan).map(|(minimal, _)| minimal)
            };
            records.push(PlanRecord {
                seed,
                index,
                layout,
                actions: plan.actions.len(),
                report,
                reproducer,
            });
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let plans = records.len() as f64;
    CampaignReport {
        records,
        requests: cfg.requests,
        plans_per_sec: if elapsed > 0.0 { plans / elapsed } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_deterministic_and_sorted() {
        let a = FaultPlan::generate(PlanLayout::Failover, 3, 1, 6, 96);
        let b = FaultPlan::generate(PlanLayout::Failover, 3, 1, 6, 96);
        assert_eq!(a, b);
        assert!(a.actions.windows(2).all(|w| w[0].at_step <= w[1].at_step));
        let c = FaultPlan::generate(PlanLayout::Failover, 3, 2, 6, 96);
        assert_ne!(a, c, "different index must give a different plan");
    }

    #[test]
    fn plans_round_trip_through_json() {
        for (layout, seed) in [(PlanLayout::Failover, 5), (PlanLayout::Nvdimm, 9)] {
            let plan = FaultPlan::generate(layout, seed, 0, 8, 96);
            let json = plan.to_json();
            let back = FaultPlan::from_json(&json).expect("parse back");
            assert_eq!(plan, back, "{json}");
        }
        // A sabotage action (never generated) round-trips too.
        let plan = FaultPlan {
            layout: PlanLayout::Failover,
            seed: 1,
            requests: 48,
            gap: DEFAULT_GAP,
            actions: vec![PlannedAction {
                at_step: 40,
                action: PlanAction::Fault(FaultAction::Sabotage { slot: 2, addr: 0 }),
            }],
        };
        let back = FaultPlan::from_json(&plan.to_json()).expect("parse back");
        assert_eq!(plan, back);
        // The overload-trigger actions round-trip too.
        let plan = FaultPlan {
            layout: PlanLayout::Failover,
            seed: 1,
            requests: 48,
            gap: DEFAULT_GAP,
            actions: vec![
                PlannedAction {
                    at_step: 8,
                    action: PlanAction::Fault(FaultAction::SlowChannel {
                        slot: 2,
                        window: SimTime::from_us(25),
                    }),
                },
                PlannedAction {
                    at_step: 12,
                    action: PlanAction::TrafficSpike {
                        gap: SimTime::from_ns(100),
                        steps: 16,
                    },
                },
            ],
        };
        let back = FaultPlan::from_json(&plan.to_json()).expect("parse back");
        assert_eq!(plan, back);
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json("not json at all").is_err());
    }

    #[test]
    fn clean_plan_upholds_the_contract_twice() {
        let plan = FaultPlan::generate(PlanLayout::Failover, 1, 0, 4, 72);
        let r = run_plan(&plan);
        assert!(r.clean(), "violations: {:?}", r.violations);
        assert!(r.deterministic);
        assert_eq!(r.resolved, plan.requests);
    }

    #[test]
    fn nvdimm_plan_with_power_cut_upholds_the_contract() {
        let mut plan = FaultPlan::generate(PlanLayout::Nvdimm, 2, 1, 4, 72);
        plan.actions.push(PlannedAction {
            at_step: 36,
            action: PlanAction::Fault(FaultAction::PowerCut {
                outage: SimTime::from_us(60),
            }),
        });
        plan.actions.sort_by_key(|a| a.at_step);
        let r = run_plan(&plan);
        assert!(r.clean(), "violations: {:?}", r.violations);
        assert!(r.reboots >= 1, "the added cut must fire");
    }

    #[test]
    fn seeded_sabotage_is_caught_shrunk_and_replayable() {
        // Key 1 of the chaos load stripes to line 0 of the victim
        // region. Sabotage rewrites that line behind the controller's
        // back with no poison — exactly the silent corruption the
        // oracle exists to catch. The seed is searched so the load
        // acks a store to the line before the sabotage fires and none
        // after (a later ack would legitimately overwrite it).
        let requests = 96u64;
        let make_plan = |seed: u64| {
            let mut plan = FaultPlan::generate(PlanLayout::Failover, seed, 0, 3, requests);
            plan.actions.push(PlannedAction {
                at_step: requests * 3 / 4,
                action: PlanAction::Fault(FaultAction::Sabotage {
                    slot: VICTIM_SLOT,
                    addr: 0,
                }),
            });
            plan.actions.sort_by_key(|a| a.at_step);
            plan
        };
        let plan = (1..=24)
            .map(make_plan)
            .find(|plan| {
                run_plan_once(plan)
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::SilentCorruption { .. }))
            })
            .expect("some seed must expose the sabotage");
        let actions_before = plan.actions.len();
        let (minimal, kind) = shrink(&plan).expect("failing plan must shrink");
        assert_eq!(kind, "silent-corruption");
        assert!(
            minimal.actions.len() <= 3,
            "minimal plan still has {} actions (from {actions_before})",
            minimal.actions.len()
        );
        assert!(minimal
            .actions
            .iter()
            .any(|a| matches!(a.action, PlanAction::Fault(FaultAction::Sabotage { .. }))));
        // The reproducer survives serialization and replays the same
        // violation deterministically (full double-run).
        let replayed = FaultPlan::from_json(&minimal.to_json()).expect("reproducer parses");
        assert_eq!(minimal, replayed);
        let report = run_plan(&replayed);
        assert!(report.deterministic);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind() == "silent-corruption"));
    }

    #[test]
    fn checkpoint_actions_round_trip_through_json() {
        let plan = FaultPlan {
            layout: PlanLayout::Nvdimm,
            seed: 3,
            requests: 48,
            gap: DEFAULT_GAP,
            actions: vec![
                PlannedAction {
                    at_step: 8,
                    action: PlanAction::Checkpoint,
                },
                PlannedAction {
                    at_step: 24,
                    action: PlanAction::RestoreLatest,
                },
            ],
        };
        let back = FaultPlan::from_json(&plan.to_json()).expect("parse back");
        assert_eq!(plan, back);
    }

    #[test]
    fn checkpoint_rewind_plan_upholds_the_contract() {
        // A rewind across live faults: noise lands between the
        // checkpoint and the restore, so the whole window — faults,
        // in-flight requests, acks — must un-happen cleanly, on both
        // layouts, twice each.
        for layout in [PlanLayout::Failover, PlanLayout::Nvdimm] {
            let plan = FaultPlan {
                layout,
                seed: 7,
                requests: 72,
                gap: DEFAULT_GAP,
                actions: vec![
                    PlannedAction {
                        at_step: 12,
                        action: PlanAction::Checkpoint,
                    },
                    PlannedAction {
                        at_step: 20,
                        action: PlanAction::Fault(FaultAction::LinkNoise {
                            slot: 2,
                            down: 0.01,
                            up: 0.005,
                            seed: 99,
                        }),
                    },
                    PlannedAction {
                        at_step: 36,
                        action: PlanAction::RestoreLatest,
                    },
                ],
            };
            let r = run_plan(&plan);
            assert!(r.clean(), "{layout:?} violations: {:?}", r.violations);
            assert!(r.deterministic, "{layout:?} rewind must be deterministic");
            // Checkpoint, noise and restore all applied.
            assert_eq!(r.applied, 3, "{layout:?}");
        }
    }

    #[test]
    fn rewind_across_a_power_cut_discards_the_wipe() {
        // Cut the power after the checkpoint, then rewind across the
        // reboot: the wipe belongs to the abandoned timeline and must
        // not excuse (or demand) anything in the oracle's replay.
        let plan = FaultPlan {
            layout: PlanLayout::Nvdimm,
            seed: 11,
            requests: 72,
            gap: DEFAULT_GAP,
            actions: vec![
                PlannedAction {
                    at_step: 10,
                    action: PlanAction::Checkpoint,
                },
                PlannedAction {
                    at_step: 24,
                    action: PlanAction::Fault(FaultAction::PowerCut {
                        outage: SimTime::from_us(60),
                    }),
                },
                PlannedAction {
                    at_step: 40,
                    action: PlanAction::RestoreLatest,
                },
            ],
        };
        let r = run_plan(&plan);
        assert!(r.clean(), "violations: {:?}", r.violations);
        assert!(r.deterministic);
        assert_eq!(r.reboots, 1, "the cut fired before the rewind");
    }

    #[test]
    fn restore_without_a_checkpoint_is_skipped() {
        let plan = FaultPlan {
            layout: PlanLayout::Failover,
            seed: 5,
            requests: 48,
            gap: DEFAULT_GAP,
            actions: vec![PlannedAction {
                at_step: 8,
                action: PlanAction::RestoreLatest,
            }],
        };
        let r = run_plan(&plan);
        assert!(r.clean(), "violations: {:?}", r.violations);
        assert_eq!(r.skipped, 1);
        assert_eq!(r.applied, 0);
    }

    #[test]
    fn shrinker_keeps_the_checkpoint_a_failing_rewind_needs() {
        // Sabotage between checkpoint and restore: the corruption is
        // un-happened by the rewind, so the failure needs sabotage
        // *after* the rewind window — build a plan whose sabotage
        // fires post-restore and check shrinking never drops the
        // sabotage while hunting, and that checkpoint/restore actions
        // survive shrinking only if they matter.
        let requests = 96u64;
        let make_plan = |seed: u64| FaultPlan {
            layout: PlanLayout::Failover,
            seed,
            requests,
            gap: DEFAULT_GAP,
            actions: vec![
                PlannedAction {
                    at_step: 8,
                    action: PlanAction::Checkpoint,
                },
                PlannedAction {
                    at_step: 16,
                    action: PlanAction::RestoreLatest,
                },
                PlannedAction {
                    at_step: requests * 3 / 4,
                    action: PlanAction::Fault(FaultAction::Sabotage {
                        slot: VICTIM_SLOT,
                        addr: 0,
                    }),
                },
            ],
        };
        let plan = (1..=24)
            .map(make_plan)
            .find(|plan| {
                run_plan_once(plan)
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::SilentCorruption { .. }))
            })
            .expect("some seed must expose the sabotage");
        let (minimal, kind) = shrink(&plan).expect("failing plan must shrink");
        assert_eq!(kind, "silent-corruption");
        assert!(minimal
            .actions
            .iter()
            .any(|a| matches!(a.action, PlanAction::Fault(FaultAction::Sabotage { .. }))));
        // The minimal reproducer (with or without the rewind pair)
        // still replays the violation after a JSON round trip.
        let replayed = FaultPlan::from_json(&minimal.to_json()).expect("reproducer parses");
        assert_eq!(minimal, replayed);
        assert!(run_plan(&replayed)
            .violations
            .iter()
            .any(|v| v.kind() == "silent-corruption"));
    }

    #[test]
    fn smoke_campaign_is_clean() {
        let report = run_campaign(&CampaignConfig::smoke());
        let violations = report.violations(None);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(report.plans_per_sec > 0.0);
        // Fresh report never regresses against itself.
        assert!(report.violations(Some(&report.to_json())).is_empty());
    }
}
