//! Deterministic channel-failover campaign: kill a memory buffer and
//! demand that not one byte is lost.
//!
//! Where [`crate::faults`] attacks the link and [`crate::media`] the
//! DIMM arrays, this campaign attacks the *channel as a whole*: a
//! victim ConTutto card dies mid-workload — by FSP error budget, by a
//! dead DMI link, or by a concurrent-maintenance pull — while the
//! system runs with either a hot spare or a mirrored pair. The
//! invariant asserted by [`CampaignReport::violations`]:
//!
//! * **zero lost lines** — after the failover settles, every line ever
//!   written reads back byte-identical or surfaces a typed
//!   [`DmiError::Poisoned`], and poison is tolerated only where media
//!   faults genuinely destroyed data (spare mode under the flip storm;
//!   a mirror always holds a clean copy);
//! * **the failover actually happened** — a run whose channel survived
//!   unscathed proves nothing, so `failovers == 0` is a violation;
//! * **no panics, ever** — a dead channel must surface typed errors;
//! * **byte-identical determinism** — every scenario × seed runs
//!   twice and the trace fingerprints must match.
//!
//! [`DmiError::Poisoned`]: contutto_dmi::DmiError::Poisoned

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_dmi::command::CacheLine;
use contutto_dmi::link::BitErrorInjector;
use contutto_dmi::DmiError;
use contutto_memdev::FaultConfig;
use contutto_power8::channel::{ChannelConfig, DmiChannel};
use contutto_power8::failover::FailoverMode;
use contutto_power8::firmware::layouts;
use contutto_power8::system::{Power8System, SystemError};
use contutto_sim::{MetricsRegistry, SimTime};

use crate::faults::campaign_policy;

/// Slot the victim ConTutto occupies in [`layouts::failover_pair`].
pub const VICTIM_SLOT: usize = 2;

/// Slot of the spare/mirror card.
pub const SPARE_SLOT: usize = 4;

/// Flips rained on the victim's hot range in the error-budget fault.
/// Dense enough that most ECC words collect two and go uncorrectable,
/// so the FSP budget (3 unrecovered) blows within a few reads.
pub const STORM_FLIPS: u32 = 200;

/// The flip storm lands inside this window from the victim's power-on.
pub const STORM_WINDOW: SimTime = SimTime::from_us(60);

/// Redundancy arrangement under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Trained hot spare + sideband evacuation.
    Spare,
    /// Mirrored pair: every store shadowed, reads fail over per-access.
    Mirrored,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Spare => "spare",
            Mode::Mirrored => "mirrored",
        }
    }

    fn failover_mode(self) -> FailoverMode {
        match self {
            Mode::Spare => FailoverMode::Spare { spare: SPARE_SLOT },
            Mode::Mirrored => FailoverMode::Mirrored {
                primary: VICTIM_SLOT,
                mirror: SPARE_SLOT,
            },
        }
    }
}

/// How the victim channel dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A media flip storm poisons demand reads until the FSP's
    /// unrecovered-error budget deconfigures the channel.
    ErrorBudget,
    /// Both link directions go fully lossy: commands hang, the retrain
    /// ladder fails, firmware deconfigures on the timeout.
    DeadLink,
    /// Concurrent maintenance: the operator pulls the card.
    MaintenancePull,
}

impl Fault {
    fn name(self) -> &'static str {
        match self {
            Fault::ErrorBudget => "error-budget",
            Fault::DeadLink => "dead-link",
            Fault::MaintenancePull => "maintenance-pull",
        }
    }
}

/// One campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Redundancy arrangement.
    pub mode: Mode,
    /// The way the victim dies.
    pub fault: Fault,
}

impl Scenario {
    /// Every mode × fault combination.
    pub fn all() -> Vec<Scenario> {
        let mut out = Vec::new();
        for mode in [Mode::Spare, Mode::Mirrored] {
            for fault in [Fault::ErrorBudget, Fault::DeadLink, Fault::MaintenancePull] {
                out.push(Scenario { mode, fault });
            }
        }
        out
    }

    /// Stable display name (also the table key).
    pub fn name(self) -> String {
        format!("{}+{}", self.mode.name(), self.fault.name())
    }

    /// Whether typed poison is an acceptable end state: only when the
    /// media genuinely destroyed lines and there is no second copy.
    /// A mirror always has clean data; link death and maintenance
    /// pulls never touch the media.
    pub fn allows_poison(self) -> bool {
        self.mode == Mode::Spare && self.fault == Fault::ErrorBudget
    }
}

/// How a single run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every written line accounted for: byte-identical reads plus
    /// (where the scenario permits) explicitly poisoned ones.
    Survived {
        /// Lines read back byte-identical.
        clean: u64,
        /// Lines surfaced as typed poison.
        poisoned: u64,
    },
    /// A read completed with bytes that differ from what was written —
    /// silent corruption, the one unforgivable outcome.
    LostData {
        /// Number of mismatching lines.
        mismatches: u64,
    },
    /// An access failed with an error the scenario does not permit.
    UnexpectedError(String),
    /// The run panicked — always a campaign violation.
    Panicked(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Survived { clean, poisoned } => {
                write!(f, "survived ({clean} clean, {poisoned} poisoned)")
            }
            Outcome::LostData { mismatches } => write!(f, "LOST ({mismatches} lines)"),
            Outcome::UnexpectedError(e) => write!(f, "fail: {e}"),
            Outcome::Panicked(msg) => write!(f, "PANIC: {msg}"),
        }
    }
}

/// The record of one scenario × seed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario that ran.
    pub scenario: Scenario,
    /// Seed parameterizing the fault pattern.
    pub seed: u64,
    /// Classified end state.
    pub outcome: Outcome,
    /// Completed failovers.
    pub failovers: u64,
    /// Lines moved by the evacuation migrator.
    pub lines_migrated: u64,
    /// Of those, lines that travelled as poison.
    pub poison_migrated: u64,
    /// Lines pulled ahead of the frontier by demand accesses.
    pub demand_migrations: u64,
    /// Reads served from the mirror after a primary fault.
    pub mirror_fallbacks: u64,
    /// Same-seed rerun produced an identical trace fingerprint.
    pub deterministic: bool,
    /// Trace fingerprint of the run.
    pub fingerprint: u64,
    /// Full metrics snapshot for `--metrics` aggregation.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Whether this run violates the zero-loss contract.
    pub fn is_violation(&self) -> bool {
        match &self.outcome {
            Outcome::Survived { poisoned, .. } => {
                self.failovers == 0
                    || !self.deterministic
                    || (*poisoned > 0 && !self.scenario.allows_poison())
            }
            Outcome::LostData { .. } | Outcome::UnexpectedError(_) | Outcome::Panicked(_) => true,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds swept per scenario.
    pub seeds: Vec<u64>,
    /// Cache lines written through the victim per run.
    pub lines: u64,
}

impl CampaignConfig {
    /// The quick gate used by `scripts/verify.sh`: 2 seeds, 12 lines.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1, 2],
            lines: 12,
        }
    }

    /// The full sweep: 5 seeds, 24 lines per run.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: (1..=5).collect(),
            lines: 24,
        }
    }
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every run, in scenario-major order.
    pub runs: Vec<RunReport>,
}

impl CampaignReport {
    /// Runs that break the zero-loss contract.
    pub fn violations(&self) -> Vec<&RunReport> {
        self.runs.iter().filter(|r| r.is_violation()).collect()
    }

    /// All run metrics merged (counters accumulate).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for r in &self.runs {
            merged.merge(&r.metrics);
        }
        merged
    }

    /// Renders the campaign table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>4}  {:<28} {:>5} {:>8} {:>6} {:>6} {:>5} {:>4}  {:<16}\n",
            "scenario",
            "seed",
            "outcome",
            "fails",
            "migrated",
            "poison",
            "demand",
            "mirr",
            "det",
            "fingerprint"
        ));
        out.push_str(&"-".repeat(122));
        out.push('\n');
        for r in &self.runs {
            out.push_str(&format!(
                "{:<26} {:>4}  {:<28} {:>5} {:>8} {:>6} {:>6} {:>5} {:>4}  {:016x}\n",
                r.scenario.name(),
                r.seed,
                r.outcome.to_string(),
                r.failovers,
                r.lines_migrated,
                r.poison_migrated,
                r.demand_migrations,
                r.mirror_fallbacks,
                if r.deterministic { "yes" } else { "NO" },
                r.fingerprint,
            ));
        }
        out.push_str(&format!(
            "\n{} runs, {} violations\n",
            self.runs.len(),
            self.violations().len(),
        ));
        out
    }
}

/// Builds the system for one run and, for the error-budget fault,
/// swaps in a victim card pre-armed with a seeded flip storm (the same
/// trick `Power8System` unit tests use — the fault pattern must exist
/// from the card's power-on for determinism).
fn system_for(scenario: Scenario, seed: u64, lines: u64) -> Power8System {
    let mut sys = Power8System::boot_with_failover(
        layouts::failover_pair(ContuttoConfig::base(), MemoryPopulation::dram_8gb()),
        seed,
        scenario.mode.failover_mode(),
    )
    .expect("failover testbed boots");
    if scenario.fault == Fault::ErrorBudget {
        let mut card = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
        card.attach_media_faults(FaultConfig {
            transient_flips: STORM_FLIPS,
            window: STORM_WINDOW,
            hot_start: 0,
            // Victim lines interleave across the two DIMM ports, so a
            // port-local range of lines/4 lines covers half the
            // working set: the campaign then proves both halves of the
            // contract in one run — rotted lines travel as poison,
            // untouched ones migrate byte-identical.
            hot_len: (lines / 4).max(1) * 128,
            ..FaultConfig::none(seed)
        });
        let victim = DmiChannel::new(ChannelConfig::contutto(), Box::new(card));
        sys.channel_mut(VICTIM_SLOT).expect("victim slot").channel = victim;
    }
    sys.set_retry_policy(campaign_policy());
    sys
}

/// Write the working set, kill the victim per the scenario, read
/// everything back (twice: mid-failover and after the migration
/// drains). Returns (clean, poisoned, mismatches, unexpected error).
fn workload(
    sys: &mut Power8System,
    scenario: Scenario,
    seed: u64,
    lines: u64,
) -> (u64, u64, u64, Option<SystemError>) {
    let victim_base = sys
        .memory_map()
        .regions()
        .iter()
        .find(|r| r.channel == VICTIM_SLOT)
        .expect("victim backs a region")
        .base;
    let mut written = Vec::new();
    for i in 0..lines {
        let addr = victim_base + i * 128;
        let line = CacheLine::patterned(seed.wrapping_mul(2000) + i);
        if let Err(e) = sys.store_line(addr, line) {
            return (0, 0, 0, Some(e));
        }
        written.push((addr, line));
    }

    // Kill the victim.
    match scenario.fault {
        Fault::ErrorBudget => {
            // Idle the victim past the storm window so every flip has
            // fallen due before the read pass exercises the budget.
            let ch = sys.channel_mut(VICTIM_SLOT).expect("victim slot");
            let t = ch.channel.now().max(STORM_WINDOW) + SimTime::from_us(10);
            ch.channel.run_until(t);
        }
        Fault::DeadLink => {
            let ch = sys.channel_mut(VICTIM_SLOT).expect("victim slot");
            ch.channel
                .set_down_injector(BitErrorInjector::bernoulli(1.0, seed));
            ch.channel
                .set_up_injector(BitErrorInjector::bernoulli(1.0, seed.wrapping_add(1)));
        }
        Fault::MaintenancePull => {
            sys.maintenance_pull(VICTIM_SLOT)
                .expect("pull has a failover target");
        }
    }

    // Read back mid-failover: demand accesses must be forwarded or
    // served from the copy frontier, never lost.
    let mut clean = 0;
    let mut poisoned = 0;
    let mut mismatches = 0;
    for (addr, line) in &written {
        match sys.load_line(*addr) {
            Ok((back, _)) if back == *line => clean += 1,
            Ok(_) => mismatches += 1,
            Err(SystemError::Dmi(DmiError::Poisoned { .. })) => poisoned += 1,
            Err(e) => return (clean, poisoned, mismatches, Some(e)),
        }
    }

    // Drain the migration, then verify again: the settled system must
    // account for every line with no channel help remaining.
    sys.complete_migration();
    let mut clean2 = 0;
    let mut poisoned2 = 0;
    let mut mismatches2 = 0;
    for (addr, line) in &written {
        match sys.load_line(*addr) {
            Ok((back, _)) if back == *line => clean2 += 1,
            Ok(_) => mismatches2 += 1,
            Err(SystemError::Dmi(DmiError::Poisoned { .. })) => poisoned2 += 1,
            Err(e) => return (clean2, poisoned2, mismatches2, Some(e)),
        }
    }
    (
        clean2,
        poisoned.max(poisoned2),
        mismatches + mismatches2,
        None,
    )
}

fn run_once(scenario: Scenario, seed: u64, lines: u64) -> RunReport {
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut sys = system_for(scenario, seed, lines);
        let tracer = sys.enable_tracing(1 << 15);
        let (clean, poisoned, mismatches, error) = workload(&mut sys, scenario, seed, lines);
        let stats = *sys.failover_stats();
        let metrics = sys.metrics();
        let outcome = if let Some(e) = error {
            Outcome::UnexpectedError(e.to_string())
        } else if mismatches > 0 {
            Outcome::LostData { mismatches }
        } else {
            Outcome::Survived { clean, poisoned }
        };
        RunReport {
            scenario,
            seed,
            outcome,
            failovers: stats.failovers,
            lines_migrated: stats.lines_migrated,
            poison_migrated: stats.poison_migrated,
            demand_migrations: stats.demand_migrations,
            mirror_fallbacks: stats.mirror_read_fallbacks,
            deterministic: true,
            fingerprint: tracer.fingerprint(),
            metrics,
        }
    }));
    result.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        RunReport {
            scenario,
            seed,
            outcome: Outcome::Panicked(msg),
            failovers: 0,
            lines_migrated: 0,
            poison_migrated: 0,
            demand_migrations: 0,
            mirror_fallbacks: 0,
            deterministic: true,
            fingerprint: 0,
            metrics: MetricsRegistry::new(),
        }
    })
}

/// Runs one scenario at one seed — twice, because byte-identical
/// same-seed traces are part of the contract. A fingerprint divergence
/// marks the report non-deterministic (a violation).
pub fn run_scenario(scenario: Scenario, seed: u64, lines: u64) -> RunReport {
    let lines = lines.max(4).next_multiple_of(2);
    let (mut report, deterministic) = crate::harness::run_twice_assert_identical(
        || run_once(scenario, seed, lines),
        |a, b| a.fingerprint == b.fingerprint && a.outcome == b.outcome,
    );
    report.deterministic = deterministic;
    report
}

/// Runs every mode × fault scenario across every seed.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut runs = Vec::new();
    for scenario in Scenario::all() {
        for &seed in &cfg.seeds {
            runs.push(run_scenario(scenario, seed, cfg.lines));
        }
    }
    CampaignReport { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_loses_nothing() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1],
            lines: 12,
        });
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "{}",
            violations
                .iter()
                .map(|r| format!("{} seed {}: {}", r.scenario.name(), r.seed, r.outcome))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn spare_error_budget_migrates_poison_as_poison() {
        let r = run_scenario(
            Scenario {
                mode: Mode::Spare,
                fault: Fault::ErrorBudget,
            },
            1,
            12,
        );
        assert!(!r.is_violation(), "{}", r.outcome);
        assert!(r.failovers >= 1, "budget exhaustion must fail over");
        assert!(
            r.poison_migrated > 0,
            "the storm defeats SEC-DED somewhere, and that poison must travel"
        );
    }

    #[test]
    fn mirrored_dead_link_survives_clean() {
        let r = run_scenario(
            Scenario {
                mode: Mode::Mirrored,
                fault: Fault::DeadLink,
            },
            2,
            12,
        );
        assert!(!r.is_violation(), "{}", r.outcome);
        let Outcome::Survived { clean, poisoned } = &r.outcome else {
            panic!("expected survival, got {}", r.outcome);
        };
        assert_eq!(*poisoned, 0, "the mirror always has clean data");
        assert_eq!(*clean, 12);
    }

    #[test]
    fn maintenance_pull_drains_backlog() {
        let r = run_scenario(
            Scenario {
                mode: Mode::Spare,
                fault: Fault::MaintenancePull,
            },
            3,
            12,
        );
        assert!(!r.is_violation(), "{}", r.outcome);
        assert!(r.lines_migrated >= 12, "every written line must move");
        assert_eq!(r.poison_migrated, 0, "a pull does not destroy data");
    }
}
