//! Deterministic power-fail campaign: cut the power at every K-th
//! event and demand the durability contract holds.
//!
//! Where [`crate::failover`] kills one channel, this campaign kills
//! the *whole machine*: mains power dies after an arbitrary number of
//! stores — with or without an orderly EPOW flush cascade first —
//! and the system cold-boots through [`Power8System::reboot`]. The
//! contract asserted by [`CampaignReport::violations`]:
//!
//! * **durability** — every line saved by an armed, fully-funded
//!   NVDIMM reads back byte-identical after reboot;
//! * **typed loss, never silent** — a line that did not survive
//!   (disarmed supercap, starved save energy) reads back empty *and*
//!   appears in the reboot report's `data_loss`; bytes that are
//!   neither the written value nor the reported-empty state are
//!   silent corruption, the one unforgivable outcome;
//! * **volatile means volatile** — DRAM contents never resurrect
//!   across a power cut;
//! * **starved budgets tear for real** — an armed save with too little
//!   supercap energy must produce at least one *detected* torn save
//!   ([`PowerRestoreOutcome::TornSave`]) across the sweep;
//! * **no panics, byte-identical determinism** — every scenario ×
//!   seed × crash point runs twice and the trace fingerprints must
//!   match.
//!
//! Per-run crash-point results are kept in a bounded ring per
//! scenario; the table emits a single pass/degrade/fail summary row
//! per scenario (the `--failover` table format) and logs how many
//! runs the ring dropped — the sweep never truncates silently.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use contutto_centaur::CentaurConfig;
use contutto_core::{ContuttoConfig, MemoryKind, MemoryPopulation};
use contutto_dmi::command::CacheLine;
use contutto_dmi::PowerRestoreOutcome;
use contutto_memdev::SAVE_COST_PER_PAGE_NJ;
use contutto_power8::firmware::SlotPopulation;
use contutto_power8::system::{Power8System, PowerConfig, EPOW_CORE_FLUSH_COST_PER_LINE_NJ};
use contutto_sim::{MetricsRegistry, SimTime};

/// Slot the NVDIMM ConTutto occupies in the campaign layout.
pub const NVDIMM_SLOT: usize = 2;

/// Supercap arming state under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arming {
    /// Supercap armed: the cut triggers the DRAM→flash save.
    Armed,
    /// Supercap disarmed: contents are lost — and must be *reported*.
    Disarmed,
}

/// Energy budget under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Ideal energy: every flush and save completes.
    Generous,
    /// Four pages of save energy against a 128-page DIMM, and a
    /// hold-up budget that dies during EPOW stage 1: the save tears.
    Starved,
}

/// One campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Supercap arming.
    pub arming: Arming,
    /// Energy budget.
    pub budget: Budget,
    /// Whether the FSP gets to run the EPOW flush cascade before the
    /// cut (orderly) or the power just dies (surprise).
    pub orderly: bool,
}

impl Scenario {
    /// Every arming × budget × {orderly, surprise} combination.
    pub fn all() -> Vec<Scenario> {
        let mut out = Vec::new();
        for arming in [Arming::Armed, Arming::Disarmed] {
            for budget in [Budget::Generous, Budget::Starved] {
                for orderly in [true, false] {
                    out.push(Scenario {
                        arming,
                        budget,
                        orderly,
                    });
                }
            }
        }
        out
    }

    /// Stable display name (also the table key).
    pub fn name(self) -> String {
        format!(
            "{}+{}+{}",
            match self.arming {
                Arming::Armed => "armed",
                Arming::Disarmed => "disarmed",
            },
            match self.budget {
                Budget::Generous => "generous",
                Budget::Starved => "starved",
            },
            if self.orderly { "orderly" } else { "surprise" },
        )
    }

    /// Whether NVDIMM contents are expected to survive the cut.
    pub fn expects_durable(self) -> bool {
        self.arming == Arming::Armed && self.budget == Budget::Generous
    }

    /// Whether the sweep must demonstrate a detected torn save.
    pub fn expects_torn_save(self) -> bool {
        self.arming == Arming::Armed && self.budget == Budget::Starved
    }

    fn power_config(self) -> PowerConfig {
        match self.budget {
            Budget::Generous => PowerConfig::ideal(),
            Budget::Starved => PowerConfig {
                holdup_budget_nj: Some(EPOW_CORE_FLUSH_COST_PER_LINE_NJ * 3 + 1),
                nvdimm_supercap_nj: Some(SAVE_COST_PER_PAGE_NJ * 4),
            },
        }
    }
}

/// How a single crash-point run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every pre-cut line accounted for: byte-identical survivors plus
    /// losses that were explicitly reported.
    Accounted {
        /// Non-volatile lines read back byte-identical.
        nv_clean: u64,
        /// Lines empty after reboot *and* covered by a typed
        /// data-loss report.
        reported_lost: u64,
    },
    /// Bytes after reboot that are neither the written value nor a
    /// reported loss — silent corruption.
    SilentCorruption {
        /// Number of offending lines.
        lines: u64,
    },
    /// An access or the reboot failed with an unexpected error.
    UnexpectedError(String),
    /// The run panicked — always a campaign violation.
    Panicked(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Accounted {
                nv_clean,
                reported_lost,
            } => write!(
                f,
                "accounted ({nv_clean} clean, {reported_lost} reported lost)"
            ),
            Outcome::SilentCorruption { lines } => write!(f, "SILENT CORRUPTION ({lines} lines)"),
            Outcome::UnexpectedError(e) => write!(f, "fail: {e}"),
            Outcome::Panicked(msg) => write!(f, "PANIC: {msg}"),
        }
    }
}

/// The record of one scenario × seed × crash-point run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Seed parameterizing the run.
    pub seed: u64,
    /// Stores completed before the cut.
    pub cut_after: u64,
    /// Classified end state.
    pub outcome: Outcome,
    /// Torn saves detected at reboot.
    pub torn_saves: u64,
    /// Slots reported as data loss at reboot.
    pub reported_loss_slots: u64,
    /// Same-seed rerun produced an identical trace fingerprint.
    pub deterministic: bool,
    /// Trace fingerprint of the run.
    pub fingerprint: u64,
}

impl RunRecord {
    fn is_violation(&self, scenario: Scenario) -> bool {
        match &self.outcome {
            Outcome::Accounted { reported_lost, .. } => {
                !self.deterministic || (*reported_lost > 0 && scenario.expects_durable())
            }
            Outcome::SilentCorruption { .. }
            | Outcome::UnexpectedError(_)
            | Outcome::Panicked(_) => true,
        }
    }
}

/// Per-scenario result: a bounded ring of run records plus aggregate
/// counters that cover *every* run, including ones the ring dropped.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario that ran.
    pub scenario: Scenario,
    /// Most recent runs, ring-buffered to [`CampaignConfig::ring_capacity`].
    pub ring: VecDeque<RunRecord>,
    /// Total runs executed (ring may hold fewer).
    pub total_runs: u64,
    /// Runs the ring dropped (logged, never silent).
    pub ring_dropped: u64,
    /// Torn saves detected across all runs.
    pub torn_saves: u64,
    /// Runs that ended in a reported (typed) loss.
    pub reported_loss_runs: u64,
    /// Runs that violated the contract.
    pub violations: u64,
    /// Example violation text (first seen), for the report.
    pub first_violation: Option<String>,
    /// Every run was deterministic.
    pub deterministic: bool,
    /// Runs that wrote at least one NVDIMM line before the cut.
    pub runs_with_nv_writes: u64,
}

impl ScenarioResult {
    fn new(scenario: Scenario) -> Self {
        ScenarioResult {
            scenario,
            ring: VecDeque::new(),
            total_runs: 0,
            ring_dropped: 0,
            torn_saves: 0,
            reported_loss_runs: 0,
            violations: 0,
            first_violation: None,
            deterministic: true,
            runs_with_nv_writes: 0,
        }
    }

    fn push(&mut self, record: RunRecord, capacity: usize) {
        self.total_runs += 1;
        self.torn_saves += record.torn_saves;
        if record.cut_after > 0 {
            self.runs_with_nv_writes += 1;
        }
        if matches!(record.outcome, Outcome::Accounted { reported_lost, .. } if reported_lost > 0)
            || record.reported_loss_slots > 0
        {
            self.reported_loss_runs += 1;
        }
        if !record.deterministic {
            self.deterministic = false;
        }
        if record.is_violation(self.scenario) {
            self.violations += 1;
            if self.first_violation.is_none() {
                self.first_violation = Some(format!(
                    "seed {} cut@{}: {}",
                    record.seed, record.cut_after, record.outcome
                ));
            }
        }
        if self.ring.len() == capacity {
            self.ring.pop_front();
            self.ring_dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// The one-word verdict for the summary row.
    pub fn verdict(&self) -> &'static str {
        if self.violations > 0 || self.missing_torn_save() {
            "FAIL"
        } else if self.reported_loss_runs > 0 {
            "degrade"
        } else {
            "pass"
        }
    }

    /// A starved, armed sweep that never tore a save proves nothing:
    /// the energy model would be dead code.
    pub fn missing_torn_save(&self) -> bool {
        self.scenario.expects_torn_save() && self.runs_with_nv_writes > 0 && self.torn_saves == 0
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds swept per scenario.
    pub seeds: Vec<u64>,
    /// Stores issued per run when nothing cuts them short.
    pub lines: u64,
    /// Crash-point stride: the cut lands after 0, K, 2K, … stores.
    pub cut_stride: u64,
    /// Ring capacity for per-run records, per scenario.
    pub ring_capacity: usize,
    /// Reuse the store prefix across crash points: per scenario ×
    /// seed the store sequence is simulated once, snapshotted at
    /// every cut point, and each crash-point run restores its
    /// snapshot into a fresh boot instead of re-simulating the
    /// prefix. Results are byte-identical to the straight sweep.
    pub reuse_prefix: bool,
}

impl CampaignConfig {
    /// The quick gate used by `scripts/verify.sh`.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1, 2],
            lines: 8,
            cut_stride: 4,
            ring_capacity: 64,
            reuse_prefix: false,
        }
    }

    /// The full sweep: finer crash-point stride, more seeds.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: (1..=3).collect(),
            lines: 16,
            cut_stride: 2,
            ring_capacity: 64,
            reuse_prefix: false,
        }
    }

    /// The crash points this config sweeps.
    pub fn cut_points(&self) -> Vec<u64> {
        let stride = self.cut_stride.max(1);
        (0..=self.lines).step_by(stride as usize).collect()
    }
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-scenario results, in scenario order.
    pub scenarios: Vec<ScenarioResult>,
    /// Metrics merged across every run (counters accumulate).
    pub metrics: MetricsRegistry,
    /// Store operations actually simulated, prefix recording
    /// included. The checkpoint campaign asserts prefix reuse
    /// *structurally* from this: a reused sweep must execute far
    /// fewer stores than the straight sweep for identical results.
    pub stores_executed: u64,
}

impl CampaignReport {
    /// Contract violations, one line each.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.scenarios {
            if s.violations > 0 {
                out.push(format!(
                    "{}: {} violating runs (first: {})",
                    s.scenario.name(),
                    s.violations,
                    s.first_violation.as_deref().unwrap_or("?"),
                ));
            }
            if s.missing_torn_save() {
                out.push(format!(
                    "{}: starved sweep produced no detected torn save",
                    s.scenario.name()
                ));
            }
            if !s.deterministic {
                out.push(format!("{}: same-seed reruns diverged", s.scenario.name()));
            }
        }
        out
    }

    /// All run metrics merged.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        self.metrics.clone()
    }

    /// Renders the per-scenario summary table (one row per scenario,
    /// the `--failover` format) plus ring-truncation notes.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>5} {:>5} {:>5} {:>9} {:>7} {:>4}  {:<10}\n",
            "scenario", "runs", "ring", "torn", "rep-loss", "viols", "det", "verdict"
        ));
        out.push_str(&"-".repeat(82));
        out.push('\n');
        for s in &self.scenarios {
            out.push_str(&format!(
                "{:<28} {:>5} {:>5} {:>5} {:>9} {:>7} {:>4}  {:<10}\n",
                s.scenario.name(),
                s.total_runs,
                s.ring.len(),
                s.torn_saves,
                s.reported_loss_runs,
                s.violations,
                if s.deterministic { "yes" } else { "NO" },
                s.verdict(),
            ));
        }
        for s in &self.scenarios {
            if s.ring_dropped > 0 {
                out.push_str(&format!(
                    "note: {} ring kept {} of {} runs ({} dropped)\n",
                    s.scenario.name(),
                    s.ring.len(),
                    s.total_runs,
                    s.ring_dropped,
                ));
            }
        }
        let violations = self.violations();
        out.push_str(&format!(
            "\n{} scenarios, {} total runs, {} violations\n",
            self.scenarios.len(),
            self.scenarios.iter().map(|s| s.total_runs).sum::<u64>(),
            violations.len(),
        ));
        for v in &violations {
            out.push_str(&format!("violation: {v}\n"));
        }
        out
    }
}

/// The campaign layout: minimal CDIMM DRAM at slot 0 so Linux has
/// memory at address zero, plus a small NVDIMM ConTutto at slot 2 so
/// the save/restore sweep stays fast.
fn power_layout() -> Vec<SlotPopulation> {
    vec![
        SlotPopulation::Cdimm {
            config: CentaurConfig::optimized(),
            capacity: 4 << 30,
        },
        SlotPopulation::Empty,
        SlotPopulation::ConTutto {
            config: ContuttoConfig::base(),
            population: MemoryPopulation {
                kind: MemoryKind::NvdimmN,
                dimm_capacity: 512 << 10,
                dimms: 2,
            },
        },
        SlotPopulation::Empty,
    ]
}

struct RawRun {
    outcome: Outcome,
    torn_saves: u64,
    reported_loss_slots: u64,
    fingerprint: u64,
    metrics: MetricsRegistry,
}

/// Boots the campaign layout with tracing, arming and the scenario's
/// energy model applied — everything a run does before its stores.
fn boot_configured(scenario: Scenario, seed: u64) -> Power8System {
    let mut sys = Power8System::boot(power_layout(), seed).expect("campaign layout boots");
    sys.enable_tracing(1 << 14);
    if scenario.arming == Arming::Disarmed {
        sys.set_nvdimm_armed(false);
    }
    sys.configure_power(scenario.power_config());
    sys
}

/// The campaign's deterministic store schedule: line `i` alternates
/// between the NVDIMM region and volatile DRAM. Pure in (seed,
/// cut_after), so a restored run can rebuild its golden audit list
/// without re-simulating a single store.
fn golden_lines(nv_base: u64, seed: u64, cut_after: u64) -> Vec<(u64, CacheLine, bool)> {
    (0..cut_after)
        .map(|i| {
            let (addr, nonvolatile) = if i % 2 == 0 {
                (nv_base + (i / 2) * 128, true)
            } else {
                (0x20_0000 + (i / 2) * 128, false)
            };
            let line = CacheLine::patterned(seed.wrapping_mul(1_000_003) + i);
            (addr, line, nonvolatile)
        })
        .collect()
}

/// Optionally run the EPOW cascade, cut the power, reboot, and audit
/// every pre-cut line against the durability contract.
fn cut_and_audit(
    mut sys: Power8System,
    scenario: Scenario,
    golden: &[(u64, CacheLine, bool)],
) -> RawRun {
    if scenario.orderly {
        sys.epow();
    }
    let now = sys
        .channels()
        .iter()
        .map(|c| c.channel.now())
        .max()
        .unwrap_or(SimTime::ZERO);
    let quiet = sys.power_cut(now + SimTime::from_us(1));
    let report = match sys.reboot(quiet + SimTime::from_ms(10)) {
        Ok(r) => r,
        Err(e) => {
            return RawRun {
                outcome: Outcome::UnexpectedError(format!("reboot: {e}")),
                torn_saves: 0,
                reported_loss_slots: 0,
                fingerprint: sys.tracer().fingerprint(),
                metrics: sys.metrics(),
            }
        }
    };
    let lost_slots: BTreeSet<usize> = report.data_loss.iter().map(|d| d.slot).collect();
    let torn_saves = report
        .data_loss
        .iter()
        .filter(|d| d.outcome == PowerRestoreOutcome::TornSave)
        .count() as u64;

    let mut nv_clean = 0u64;
    let mut reported_lost = 0u64;
    let mut silent = 0u64;
    for (addr, line, nonvolatile) in golden {
        let back = match sys.load_line(*addr) {
            Ok((back, _)) => back,
            Err(e) => {
                return RawRun {
                    outcome: Outcome::UnexpectedError(format!("readback: {e}")),
                    torn_saves,
                    reported_loss_slots: lost_slots.len() as u64,
                    fingerprint: sys.tracer().fingerprint(),
                    metrics: sys.metrics(),
                }
            }
        };
        if *nonvolatile {
            if back == *line {
                nv_clean += 1;
            } else if back == CacheLine::default() {
                let slot = sys.route(*addr).map(|(s, _)| s);
                if slot.is_some_and(|s| lost_slots.contains(&s)) {
                    reported_lost += 1;
                } else {
                    // Empty with no loss report: silent loss.
                    silent += 1;
                }
            } else {
                // Neither the written value nor reported-empty.
                silent += 1;
            }
        } else if back != CacheLine::default() {
            // Volatile contents resurrected across a power cut.
            silent += 1;
        }
    }
    let outcome = if silent > 0 {
        Outcome::SilentCorruption { lines: silent }
    } else {
        Outcome::Accounted {
            nv_clean,
            reported_lost,
        }
    };
    RawRun {
        outcome,
        torn_saves,
        reported_loss_slots: lost_slots.len() as u64,
        fingerprint: sys.tracer().fingerprint(),
        metrics: sys.metrics(),
    }
}

fn panic_to_raw_run(panic: Box<dyn std::any::Any + Send>) -> RawRun {
    let msg = panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    RawRun {
        outcome: Outcome::Panicked(msg),
        torn_saves: 0,
        reported_loss_slots: 0,
        fingerprint: 0,
        metrics: MetricsRegistry::new(),
    }
}

/// Write `cut_after` lines (alternating NVDIMM / DRAM), then cut,
/// reboot and audit.
fn run_once(scenario: Scenario, seed: u64, cut_after: u64) -> RawRun {
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut sys = boot_configured(scenario, seed);
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        let golden = golden_lines(nv_base, seed, cut_after);
        for (addr, line, _) in &golden {
            if let Err(e) = sys.store_line(*addr, *line) {
                return RawRun {
                    outcome: Outcome::UnexpectedError(format!("store: {e}")),
                    torn_saves: 0,
                    reported_loss_slots: 0,
                    fingerprint: sys.tracer().fingerprint(),
                    metrics: sys.metrics(),
                };
            }
        }
        cut_and_audit(sys, scenario, &golden)
    }));
    result.unwrap_or_else(panic_to_raw_run)
}

/// The reused-prefix variant of [`run_once`]: instead of simulating
/// `cut_after` stores, overlay the snapshot taken after them onto a
/// fresh boot and go straight to the cut.
fn run_once_reused(scenario: Scenario, seed: u64, cut_after: u64, image: &[u8]) -> RawRun {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut sys = Power8System::boot(power_layout(), seed).expect("campaign layout boots");
        if let Err(e) = sys.restore(image) {
            return RawRun {
                outcome: Outcome::UnexpectedError(format!("restore: {e}")),
                torn_saves: 0,
                reported_loss_slots: 0,
                fingerprint: 0,
                metrics: sys.metrics(),
            };
        }
        let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
        let golden = golden_lines(nv_base, seed, cut_after);
        cut_and_audit(sys, scenario, &golden)
    }));
    result.unwrap_or_else(panic_to_raw_run)
}

/// Simulates the store prefix once, snapshotting at every cut point.
/// Returns the images plus the number of stores actually simulated,
/// or `None` if a store failed (the caller falls back to the
/// straight path, which will type the error per crash point).
fn record_prefix(
    scenario: Scenario,
    seed: u64,
    cut_points: &[u64],
) -> Option<(BTreeMap<u64, Vec<u8>>, u64)> {
    let mut points = cut_points.to_vec();
    points.sort_unstable();
    points.dedup();
    let mut sys = boot_configured(scenario, seed);
    let nv_base = sys.memory_map().nonvolatile_regions()[0].base;
    let max = points.last().copied().unwrap_or(0);
    let golden = golden_lines(nv_base, seed, max);
    let mut images = BTreeMap::new();
    let mut done = 0u64;
    let mut stores = 0u64;
    for &cp in &points {
        for i in done..cp {
            let (addr, line, _) = golden[i as usize];
            sys.store_line(addr, line).ok()?;
            stores += 1;
        }
        done = cp;
        images.insert(cp, sys.snapshot());
    }
    Some((images, stores))
}

fn to_record(first: RawRun, deterministic: bool, seed: u64, cut_after: u64) -> RunRecord {
    RunRecord {
        seed,
        cut_after,
        outcome: first.outcome,
        torn_saves: first.torn_saves,
        reported_loss_slots: first.reported_loss_slots,
        deterministic,
        fingerprint: first.fingerprint,
    }
}

/// Runs one scenario × seed × crash point — twice, because
/// byte-identical same-seed traces are part of the contract.
pub fn run_crash_point(
    scenario: Scenario,
    seed: u64,
    cut_after: u64,
) -> (RunRecord, MetricsRegistry) {
    let (first, deterministic) = crate::harness::run_twice_assert_identical(
        || run_once(scenario, seed, cut_after),
        |a, b| a.fingerprint == b.fingerprint && a.outcome == b.outcome,
    );
    let metrics = first.metrics.clone();
    (to_record(first, deterministic, seed, cut_after), metrics)
}

/// [`run_crash_point`] over a recorded prefix snapshot: both
/// determinism legs restore the same image into fresh boots, so the
/// double-run additionally proves restore itself is deterministic.
pub fn run_crash_point_reused(
    scenario: Scenario,
    seed: u64,
    cut_after: u64,
    image: &[u8],
) -> (RunRecord, MetricsRegistry) {
    let (first, deterministic) = crate::harness::run_twice_assert_identical(
        || run_once_reused(scenario, seed, cut_after, image),
        |a, b| a.fingerprint == b.fingerprint && a.outcome == b.outcome,
    );
    let metrics = first.metrics.clone();
    (to_record(first, deterministic, seed, cut_after), metrics)
}

/// Runs every arming × budget × orderliness scenario across every
/// seed and crash point. With [`CampaignConfig::reuse_prefix`] the
/// per-(scenario, seed) store prefix is simulated once and each crash
/// point restores its snapshot — same records, far fewer stores.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let cut_points = cfg.cut_points();
    let mut scenarios = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut stores_executed = 0u64;
    for scenario in Scenario::all() {
        let mut result = ScenarioResult::new(scenario);
        for &seed in &cfg.seeds {
            let prefix = if cfg.reuse_prefix {
                record_prefix(scenario, seed, &cut_points)
            } else {
                None
            };
            match prefix {
                Some((images, prefix_stores)) => {
                    stores_executed += prefix_stores;
                    for &cut_after in &cut_points {
                        let (record, run_metrics) =
                            run_crash_point_reused(scenario, seed, cut_after, &images[&cut_after]);
                        metrics.merge(&run_metrics);
                        result.push(record, cfg.ring_capacity.max(1));
                    }
                }
                None => {
                    for &cut_after in &cut_points {
                        let (record, run_metrics) = run_crash_point(scenario, seed, cut_after);
                        // The determinism double-run simulates the
                        // prefix twice.
                        stores_executed += 2 * cut_after;
                        metrics.merge(&run_metrics);
                        result.push(record, cfg.ring_capacity.max(1));
                    }
                }
            }
        }
        scenarios.push(result);
    }
    CampaignReport {
        scenarios,
        metrics,
        stores_executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_upholds_the_durability_contract() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1],
            lines: 8,
            cut_stride: 4,
            ring_capacity: 64,
            reuse_prefix: false,
        });
        let violations = report.violations();
        assert!(violations.is_empty(), "{}", violations.join("\n"));
    }

    /// The prefix-reused sweep must reproduce the straight sweep's
    /// records byte-for-byte while simulating strictly fewer stores.
    #[test]
    fn reused_prefix_sweep_is_byte_identical_to_straight() {
        let mut cfg = CampaignConfig {
            seeds: vec![1],
            lines: 8,
            cut_stride: 4,
            ring_capacity: 64,
            reuse_prefix: false,
        };
        let straight = run_campaign(&cfg);
        cfg.reuse_prefix = true;
        let reused = run_campaign(&cfg);
        assert_eq!(straight.render_table(), reused.render_table());
        for (a, b) in straight.scenarios.iter().zip(&reused.scenarios) {
            for (ra, rb) in a.ring.iter().zip(&b.ring) {
                assert_eq!(ra.fingerprint, rb.fingerprint, "{:?}", a.scenario);
                assert_eq!(ra.outcome, rb.outcome, "{:?}", a.scenario);
                assert!(rb.deterministic, "{:?}", a.scenario);
            }
        }
        // Straight runs each prefix twice per crash point; reuse
        // records it once per (scenario, seed).
        assert!(
            reused.stores_executed < straight.stores_executed,
            "reused {} vs straight {}",
            reused.stores_executed,
            straight.stores_executed
        );
        // 8 scenarios × 1 seed × cut points {0,4,8} → straight
        // simulates 2·(0+4+8) stores per scenario; reuse simulates
        // max(cut_points) = 8 once per scenario.
        assert_eq!(straight.stores_executed, 8 * 2 * 12);
        assert_eq!(reused.stores_executed, 8 * 8);
    }

    #[test]
    fn armed_generous_cut_is_fully_durable() {
        let (r, _) = run_crash_point(
            Scenario {
                arming: Arming::Armed,
                budget: Budget::Generous,
                orderly: true,
            },
            1,
            8,
        );
        assert!(r.deterministic);
        assert_eq!(
            r.outcome,
            Outcome::Accounted {
                nv_clean: 4,
                reported_lost: 0
            },
            "{}",
            r.outcome
        );
    }

    #[test]
    fn starved_supercap_tears_and_is_detected() {
        let (r, _) = run_crash_point(
            Scenario {
                arming: Arming::Armed,
                budget: Budget::Starved,
                orderly: false,
            },
            2,
            8,
        );
        assert!(
            r.torn_saves >= 1,
            "torn save must be detected, got {}",
            r.outcome
        );
        let Outcome::Accounted { reported_lost, .. } = r.outcome else {
            panic!(
                "torn save must surface as a reported loss, got {}",
                r.outcome
            );
        };
        assert_eq!(
            reported_lost, 4,
            "every lost nv line is covered by the report"
        );
    }

    #[test]
    fn disarmed_loss_is_reported_not_silent() {
        let (r, _) = run_crash_point(
            Scenario {
                arming: Arming::Disarmed,
                budget: Budget::Generous,
                orderly: true,
            },
            3,
            6,
        );
        let Outcome::Accounted {
            nv_clean,
            reported_lost,
        } = r.outcome
        else {
            panic!("expected accounted, got {}", r.outcome);
        };
        assert_eq!(nv_clean, 0);
        assert_eq!(reported_lost, 3);
    }

    #[test]
    fn ring_logs_dropped_runs_instead_of_truncating_silently() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1],
            lines: 4,
            cut_stride: 1,
            ring_capacity: 2,
            reuse_prefix: false,
        });
        let s = &report.scenarios[0];
        assert_eq!(s.total_runs, 5);
        assert_eq!(s.ring.len(), 2);
        assert_eq!(s.ring_dropped, 3);
        let table = report.render_table();
        assert!(table.contains("ring kept 2 of 5"), "{table}");
    }
}
