//! A minimal wall-clock benchmark harness with a Criterion-compatible
//! surface.
//!
//! The paper-table benches under `benches/` need only a small API:
//! named benchmark functions and groups, per-group sample counts,
//! parameterized IDs and a `Bencher::iter` timing loop. This module
//! provides exactly that with `std::time::Instant`, so the workspace
//! carries no external benchmark dependency and builds fully offline.
//! Results are printed as mean/min/max per benchmark; these are
//! wall-clock measurements of the *simulator*, not of the simulated
//! hardware (simulated time is reported by the benches themselves via
//! `SimTime`).

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Runs one timing loop per call to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (after one untimed warmup)
    /// and records the samples. The routine's output is passed through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            black_box(out);
            self.samples.push(elapsed);
        }
    }
}

/// A parameterized benchmark name, e.g. `knob/3`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID rendered from a function name and a parameter.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An ID rendered from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let n = bencher.samples.len().max(1) as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "bench {name:<40} mean {:>12}  min {:>12}  max {:>12}  ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        bencher.samples.len(),
    );
}

/// Runs `run` twice and checks that the two results agree under
/// `identical` — the determinism contract every fault campaign
/// enforces (same seed ⇒ byte-identical trace fingerprint and
/// outcome). The "assertion" is returned rather than panicked:
/// campaigns record a divergence as a violation row so the rest of
/// the sweep still runs. Returns the first result and the verdict.
pub fn run_twice_assert_identical<R>(
    mut run: impl FnMut() -> R,
    identical: impl FnOnce(&R, &R) -> bool,
) -> (R, bool) {
    let first = run();
    let rerun = run();
    let verdict = identical(&first, &rerun);
    (first, verdict)
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; output is streamed,
    /// so there is nothing to flush).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into one callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

// Let bench files import everything (types and macros) from one path.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut runs = 0u32;
        b.iter(|| {
            runs += 1;
            runs
        });
        // warmup + samples
        assert_eq!(runs, 6);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
        assert_eq!(BenchmarkId::new("knob", 5).to_string(), "knob/5");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| ran += x)
            });
            g.finish();
        }
        c.bench_function("plain", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    #[should_panic(expected = "sample size")]
    fn zero_sample_size_rejected() {
        Criterion::default().benchmark_group("g").sample_size(0);
    }

    #[test]
    fn run_twice_detects_divergence_and_agreement() {
        let mut n = 0u32;
        let (first, ok) = run_twice_assert_identical(
            || {
                n += 1;
                n
            },
            |a, b| a == b,
        );
        assert_eq!(first, 1);
        assert!(!ok, "a counter is the canonical non-deterministic run");
        let (first, ok) = run_twice_assert_identical(|| 42u32, |a, b| a == b);
        assert_eq!(first, 42);
        assert!(ok);
    }
}
