//! Deterministic fault-injection campaign for the DMI channel.
//!
//! Every scenario drives the same write-then-read-back workload
//! through a ConTutto channel while a specific fault pattern attacks
//! the link, then classifies the run on the degradation ladder the
//! channel implements (replay → retry with backoff → retrain → typed
//! error). The campaign's invariants, asserted by
//! [`CampaignReport::violations`]:
//!
//! * **no panics** — every failure mode surfaces as a typed
//!   [`DmiError`], never an unwind;
//! * **no corruption** — every read that completes returns the bytes
//!   that were written;
//! * **typed failure only where expected** — only a dead link (or a
//!   flaky trainer that exhausts its budget) may end in an error.
//!
//! Runs are deterministic: the same scenario and seed produce a
//! byte-identical trace fingerprint, which the table prints so drift
//! is visible at a glance.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_dmi::command::{CacheLine, CommandOp};
use contutto_dmi::link::BitErrorInjector;
use contutto_dmi::training::TrainerConfig;
use contutto_dmi::DmiError;
use contutto_power8::channel::{ChannelConfig, DmiChannel, RetryPolicy};
use contutto_sim::{MetricsRegistry, SimTime};

/// The retry policy every campaign run uses: tight enough that a
/// sustained fault escalates within microseconds, long enough that
/// ordinary replays never trip it.
pub fn campaign_policy() -> RetryPolicy {
    RetryPolicy {
        op_timeout: SimTime::from_us(20),
        max_attempts: 3,
        base_backoff: SimTime::from_us(4),
        max_retrains: 1,
    }
}

/// One fault pattern attacking the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No faults — the control run.
    Clean,
    /// Sustained 2% Bernoulli bit errors on the downstream wire.
    BernoulliDown,
    /// Sustained 2% Bernoulli bit errors on the upstream wire.
    BernoulliUp,
    /// Sustained 1% Bernoulli errors on both wires at once.
    BernoulliBoth,
    /// A 120-frame burst wiping the downstream wire.
    BurstDown,
    /// A 120-frame burst wiping the upstream wire.
    BurstUp,
    /// A 3000-frame upstream blackout: every ACK (and read datum) is
    /// lost for 6 µs — shorter than the op timeout, so replay alone
    /// must recover it.
    AckStarvation,
    /// Bernoulli noise while ~24 reads are pipelined at once, keeping
    /// the replay buffers under pressure from many in-flight tags.
    ReplayPressure,
    /// A 30 µs downstream blackout — longer than the 20 µs op timeout,
    /// so the first attempt times out, the tag is quarantined and a
    /// backed-off retry completes the operation.
    TimeoutRetry,
    /// A 120 µs blackout of both wires — outlasts every retry, forcing
    /// escalation to a full link retrain before traffic recovers.
    RetrainLadder,
    /// Both wires corrupt every frame forever: the ladder must end in
    /// a typed timeout with every tag reclaimed, not a hang or panic.
    DeadLink,
    /// Link training itself is flaky (50% pattern-lock probability);
    /// functional traffic afterwards is clean.
    TrainingFlaky,
}

impl Scenario {
    /// Every scenario, in campaign order.
    pub fn all() -> [Scenario; 12] {
        [
            Scenario::Clean,
            Scenario::BernoulliDown,
            Scenario::BernoulliUp,
            Scenario::BernoulliBoth,
            Scenario::BurstDown,
            Scenario::BurstUp,
            Scenario::AckStarvation,
            Scenario::ReplayPressure,
            Scenario::TimeoutRetry,
            Scenario::RetrainLadder,
            Scenario::DeadLink,
            Scenario::TrainingFlaky,
        ]
    }

    /// Stable display name (also the table key).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::BernoulliDown => "bernoulli-down",
            Scenario::BernoulliUp => "bernoulli-up",
            Scenario::BernoulliBoth => "bernoulli-both",
            Scenario::BurstDown => "burst-down",
            Scenario::BurstUp => "burst-up",
            Scenario::AckStarvation => "ack-starvation",
            Scenario::ReplayPressure => "replay-pressure",
            Scenario::TimeoutRetry => "timeout-retry",
            Scenario::RetrainLadder => "retrain-ladder",
            Scenario::DeadLink => "dead-link",
            Scenario::TrainingFlaky => "training-flaky",
        }
    }

    /// Whether a typed error is an acceptable end state. A dead link
    /// *must* fail (that is the point); a flaky trainer may exhaust
    /// its attempt budget for some seeds.
    pub fn may_fail(self) -> bool {
        matches!(self, Scenario::DeadLink | Scenario::TrainingFlaky)
    }
}

/// How a single run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Fault-free data path: no replays, retries or retrains needed.
    Pass,
    /// Data intact, but the recovery machinery (replay, retry or
    /// retrain) had to act.
    Degraded,
    /// The run ended in a typed error.
    Fail(DmiError),
    /// A read returned bytes that differ from what was written.
    Corrupt {
        /// Number of mismatching lines.
        mismatches: u64,
    },
    /// The run panicked — always a campaign violation.
    Panicked(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Pass => write!(f, "pass"),
            Outcome::Degraded => write!(f, "degraded"),
            Outcome::Fail(e) => write!(f, "fail: {e}"),
            Outcome::Corrupt { mismatches } => write!(f, "CORRUPT ({mismatches} lines)"),
            Outcome::Panicked(msg) => write!(f, "PANIC: {msg}"),
        }
    }
}

/// The record of one scenario × seed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario that ran.
    pub scenario: Scenario,
    /// Seed that parameterized its fault pattern.
    pub seed: u64,
    /// Classified end state.
    pub outcome: Outcome,
    /// Retries the channel scheduled.
    pub retries: u64,
    /// Link retrains the channel escalated to.
    pub retrains: u64,
    /// Tags reclaimed from quarantine or retrain flushes.
    pub reclaimed: u64,
    /// Replays triggered on either wire.
    pub replays: u64,
    /// CRC errors observed on either wire.
    pub crc_errors: u64,
    /// Trace fingerprint — byte-identical across same-seed runs.
    pub fingerprint: u64,
    /// Free tags after the run settled (32 = nothing leaked).
    pub tags_free_after: usize,
    /// Same-seed rerun matched (fingerprint and outcome).
    pub deterministic: bool,
    /// Full metrics snapshot for `--metrics` aggregation.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Whether this run violates the campaign's invariants.
    pub fn is_violation(&self) -> bool {
        if !self.deterministic {
            return true;
        }
        match &self.outcome {
            Outcome::Pass | Outcome::Degraded => false,
            Outcome::Fail(_) => !self.scenario.may_fail(),
            Outcome::Corrupt { .. } | Outcome::Panicked(_) => true,
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds swept per scenario.
    pub seeds: Vec<u64>,
    /// Lines written and read back per run.
    pub lines: u64,
}

impl CampaignConfig {
    /// The quick gate used by `scripts/verify.sh`: 3 seeds, 6 lines.
    pub fn smoke() -> Self {
        CampaignConfig {
            seeds: vec![1, 2, 3],
            lines: 6,
        }
    }

    /// The full sweep: 5 seeds, 12 lines per run.
    pub fn full() -> Self {
        CampaignConfig {
            seeds: (1..=5).collect(),
            lines: 12,
        }
    }
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every run, in scenario-major order.
    pub runs: Vec<RunReport>,
}

impl CampaignReport {
    /// Runs that break the no-panic / no-corruption / typed-failure
    /// contract.
    pub fn violations(&self) -> Vec<&RunReport> {
        self.runs.iter().filter(|r| r.is_violation()).collect()
    }

    /// All run metrics merged (counters accumulate).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for r in &self.runs {
            merged.merge(&r.metrics);
        }
        merged
    }

    /// Renders the pass/degrade/fail table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>4}  {:<10} {:>7} {:>8} {:>9} {:>8} {:>6} {:>4}  {:<16}\n",
            "scenario",
            "seed",
            "outcome",
            "retries",
            "retrains",
            "reclaimed",
            "replays",
            "crc",
            "det",
            "fingerprint"
        ));
        out.push_str(&"-".repeat(101));
        out.push('\n');
        for r in &self.runs {
            let outcome = match &r.outcome {
                Outcome::Fail(_) if !r.is_violation() => "fail*".to_string(),
                other => other.to_string(),
            };
            out.push_str(&format!(
                "{:<16} {:>4}  {:<10} {:>7} {:>8} {:>9} {:>8} {:>6} {:>4}  {:016x}\n",
                r.scenario.name(),
                r.seed,
                outcome,
                r.retries,
                r.retrains,
                r.reclaimed,
                r.replays,
                r.crc_errors,
                if r.deterministic { "yes" } else { "NO" },
                r.fingerprint,
            ));
        }
        let violations = self.violations().len();
        out.push_str(&format!(
            "\n{} runs, {} violations (fail* = typed failure, expected for the scenario)\n",
            self.runs.len(),
            violations
        ));
        out
    }
}

/// Builds the channel for one scenario run. Fault windows start at a
/// seed-jittered frame so the sweep probes different protocol phases.
fn channel_for(scenario: Scenario, seed: u64) -> DmiChannel {
    let mut cfg = ChannelConfig::contutto();
    let start = 200 + seed % 64;
    let window = |frames: u64| -> BitErrorInjector {
        BitErrorInjector::at_frames((start..start + frames).collect())
    };
    match scenario {
        Scenario::Clean | Scenario::TrainingFlaky => {}
        Scenario::BernoulliDown => {
            cfg.down_errors = BitErrorInjector::bernoulli(0.02, seed);
        }
        Scenario::BernoulliUp => {
            cfg.up_errors = BitErrorInjector::bernoulli(0.02, seed.wrapping_add(1));
        }
        Scenario::BernoulliBoth => {
            cfg.down_errors = BitErrorInjector::bernoulli(0.01, seed.wrapping_mul(2));
            cfg.up_errors = BitErrorInjector::bernoulli(0.01, seed.wrapping_mul(2) + 1);
        }
        Scenario::BurstDown => cfg.down_errors = window(120),
        Scenario::BurstUp => cfg.up_errors = window(120),
        Scenario::AckStarvation => cfg.up_errors = window(3000),
        Scenario::ReplayPressure => {
            cfg.down_errors = BitErrorInjector::bernoulli(0.02, seed.wrapping_mul(3));
            cfg.up_errors = BitErrorInjector::bernoulli(0.02, seed.wrapping_mul(3) + 1);
        }
        Scenario::TimeoutRetry => cfg.down_errors = window(15_000),
        Scenario::RetrainLadder => {
            cfg.down_errors = window(60_000);
            cfg.up_errors = window(60_000);
        }
        Scenario::DeadLink => {
            cfg.down_errors = BitErrorInjector::bernoulli(1.0, seed);
            cfg.up_errors = BitErrorInjector::bernoulli(1.0, seed.wrapping_add(1));
        }
    }
    let mut ch = DmiChannel::new(
        cfg,
        Box::new(ConTutto::new(
            ContuttoConfig::base(),
            MemoryPopulation::dram_8gb(),
        )),
    );
    ch.set_retry_policy(campaign_policy());
    ch
}

/// The workload: write `lines` patterned cache lines, read each back
/// and compare. Returns (mismatches, first typed error).
fn serial_workload(ch: &mut DmiChannel, seed: u64, lines: u64) -> (u64, Option<DmiError>) {
    let mut mismatches = 0;
    for i in 0..lines {
        let addr = i * 128;
        let line = CacheLine::patterned(seed.wrapping_mul(1000) + i);
        if let Err(e) = ch.write_line_blocking(addr, line) {
            return (mismatches, Some(e));
        }
        match ch.read_line_blocking(addr) {
            Ok((back, _)) if back == line => {}
            Ok(_) => mismatches += 1,
            Err(e) => return (mismatches, Some(e)),
        }
    }
    (mismatches, None)
}

/// The replay-pressure phase: fill the tag pool with pipelined reads
/// over already-written lines and match completions back by tag.
fn pipelined_workload(ch: &mut DmiChannel, seed: u64, lines: u64) -> (u64, Option<DmiError>) {
    let mut expect: BTreeMap<u8, (u64, CacheLine)> = BTreeMap::new();
    let inflight = lines.min(24);
    for i in 0..inflight {
        let addr = i * 128;
        let line = CacheLine::patterned(seed.wrapping_mul(1000) + (i % lines));
        match ch.submit(CommandOp::Read { addr }) {
            Ok(tag) => {
                expect.insert(tag.raw(), (addr, line));
            }
            Err(e) => return (0, Some(e)),
        }
    }
    let mut mismatches = 0;
    for _ in 0..inflight {
        let deadline = ch.now() + campaign_policy().op_timeout;
        match ch.next_completion(deadline) {
            Some(c) => {
                let Some((_, want)) = expect.remove(&c.tag.raw()) else {
                    mismatches += 1;
                    continue;
                };
                if c.data != Some(want) {
                    mismatches += 1;
                }
            }
            None => {
                return (
                    mismatches,
                    Some(DmiError::Timeout {
                        tag: 0xFF,
                        waited: campaign_policy().op_timeout,
                    }),
                );
            }
        }
    }
    (mismatches, None)
}

fn run_once(scenario: Scenario, seed: u64, lines: u64) -> RunReport {
    let result = catch_unwind(AssertUnwindSafe(move || {
        let mut ch = channel_for(scenario, seed);
        let tracer = ch.enable_tracing(1 << 15);
        let train_error = if scenario == Scenario::TrainingFlaky {
            ch.train(TrainerConfig::flaky(0.5), seed).err()
        } else {
            None
        };
        let (mut mismatches, mut error) = match train_error {
            Some(e) => (0, Some(e)),
            None => serial_workload(&mut ch, seed, lines),
        };
        if error.is_none() && scenario == Scenario::ReplayPressure {
            let (m, e) = pipelined_workload(&mut ch, seed, lines);
            mismatches += m;
            error = e;
        }
        // Settle past the quarantine TTL so timed-out tags age back
        // into the pool even when no late response ever arrives.
        let ttl = campaign_policy().op_timeout * 2 + SimTime::from_us(1);
        ch.run_until(ch.now() + ttl);
        let metrics = ch.metrics();
        let replays = metrics.counter("dmi.host.replays_triggered")
            + metrics.counter("dmi.buffer.replays_triggered");
        let crc_errors =
            metrics.counter("dmi.host.crc_errors") + metrics.counter("dmi.buffer.crc_errors");
        let recovered = ch.retries_scheduled() + ch.link_retrains() + replays;
        let outcome = if mismatches > 0 {
            Outcome::Corrupt { mismatches }
        } else if let Some(e) = error {
            Outcome::Fail(e)
        } else if recovered > 0 {
            Outcome::Degraded
        } else {
            Outcome::Pass
        };
        RunReport {
            scenario,
            seed,
            outcome,
            retries: ch.retries_scheduled(),
            retrains: ch.link_retrains(),
            reclaimed: ch.tags_reclaimed(),
            replays,
            crc_errors,
            fingerprint: tracer.fingerprint(),
            tags_free_after: ch.tags_available(),
            deterministic: true,
            metrics,
        }
    }));
    result.unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        RunReport {
            scenario,
            seed,
            outcome: Outcome::Panicked(msg),
            retries: 0,
            retrains: 0,
            reclaimed: 0,
            replays: 0,
            crc_errors: 0,
            fingerprint: 0,
            tags_free_after: 0,
            deterministic: true,
            metrics: MetricsRegistry::new(),
        }
    })
}

/// Runs one scenario at one seed — twice, because byte-identical
/// same-seed traces are part of the contract: a divergence marks the
/// run non-deterministic, which is always a violation. Panics are
/// caught so a regression in the recovery machinery shows up as a
/// `Panicked` row rather than aborting the campaign.
pub fn run_scenario(scenario: Scenario, seed: u64, lines: u64) -> RunReport {
    let (mut report, deterministic) = crate::harness::run_twice_assert_identical(
        || run_once(scenario, seed, lines),
        |a, b| a.fingerprint == b.fingerprint && a.outcome == b.outcome,
    );
    report.deterministic = deterministic;
    report
}

/// Runs every scenario across every seed.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut runs = Vec::new();
    for scenario in Scenario::all() {
        for &seed in &cfg.seeds {
            runs.push(run_scenario(scenario, seed, cfg.lines));
        }
    }
    CampaignReport { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_passes_with_full_tag_pool() {
        let r = run_scenario(Scenario::Clean, 1, 4);
        assert_eq!(r.outcome, Outcome::Pass);
        assert_eq!(r.tags_free_after, 32);
        assert!(!r.is_violation());
    }

    #[test]
    fn dead_link_fails_typed_and_reclaims_tags() {
        let r = run_scenario(Scenario::DeadLink, 1, 2);
        assert!(
            matches!(r.outcome, Outcome::Fail(DmiError::Timeout { .. })),
            "{:?}",
            r.outcome
        );
        assert!(!r.is_violation(), "dead link may fail");
        assert_eq!(r.tags_free_after, 32, "no leaked tags");
        assert!(r.reclaimed > 0 || r.retrains > 0);
    }

    #[test]
    fn smoke_campaign_has_no_violations() {
        let report = run_campaign(&CampaignConfig {
            seeds: vec![1],
            lines: 3,
        });
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "{}",
            report
                .violations()
                .iter()
                .map(|r| format!("{} seed {}: {}", r.scenario.name(), r.seed, r.outcome))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn same_seed_reruns_are_fingerprint_identical() {
        let a = run_scenario(Scenario::TimeoutRetry, 2, 3);
        let b = run_scenario(Scenario::TimeoutRetry, 2, 3);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.outcome, b.outcome);
    }
}
