//! Design-choice ablations from paper §3.3: the clock-crossing-FIFO
//! bypass, the 4-to-2-stage CRC reduction (both gate the FRTL limit),
//! the replay path under injected errors, and raw channel throughput.

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

use contutto_bench::contutto_channel;
use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
use contutto_dmi::command::CommandOp;
use contutto_dmi::link::BitErrorInjector;
use contutto_dmi::training::{LinkTrainer, TrainerConfig};
use contutto_dmi::DmiBuffer;
use contutto_power8::channel::{ChannelConfig, DmiChannel};
use contutto_power8::firmware::P8_MAX_FRTL_BUS_CYCLES;
use contutto_power8::latency::read_throughput_lines_per_sec;

fn bench_frtl_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("frtl_design_ablation");
    group.bench_function("optimized_vs_naive_frtl", |b| {
        b.iter(|| {
            let opt = ConTutto::new(ContuttoConfig::base(), MemoryPopulation::dram_8gb());
            let naive = ConTutto::new(ContuttoConfig::naive(), MemoryPopulation::dram_8gb());
            // The design story: the naive FPGA misses the FRTL budget.
            let cfg = TrainerConfig {
                max_frtl_bus_cycles: P8_MAX_FRTL_BUS_CYCLES,
                ..TrainerConfig::default()
            };
            let opt_ok = LinkTrainer::new(cfg.clone(), 1)
                .train(opt.frtl_turnaround() + contutto_sim::SimTime::from_ns(8))
                .is_ok();
            let naive_ok = LinkTrainer::new(cfg, 1)
                .train(naive.frtl_turnaround() + contutto_sim::SimTime::from_ns(8))
                .is_ok();
            assert!(opt_ok && !naive_ok);
            (opt_ok, naive_ok)
        })
    });
    group.finish();
}

fn bench_replay_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_overhead");
    group.sample_size(10);
    group.bench_function("clean_channel_64_reads", |b| {
        b.iter(|| {
            let mut ch = contutto_channel(ContuttoConfig::base());
            read_throughput_lines_per_sec(&mut ch, 64)
        })
    });
    group.bench_function("noisy_channel_64_reads", |b| {
        b.iter(|| {
            let mut cfg = ChannelConfig::contutto();
            cfg.down_errors = BitErrorInjector::bernoulli(0.005, 3);
            let mut ch = DmiChannel::new(
                cfg,
                Box::new(ConTutto::new(
                    ContuttoConfig::base(),
                    MemoryPopulation::dram_8gb(),
                )),
            );
            read_throughput_lines_per_sec(&mut ch, 64)
        })
    });
    group.finish();
}

fn bench_tag_throttling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tag_throttling");
    group.sample_size(10);
    group.bench_function("pipelined_256_reads_base", |b| {
        b.iter(|| {
            let mut ch = contutto_channel(ContuttoConfig::base());
            let mut done = 0;
            for i in 0..32u64 {
                ch.submit(CommandOp::Read { addr: i * 128 }).unwrap();
            }
            let deadline = ch.now() + contutto_sim::SimTime::from_ms(10);
            while done < 32 {
                ch.next_completion(deadline).unwrap();
                done += 1;
            }
            ch.now()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_frtl_ablation,
    bench_replay_overhead,
    bench_tag_throttling
);
criterion_main!(benches);
