//! Bench for **Figures 6 & 7**: the SPEC CINT2006 latency-sensitivity
//! sweeps, end to end (probe measurement + model evaluation).

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_figures");
    group.sample_size(10);
    group.bench_function("figure6_centaur_sweep", |b| b.iter(contutto_bench::figure6));
    group.bench_function("figure7_contutto_sweep", |b| {
        b.iter(contutto_bench::figure7)
    });
    group.bench_function("figure7_summary", |b| {
        b.iter(contutto_bench::figure7_summary)
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
