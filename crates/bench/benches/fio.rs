//! Bench for **Figures 9 & 10**: FIO random reads/writes per device
//! and attach point (the memory-bus devices run through the full
//! simulated DMI stack).

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

use contutto_storage::blockdev::{mram_contutto_device, PcieCard};
use contutto_workloads::fio::{FioEngine, FioPattern};

fn engine() -> FioEngine {
    FioEngine {
        ops: 16,
        ..FioEngine::default()
    }
}

fn bench_fio(c: &mut Criterion) {
    let mut group = c.benchmark_group("fio_figures9_10");
    group.sample_size(10);
    group.bench_function("mram_contutto_randread", |b| {
        b.iter(|| {
            let mut dev = mram_contutto_device();
            engine().run(&mut dev, FioPattern::RandRead)
        })
    });
    group.bench_function("mram_contutto_randwrite", |b| {
        b.iter(|| {
            let mut dev = mram_contutto_device();
            engine().run(&mut dev, FioPattern::RandWrite)
        })
    });
    group.bench_function("nvram_pcie_randread", |b| {
        b.iter(|| {
            let mut dev = PcieCard::nvram();
            engine().run(&mut dev, FioPattern::RandRead)
        })
    });
    group.bench_function("flash_x4_pcie_randread", |b| {
        b.iter(|| {
            let mut dev = PcieCard::flash_x4();
            engine().run(&mut dev, FioPattern::RandRead)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fio);
criterion_main!(benches);
