//! Bench for **Table 5**: the three near-memory accelerated functions
//! (memcpy, min/max, FFT) against their software baselines.

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

use contutto_core::accel::block::{BlockAccelDriver, BlockOp, ControlBlock};
use contutto_core::accel::fft::Complex32;
use contutto_core::avalon::AvalonBus;
use contutto_core::memctl::{MemoryController, MemoryKind};
use contutto_sim::SimTime;
use contutto_workloads::baseline::SoftwareBaselines;

fn bus() -> AvalonBus {
    AvalonBus::new(
        vec![
            MemoryController::new(MemoryKind::Ddr3Dram, 1 << 30),
            MemoryController::new(MemoryKind::Ddr3Dram, 1 << 30),
        ],
        5,
    )
}

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_table5");
    group.sample_size(10);
    let size: u64 = 8 << 20;
    group.bench_function("contutto_memcpy", |b| {
        b.iter(|| {
            let mut avalon = bus();
            BlockAccelDriver
                .execute(
                    &mut avalon,
                    ControlBlock::new(BlockOp::Memcpy {
                        src: 0,
                        dst: 1 << 29,
                        len: size,
                    }),
                    SimTime::ZERO,
                )
                .unwrap()
        })
    });
    group.bench_function("contutto_minmax", |b| {
        b.iter(|| {
            let mut avalon = bus();
            BlockAccelDriver
                .execute(
                    &mut avalon,
                    ControlBlock::new(BlockOp::MinMax { addr: 0, len: size }),
                    SimTime::ZERO,
                )
                .unwrap()
        })
    });
    group.bench_function("contutto_fft", |b| {
        b.iter(|| {
            let mut avalon = bus();
            BlockAccelDriver
                .execute(
                    &mut avalon,
                    ControlBlock::new(BlockOp::Fft {
                        src: 0,
                        dst: 1 << 29,
                        len: 1 << 20,
                    }),
                    SimTime::ZERO,
                )
                .unwrap()
        })
    });
    group.bench_function("software_memcpy", |b| {
        let src = vec![1u8; 1 << 20];
        let mut dst = vec![0u8; 1 << 20];
        b.iter(|| SoftwareBaselines.memcpy(&src, &mut dst))
    });
    group.bench_function("software_minmax", |b| {
        let values: Vec<u32> = (0..1 << 18)
            .map(|i| i as u32 * 2654435761u32.wrapping_mul(1))
            .collect();
        b.iter(|| SoftwareBaselines.minmax(&values))
    });
    group.bench_function("software_fft", |b| {
        b.iter(|| {
            let mut samples = vec![Complex32::default(); 8192];
            SoftwareBaselines.fft_blocks(&mut samples)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
