//! Bench for **Table 1**: assembling the per-block FPGA resource
//! inventory and its utilization percentages.

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_resource_report", |b| {
        b.iter(|| {
            let report = contutto_bench::table1();
            let total = report.total();
            (
                total,
                total.percent_of_device(),
                report.headroom_alm_fraction(),
            )
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
