//! Bench for **Table 4**: the GPFS write-cache experiment across the
//! three persistent stores.

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

use contutto_storage::blockdev::{SasHdd, SasSsd};
use contutto_workloads::gpfs::GpfsExperiment;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpfs_table4");
    group.sample_size(10);
    let exp = GpfsExperiment {
        writes: 16,
        ..GpfsExperiment::default()
    };
    group.bench_function("hdd_direct", |b| {
        b.iter(|| exp.run_direct(&mut SasHdd::new()))
    });
    group.bench_function("ssd_direct", |b| {
        b.iter(|| exp.run_direct(&mut SasSsd::new()))
    });
    group.bench_function("full_table4", |b| b.iter(|| exp.table4()));
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
