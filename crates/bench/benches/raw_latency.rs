//! Bench for **Table 3** (and Table 2's latency column): the
//! dependent-load latency probe across buffer configurations, plus the
//! full knob sweep as an ablation.

use contutto_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use contutto_bench::{centaur_channel, contutto_channel};
use contutto_centaur::CentaurConfig;
use contutto_core::ContuttoConfig;
use contutto_power8::latency::{LatencyProbe, MeasurementLevel};

fn probe() -> LatencyProbe {
    LatencyProbe {
        iterations: 32,
        ..LatencyProbe::default()
    }
}

fn bench_table3_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_latency_probe");
    group.sample_size(10);
    group.bench_function("centaur_optimized", |b| {
        b.iter(|| {
            let mut ch = centaur_channel(CentaurConfig::optimized());
            probe().measure(&mut ch, MeasurementLevel::Software)
        })
    });
    group.bench_function("centaur_matched", |b| {
        b.iter(|| {
            let mut ch = centaur_channel(CentaurConfig::contutto_matched());
            probe().measure(&mut ch, MeasurementLevel::Software)
        })
    });
    group.bench_function("contutto_base", |b| {
        b.iter(|| {
            let mut ch = contutto_channel(ContuttoConfig::base());
            probe().measure(&mut ch, MeasurementLevel::Software)
        })
    });
    group.finish();
}

fn bench_knob_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("knob_sweep_ablation");
    group.sample_size(10);
    for knob in 0..=7u8 {
        group.bench_with_input(BenchmarkId::from_parameter(knob), &knob, |b, &knob| {
            b.iter(|| {
                let mut ch = contutto_channel(ContuttoConfig::with_knob(knob));
                probe().measure(&mut ch, MeasurementLevel::Software)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3_configs, bench_knob_sweep);
criterion_main!(benches);
