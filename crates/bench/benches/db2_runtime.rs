//! Bench for **Table 2**: measured Centaur latencies driving the DB2
//! BLU 29-query runtime model.

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

use contutto_sim::SimTime;
use contutto_workloads::db2::Db2Workload;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("db2_table2");
    group.sample_size(10);
    group.bench_function("full_table2", |b| b.iter(contutto_bench::table2));
    let workload = Db2Workload::paper_suite();
    group.bench_function("suite_model_only", |b| {
        b.iter(|| workload.total_seconds(SimTime::from_ns(249)))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
