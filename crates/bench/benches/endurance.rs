//! Bench for **Figure 8**: the endurance dataset plus a functional
//! wear-out stress on the flash model (the reason flash cannot live on
//! the memory bus).

use contutto_bench::harness::{criterion_group, criterion_main, Criterion};

use contutto_memdev::flash::{FlashConfig, NandFlash};
use contutto_sim::SimTime;

fn bench_figure8(c: &mut Criterion) {
    let mut group = c.benchmark_group("endurance_figure8");
    group.bench_function("dataset", |b| b.iter(contutto_bench::figure8));
    group.bench_function("flash_wearout_stress", |b| {
        b.iter(|| {
            let cfg = FlashConfig {
                endurance_cycles: 50,
                ..FlashConfig::mlc()
            };
            let mut flash = NandFlash::new(1 << 20, cfg);
            let mut cycles = 0u64;
            loop {
                if flash.erase_block(SimTime::ZERO, 0).is_err() {
                    break;
                }
                cycles += 1;
            }
            cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
