//! The Centaur buffer chip model.
//!
//! Implements [`DmiBuffer`]: parses downstream command/data payloads,
//! executes reads/writes/RMWs against four DDR ports (line-interleaved
//! [`Dram`] devices) through the eDRAM cache, and queues upstream
//! read-data beats and done notifications.
//!
//! Timing: each command pays `rx_latency` (PHY + MBI + decode) and any
//! configured `extra_command_delay` before touching the cache/DRAM,
//! and `tx_latency` before its response reaches the upstream
//! serializer. The cache converts DRAM-array time into
//! `cache_hit_latency` on hits.

use std::collections::{HashMap, VecDeque};

use contutto_dmi::buffer::DmiBuffer;
use contutto_dmi::command::{CacheLine, Tag, CACHE_LINE_BYTES};
use contutto_dmi::frame::{
    line_to_upstream_beats, CommandHeader, DownstreamPayload, LineAssembler, UpstreamPayload,
};
use contutto_memdev::{range_ok, DdrTimings, Dram, MemoryDevice, RasCounters, ReadOutcome};
use contutto_sim::snapshot::{self, Persist, SnapReader};
use contutto_sim::{MetricsRegistry, SimTime, TraceEvent, Tracer};

use crate::cache::EdramCache;
use crate::config::CentaurConfig;

/// Number of DDR ports per Centaur (paper §2.1).
pub const DDR_PORTS: usize = 4;

/// Cumulative Centaur statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CentaurStats {
    /// Read commands executed.
    pub reads: u64,
    /// Write commands executed.
    pub writes: u64,
    /// Read-modify-write commands executed.
    pub rmws: u64,
    /// Commands Centaur has no hardware for (e.g. ConTutto's flush) —
    /// completed as no-ops but flagged.
    pub unsupported: u64,
    /// Done pairs packed into a single upstream frame.
    pub coalesced_dones: u64,
    /// Demand reads whose line needed (successful) ECC correction.
    pub corrected_reads: u64,
    /// Demand reads answered with the poison bit set (uncorrectable).
    pub poisoned_reads: u64,
    /// RMWs whose read-half hit a poisoned line; the merge is dropped
    /// rather than laundering the poison into a fresh write.
    pub poisoned_rmws: u64,
    /// WriteData frames that arrived for an idle/unknown tag (late
    /// delivery after a retrain, or decode aliasing) and were dropped.
    pub frames_orphaned: u64,
}

#[derive(Debug)]
struct PendingWrite {
    header: CommandHeader,
    assembler: LineAssembler,
}

/// The Centaur memory-buffer ASIC.
///
/// # Example
///
/// ```
/// use contutto_centaur::{Centaur, CentaurConfig};
/// use contutto_dmi::DmiBuffer;
///
/// let c = Centaur::new(CentaurConfig::optimized(), 8 << 30);
/// assert_eq!(c.name(), "centaur-optimized");
/// assert!(c.frtl_turnaround().as_ns() < 20);
/// ```
#[derive(Debug)]
pub struct Centaur {
    cfg: CentaurConfig,
    cache: EdramCache,
    ports: Vec<Dram>,
    port_capacity: u64,
    pending_writes: HashMap<Tag, PendingWrite>,
    ready: VecDeque<(SimTime, UpstreamPayload)>,
    stats: CentaurStats,
    tracer: Tracer,
}

impl Centaur {
    /// Creates a Centaur with `capacity` bytes of DRAM spread over its
    /// four DDR ports.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a positive multiple of
    /// `4 * 128` bytes.
    pub fn new(cfg: CentaurConfig, capacity: u64) -> Self {
        assert!(
            capacity > 0 && capacity.is_multiple_of(DDR_PORTS as u64 * CACHE_LINE_BYTES as u64),
            "capacity must be a multiple of ports x line size"
        );
        let port_capacity = capacity / DDR_PORTS as u64;
        let mut cache = EdramCache::centaur();
        cache.set_prefetch_degree(cfg.prefetch_degree);
        Centaur {
            cfg,
            cache,
            ports: (0..DDR_PORTS)
                .map(|_| Dram::new(port_capacity, DdrTimings::ddr3_1600()))
                .collect(),
            port_capacity,
            pending_writes: HashMap::new(),
            ready: VecDeque::new(),
            stats: CentaurStats::default(),
            tracer: Tracer::off(),
        }
    }

    /// Total DRAM capacity behind this buffer.
    pub fn capacity_bytes(&self) -> u64 {
        self.port_capacity * DDR_PORTS as u64
    }

    /// Statistics so far.
    pub fn stats(&self) -> CentaurStats {
        self.stats
    }

    /// Cache statistics (hits/misses/prefetch fills).
    pub fn cache(&self) -> &EdramCache {
        &self.cache
    }

    /// The active configuration.
    pub fn config(&self) -> &CentaurConfig {
        &self.cfg
    }

    fn route(&self, addr: u64) -> (usize, u64) {
        let line = addr / CACHE_LINE_BYTES as u64;
        let port = (line % DDR_PORTS as u64) as usize;
        let local_line = line / DDR_PORTS as u64;
        (
            port,
            local_line * CACHE_LINE_BYTES as u64 + addr % CACHE_LINE_BYTES as u64,
        )
    }

    fn read_line(&mut self, start: SimTime, addr: u64) -> (CacheLine, SimTime, ReadOutcome) {
        let (port, local) = self.route(addr);
        let mut line = CacheLine::ZERO;
        if self.cfg.cache_enabled && self.cache.access(addr) {
            self.tracer.record(TraceEvent::CacheHit { addr });
            // Cache hits serve the verified-at-fill copy; the eDRAM
            // array itself is assumed protected, so the hit is clean.
            self.ports[port].peek(local, &mut line.0);
            (line, start + self.cfg.cache_hit_latency, ReadOutcome::Clean)
        } else {
            if self.cfg.cache_enabled {
                self.tracer.record(TraceEvent::CacheMiss { addr });
            }
            let result = self.ports[port].read(start, local, &mut line.0);
            match result.outcome {
                ReadOutcome::Clean => {}
                ReadOutcome::Corrected { bits } => {
                    self.stats.corrected_reads += 1;
                    self.tracer.record(TraceEvent::EccCorrected { addr, bits });
                }
                ReadOutcome::Uncorrectable => {
                    self.tracer.record(TraceEvent::EccUncorrectable { addr });
                }
            }
            (line, result.done, result.outcome)
        }
    }

    fn write_line(&mut self, start: SimTime, addr: u64, line: &CacheLine) -> SimTime {
        let (port, local) = self.route(addr);
        if self.cfg.cache_enabled {
            // Write-allocate so subsequent reads hit.
            self.cache.fill(addr);
        }
        self.ports[port].write(start, local, &line.0)
    }

    fn complete_read(&mut self, start: SimTime, tag: Tag, addr: u64) {
        self.stats.reads += 1;
        self.tracer.record(TraceEvent::DeviceRead { addr });
        let (line, data_ready, outcome) = self.read_line(start, addr);
        let poison = outcome.is_uncorrectable();
        if poison {
            self.stats.poisoned_reads += 1;
        }
        let respond_at = data_ready + self.cfg.tx_latency;
        for beat in line_to_upstream_beats(tag, &line, poison) {
            self.ready.push_back((respond_at, beat));
        }
        self.ready.push_back((
            respond_at,
            UpstreamPayload::Done {
                first: tag,
                second: None,
            },
        ));
    }

    fn complete_write(&mut self, start: SimTime, tag: Tag, header: CommandHeader, line: CacheLine) {
        let done = match header {
            CommandHeader::Write { addr } => {
                self.stats.writes += 1;
                self.tracer.record(TraceEvent::DeviceWrite { addr });
                self.write_line(start, addr, &line)
            }
            CommandHeader::Rmw { addr, op } => {
                self.stats.rmws += 1;
                self.tracer.record(TraceEvent::DeviceWrite { addr });
                let (current, read_done, outcome) = self.read_line(start, addr);
                if outcome.is_uncorrectable() {
                    // Do not merge against poisoned data; the line
                    // stays poisoned in the media so reads stay loud.
                    self.stats.poisoned_rmws += 1;
                    read_done
                } else {
                    let merged = op.apply(current, line);
                    self.write_line(read_done, addr, &merged)
                }
            }
            // A data-carrying assembly completed against a read-class
            // header: decode aliasing slipped a WriteData stream onto
            // a tag that never asked for one. Drop the data loudly and
            // still complete the tag so the channel does not hang on a
            // done that would otherwise never come.
            CommandHeader::Read { .. } | CommandHeader::Flush => {
                self.stats.frames_orphaned += 1;
                self.tracer
                    .record(TraceEvent::FrameOrphaned { tag: tag.raw() });
                start
            }
        };
        self.ready.push_back((
            done + self.cfg.tx_latency,
            UpstreamPayload::Done {
                first: tag,
                second: None,
            },
        ));
    }
}

impl DmiBuffer for Centaur {
    fn push_downstream(&mut self, now: SimTime, payload: DownstreamPayload) {
        let start = now + self.cfg.rx_latency + self.cfg.extra_command_delay;
        match payload {
            DownstreamPayload::Idle | DownstreamPayload::Control(_) => {}
            DownstreamPayload::Command { tag, header } => match header {
                CommandHeader::Read { addr } => self.complete_read(start, tag, addr),
                CommandHeader::Write { .. } | CommandHeader::Rmw { .. } => {
                    self.pending_writes.insert(
                        tag,
                        PendingWrite {
                            header,
                            assembler: LineAssembler::downstream(),
                        },
                    );
                }
                CommandHeader::Flush => {
                    // Paper §4.2: "this functionality does not exist in
                    // the Centaur ASIC". Complete as a no-op, flagged.
                    self.stats.unsupported += 1;
                    self.ready.push_back((
                        start + self.cfg.tx_latency,
                        UpstreamPayload::Done {
                            first: tag,
                            second: None,
                        },
                    ));
                }
            },
            DownstreamPayload::WriteData { tag, beat, data } => {
                // Data for an idle tag is a stale frame (late delivery
                // after a retrain, or decode aliasing): drop and flag —
                // the originating command was already reclaimed.
                let Some(pending) = self.pending_writes.get_mut(&tag) else {
                    self.stats.frames_orphaned += 1;
                    self.tracer
                        .record(TraceEvent::FrameOrphaned { tag: tag.raw() });
                    return;
                };
                match pending.assembler.try_add_beat(beat, &data) {
                    Ok(true) => {
                        if let Some(pending) = self.pending_writes.remove(&tag) {
                            let line = pending.assembler.into_line();
                            self.complete_write(start, tag, pending.header, line);
                        }
                    }
                    Ok(false) => {}
                    // An impossible beat index or size (decode aliasing
                    // past the frame-level checks): drop loudly rather
                    // than corrupting the assembly.
                    Err(_) => {
                        self.stats.frames_orphaned += 1;
                        self.tracer
                            .record(TraceEvent::FrameOrphaned { tag: tag.raw() });
                    }
                }
            }
        }
    }

    fn pull_upstream(&mut self, now: SimTime) -> Option<UpstreamPayload> {
        let ready_now = matches!(self.ready.front(), Some((t, _)) if *t <= now);
        if !ready_now {
            return None;
        }
        let (_, first) = self.ready.pop_front()?;
        // Pack two ready dones into one frame, as the upstream format
        // allows (paper §3.3(iii)).
        if let UpstreamPayload::Done {
            first: tag_a,
            second: None,
        } = first
        {
            if let Some((t, UpstreamPayload::Done { second: None, .. })) = self.ready.front() {
                if *t <= now {
                    if let Some((_, UpstreamPayload::Done { first: tag_b, .. })) =
                        self.ready.pop_front()
                    {
                        self.stats.coalesced_dones += 1;
                        return Some(UpstreamPayload::Done {
                            first: tag_a,
                            second: Some(tag_b),
                        });
                    }
                }
            }
            return Some(first);
        }
        Some(first)
    }

    fn frtl_turnaround(&self) -> SimTime {
        self.cfg.rx_latency + self.cfg.tx_latency
    }

    fn name(&self) -> &str {
        self.cfg.name
    }

    fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn sideband_read_line(&mut self, now: SimTime, addr: u64) -> Option<([u8; 128], bool)> {
        // The sideband takes external addresses (maintenance tools,
        // fault reproducers): refuse out-of-range instead of letting
        // the device's range assertion abort the process.
        if !range_ok(self.capacity_bytes(), addr, CACHE_LINE_BYTES) {
            return None;
        }
        let (port, local) = self.route(addr);
        Some(self.ports[port].sideband_read_line(now, local))
    }

    fn sideband_write_line(&mut self, addr: u64, data: &[u8; 128], poison: bool) -> bool {
        if !range_ok(self.capacity_bytes(), addr, CACHE_LINE_BYTES) {
            return false;
        }
        let (port, local) = self.route(addr);
        self.ports[port].sideband_write_line(local, data, poison);
        true
    }

    /// Centaur is fully volatile: the eDRAM cache, pending-write
    /// assemblies, response queue and all four DRAM ports lose their
    /// contents the instant the rail drops. (No `epow_flush` either —
    /// the flush extension "does not exist in the Centaur ASIC",
    /// paper §4.2; the default `power_restore` correctly reports
    /// `Volatile`.)
    fn power_cut(&mut self, now: SimTime) -> SimTime {
        for p in &mut self.ports {
            p.power_loss();
        }
        self.cache.invalidate_all();
        self.pending_writes.clear();
        self.ready.clear();
        now
    }

    fn snapshot_state(&self, out: &mut Vec<u8>) {
        self.cache.snapshot_state(out);
        (self.ports.len() as u64).persist(out);
        for port in &self.ports {
            port.snapshot_state(out);
        }
        let mut tags: Vec<Tag> = self.pending_writes.keys().copied().collect();
        tags.sort_by_key(|t| t.raw());
        (tags.len() as u64).persist(out);
        for tag in tags {
            let pending = &self.pending_writes[&tag];
            tag.persist(out);
            pending.header.persist(out);
            pending.assembler.persist(out);
        }
        (self.ready.len() as u64).persist(out);
        for (at, payload) in &self.ready {
            at.persist(out);
            payload.persist(out);
        }
        self.stats.reads.persist(out);
        self.stats.writes.persist(out);
        self.stats.rmws.persist(out);
        self.stats.unsupported.persist(out);
        self.stats.coalesced_dones.persist(out);
        self.stats.corrected_reads.persist(out);
        self.stats.poisoned_reads.persist(out);
        self.stats.poisoned_rmws.persist(out);
        self.stats.frames_orphaned.persist(out);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        self.cache.restore_state(r)?;
        let ports = r.len()?;
        if ports != self.ports.len() {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "centaur port count",
            });
        }
        for port in &mut self.ports {
            port.restore_state(r)?;
        }
        let n = r.len()?;
        let mut pending_writes = HashMap::with_capacity(n.min(256));
        for _ in 0..n {
            let tag = Tag::restore(r)?;
            let pending = PendingWrite {
                header: CommandHeader::restore(r)?,
                assembler: LineAssembler::restore(r)?,
            };
            if pending_writes.insert(tag, pending).is_some() {
                return Err(snapshot::RestoreError::Malformed {
                    context: "duplicate pending-write tag",
                });
            }
        }
        let n = r.len()?;
        let mut ready = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let at = SimTime::restore(r)?;
            ready.push_back((at, UpstreamPayload::restore(r)?));
        }
        let stats = CentaurStats {
            reads: r.u64()?,
            writes: r.u64()?,
            rmws: r.u64()?,
            unsupported: r.u64()?,
            coalesced_dones: r.u64()?,
            corrected_reads: r.u64()?,
            poisoned_reads: r.u64()?,
            poisoned_rmws: r.u64()?,
            frames_orphaned: r.u64()?,
        };
        self.pending_writes = pending_writes;
        self.ready = ready;
        self.stats = stats;
        Ok(())
    }

    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.reads"), self.stats.reads);
        registry.set_counter(&format!("{prefix}.writes"), self.stats.writes);
        registry.set_counter(&format!("{prefix}.rmws"), self.stats.rmws);
        registry.set_counter(&format!("{prefix}.unsupported"), self.stats.unsupported);
        registry.set_counter(
            &format!("{prefix}.frames_orphaned"),
            self.stats.frames_orphaned,
        );
        registry.set_counter(
            &format!("{prefix}.coalesced_dones"),
            self.stats.coalesced_dones,
        );
        registry.set_counter(&format!("{prefix}.cache.hits"), self.cache.hits());
        registry.set_counter(&format!("{prefix}.cache.misses"), self.cache.misses());
        registry.set_counter(
            &format!("{prefix}.cache.prefetch_fills"),
            self.cache.prefetch_fills(),
        );
        let mut media = RasCounters::default();
        for p in &self.ports {
            let c = p.ras_counters();
            media.demand_corrected += c.demand_corrected;
            media.demand_uncorrectable += c.demand_uncorrectable;
            media.scrub_corrected += c.scrub_corrected;
            media.scrub_uncorrectable += c.scrub_uncorrectable;
            media.scrub_passes += c.scrub_passes;
            media.pages_retired += c.pages_retired;
        }
        registry.set_counter(
            &format!("{prefix}.media.demand_corrected"),
            media.demand_corrected,
        );
        registry.set_counter(
            &format!("{prefix}.media.demand_uncorrectable"),
            media.demand_uncorrectable,
        );
        registry.set_counter(
            &format!("{prefix}.media.pages_retired"),
            media.pages_retired,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_dmi::command::RmwOp;
    use contutto_dmi::frame::line_to_downstream_beats;

    fn t(n: u8) -> Tag {
        Tag::new(n).unwrap()
    }

    fn centaur() -> Centaur {
        Centaur::new(CentaurConfig::optimized(), 1 << 30)
    }

    #[test]
    fn sideband_refuses_out_of_range_addresses() {
        let mut c = centaur();
        let cap = c.capacity_bytes();
        assert!(c.sideband_read_line(SimTime::ZERO, cap).is_none());
        assert!(c.sideband_read_line(SimTime::ZERO, u64::MAX - 64).is_none());
        assert!(!c.sideband_write_line(cap, &[0u8; 128], false));
        assert!(!c.sideband_write_line(u64::MAX - 64, &[0u8; 128], false));
        // In-range maintenance access still works.
        assert!(c.sideband_read_line(SimTime::ZERO, cap - 128).is_some());
    }

    /// Pushes a full write (command + 8 beats) starting at `now`, one
    /// beat per 2 ns frame slot. Returns the last push time.
    fn push_write(c: &mut Centaur, now: SimTime, tag: Tag, addr: u64, line: &CacheLine) -> SimTime {
        c.push_downstream(
            now,
            DownstreamPayload::Command {
                tag,
                header: CommandHeader::Write { addr },
            },
        );
        let mut at = now;
        for (i, beat) in line_to_downstream_beats(tag, line).into_iter().enumerate() {
            at = now + SimTime::from_ns(2) * (i as u64 + 1);
            c.push_downstream(at, beat);
        }
        at
    }

    fn drain_all(c: &mut Centaur, until: SimTime) -> Vec<(SimTime, UpstreamPayload)> {
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while now <= until {
            while let Some(p) = c.pull_upstream(now) {
                out.push((now, p));
            }
            now += SimTime::from_ns(2);
        }
        out
    }

    #[test]
    fn orphan_write_beat_is_dropped_not_fatal() {
        let mut c = centaur();
        let tracer = Tracer::ring(16);
        c.attach_tracer(tracer.clone());
        let line = CacheLine::patterned(7);
        // A stray data beat with no pending write: dropped and flagged.
        let beats = line_to_downstream_beats(t(9), &line);
        c.push_downstream(SimTime::ZERO, beats[0].clone());
        assert_eq!(c.stats().frames_orphaned, 1);
        assert_eq!(
            tracer.count_matching(|e| matches!(e, TraceEvent::FrameOrphaned { tag: 9 })),
            1
        );
        // Real traffic still completes afterwards.
        push_write(&mut c, SimTime::from_ns(100), t(0), 0x8000, &line);
        let resp = drain_all(&mut c, SimTime::from_us(2));
        assert!(resp
            .iter()
            .any(|(_, p)| matches!(p, UpstreamPayload::Done { .. })));
    }

    #[test]
    fn data_beats_against_a_read_header_complete_without_panicking() {
        // Decode aliasing in the worst case: a WriteData stream
        // assembles fully against a tag whose pending header is
        // read-class. The data must be dropped (orphan-flagged), the
        // tag must still get its Done, and no write may execute.
        let mut c = centaur();
        let tracer = Tracer::ring(16);
        c.attach_tracer(tracer.clone());
        c.pending_writes.insert(
            t(5),
            PendingWrite {
                header: CommandHeader::Read { addr: 0x2000 },
                assembler: LineAssembler::downstream(),
            },
        );
        let line = CacheLine::patterned(3);
        for (i, beat) in line_to_downstream_beats(t(5), &line)
            .into_iter()
            .enumerate()
        {
            c.push_downstream(SimTime::from_ns(2) * (i as u64), beat);
        }
        assert_eq!(c.stats().frames_orphaned, 1);
        assert_eq!(c.stats().writes, 0, "the stray data must not land");
        assert_eq!(
            tracer.count_matching(|e| matches!(e, TraceEvent::FrameOrphaned { tag: 5 })),
            1
        );
        let resp = drain_all(&mut c, SimTime::from_us(2));
        assert!(
            resp.iter()
                .any(|(_, p)| matches!(p, UpstreamPayload::Done { first, .. } if first.raw() == 5)),
            "the aliased tag still completes"
        );
    }

    #[test]
    fn empty_ready_queue_pull_is_none_not_fatal() {
        let mut c = centaur();
        assert!(c.pull_upstream(SimTime::from_us(1)).is_none());
    }

    #[test]
    fn malformed_beat_index_is_dropped_not_fatal() {
        let mut c = centaur();
        let tracer = Tracer::ring(16);
        c.attach_tracer(tracer.clone());
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(2),
                header: CommandHeader::Write { addr: 0x4000 },
            },
        );
        // Beat index past the 8-beat line: dropped loudly, the pending
        // write keeps waiting for real beats.
        c.push_downstream(
            SimTime::from_ns(2),
            DownstreamPayload::WriteData {
                tag: t(2),
                beat: 12,
                data: [0u8; 16],
            },
        );
        assert_eq!(c.stats().frames_orphaned, 1);
        assert_eq!(
            tracer.count_matching(|e| matches!(e, TraceEvent::FrameOrphaned { tag: 2 })),
            1
        );
        // The real beats still complete the write.
        let line = CacheLine::patterned(5);
        for (i, beat) in line_to_downstream_beats(t(2), &line)
            .into_iter()
            .enumerate()
        {
            c.push_downstream(SimTime::from_ns(4) + SimTime::from_ns(2) * (i as u64), beat);
        }
        let resp = drain_all(&mut c, SimTime::from_us(2));
        assert!(resp
            .iter()
            .any(|(_, p)| matches!(p, UpstreamPayload::Done { .. })));
        assert_eq!(c.stats().writes, 1);
    }

    #[test]
    fn power_cut_discards_everything() {
        use contutto_dmi::buffer::PowerRestoreOutcome;
        let mut c = centaur();
        let line = CacheLine::patterned(3);
        push_write(&mut c, SimTime::ZERO, t(0), 0x8000, &line);
        // A second write left mid-assembly (command, no beats yet).
        c.push_downstream(
            SimTime::from_ns(40),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Write { addr: 0x9000 },
            },
        );
        let quiet = c.power_cut(SimTime::from_us(1));
        assert_eq!(quiet, SimTime::from_us(1), "volatile: nothing to save");
        let (_, outcome) = c.power_restore(quiet);
        assert_eq!(outcome, PowerRestoreOutcome::Volatile);
        // Queued responses died with the rail...
        assert!(c.pull_upstream(SimTime::from_secs(1)).is_none());
        // ...and so did the DRAM contents.
        let (back, _) = c.sideband_read_line(SimTime::from_secs(1), 0x8000).unwrap();
        assert_eq!(back, [0u8; 128]);
        assert_eq!(c.cache().hits(), 0);
    }

    #[test]
    fn snapshot_mid_assembly_resumes_identically() {
        let mut c = centaur();
        let line = CacheLine::patterned(21);
        // A completed write warms the cache and DRAM.
        push_write(&mut c, SimTime::ZERO, t(0), 0x8000, &line);
        drain_all(&mut c, SimTime::from_us(1));
        // A second write left mid-assembly: command plus 3 of 8 beats.
        c.push_downstream(
            SimTime::from_us(2),
            DownstreamPayload::Command {
                tag: t(3),
                header: CommandHeader::Write { addr: 0x9000 },
            },
        );
        let beats = line_to_downstream_beats(t(3), &CacheLine::patterned(9));
        for (i, beat) in beats.iter().take(3).cloned().enumerate() {
            c.push_downstream(
                SimTime::from_us(2) + SimTime::from_ns(2) * (i as u64 + 1),
                beat,
            );
        }
        // A read whose response is still queued.
        c.push_downstream(
            SimTime::from_us(2),
            DownstreamPayload::Command {
                tag: t(4),
                header: CommandHeader::Read { addr: 0x8000 },
            },
        );

        let mut img = Vec::new();
        c.snapshot_state(&mut img);
        let mut fresh = centaur();
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();

        // Finish the interrupted write on both copies; feed the
        // remaining beats and drain: byte-identical upstream streams.
        for (i, beat) in beats.iter().skip(3).cloned().enumerate() {
            let at = SimTime::from_us(3) + SimTime::from_ns(2) * (i as u64);
            c.push_downstream(at, beat.clone());
            fresh.push_downstream(at, beat);
        }
        let a = drain_all(&mut c, SimTime::from_us(6));
        let b = drain_all(&mut fresh, SimTime::from_us(6));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_eq!(c.stats(), fresh.stats());
        assert_eq!(c.cache().hits(), fresh.cache().hits());
    }

    #[test]
    fn snapshot_restore_rejects_capacity_mismatch() {
        let c = centaur();
        let mut img = Vec::new();
        c.snapshot_state(&mut img);
        let mut small = Centaur::new(CentaurConfig::optimized(), 1 << 20);
        let err = small.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut c = centaur();
        let line = CacheLine::patterned(42);
        let end = push_write(&mut c, SimTime::ZERO, t(0), 0x8000, &line);
        // Drain the write's done.
        let resp = drain_all(&mut c, end + SimTime::from_us(1));
        assert!(
            matches!(resp.last().unwrap().1, UpstreamPayload::Done { first, .. } if first == t(0))
        );

        c.push_downstream(
            SimTime::from_us(2),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Read { addr: 0x8000 },
            },
        );
        let resp = drain_all(&mut c, SimTime::from_us(3));
        let mut asm = LineAssembler::upstream();
        let mut saw_done = false;
        for (_, p) in resp {
            match p {
                UpstreamPayload::ReadData {
                    tag, beat, data, ..
                } => {
                    assert_eq!(tag, t(1));
                    asm.add_beat(beat, &data);
                }
                UpstreamPayload::Done { first, .. } => {
                    assert_eq!(first, t(1));
                    saw_done = true;
                }
                _ => {}
            }
        }
        assert!(saw_done);
        assert_eq!(asm.into_line(), line);
        assert_eq!(c.stats().writes, 1);
        assert_eq!(c.stats().reads, 1);
    }

    #[test]
    fn read_beats_precede_done_and_are_contiguous() {
        let mut c = centaur();
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(5),
                header: CommandHeader::Read { addr: 0 },
            },
        );
        let resp = drain_all(&mut c, SimTime::from_us(1));
        let kinds: Vec<u8> = resp
            .iter()
            .map(|(_, p)| match p {
                UpstreamPayload::ReadData { .. } => 1,
                UpstreamPayload::Done { .. } => 2,
                _ => 0,
            })
            .collect();
        assert_eq!(kinds, vec![1, 1, 1, 1, 2]);
    }

    #[test]
    fn rmw_merges_previous_contents() {
        let mut c = centaur();
        let mut base = CacheLine::ZERO;
        base.set_word(0, 100);
        push_write(&mut c, SimTime::ZERO, t(0), 0, &base);
        let mut addend = CacheLine::ZERO;
        addend.set_word(0, 11);
        // RMW atomic-add.
        c.push_downstream(
            SimTime::from_us(1),
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Rmw {
                    addr: 0,
                    op: RmwOp::AtomicAdd,
                },
            },
        );
        for (i, beat) in line_to_downstream_beats(t(1), &addend)
            .into_iter()
            .enumerate()
        {
            c.push_downstream(
                SimTime::from_us(1) + SimTime::from_ns(2) * (i as u64 + 1),
                beat,
            );
        }
        drain_all(&mut c, SimTime::from_us(2));
        // Read back.
        c.push_downstream(
            SimTime::from_us(3),
            DownstreamPayload::Command {
                tag: t(2),
                header: CommandHeader::Read { addr: 0 },
            },
        );
        let resp = drain_all(&mut c, SimTime::from_us(4));
        let mut asm = LineAssembler::upstream();
        for (_, p) in resp {
            if let UpstreamPayload::ReadData { beat, data, .. } = p {
                asm.add_beat(beat, &data);
            }
        }
        assert_eq!(asm.into_line().word(0), 111);
        assert_eq!(c.stats().rmws, 1);
    }

    #[test]
    fn cache_hit_is_faster_than_miss() {
        let mut c = centaur();
        // Cold read (miss).
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(0),
                header: CommandHeader::Read { addr: 0x10000 },
            },
        );
        let cold = drain_all(&mut c, SimTime::from_us(1));
        let cold_done = cold.last().unwrap().0;
        // Warm read (hit) — same line.
        let issue = SimTime::from_us(10);
        c.push_downstream(
            issue,
            DownstreamPayload::Command {
                tag: t(1),
                header: CommandHeader::Read { addr: 0x10000 },
            },
        );
        let mut warm_done = SimTime::ZERO;
        let mut now = issue;
        while now < issue + SimTime::from_us(1) {
            while let Some(p) = c.pull_upstream(now) {
                if matches!(p, UpstreamPayload::Done { .. }) {
                    warm_done = now;
                }
            }
            now += SimTime::from_ns(2);
        }
        let cold_lat = cold_done;
        let warm_lat = warm_done - issue;
        assert!(warm_lat < cold_lat, "warm {warm_lat} !< cold {cold_lat}");
        assert_eq!(c.cache().hits(), 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = Centaur::new(CentaurConfig::contutto_matched(), 1 << 30);
        for i in 0..3 {
            c.push_downstream(
                SimTime::from_us(i),
                DownstreamPayload::Command {
                    tag: t(i as u8),
                    header: CommandHeader::Read { addr: 0x4000 },
                },
            );
        }
        drain_all(&mut c, SimTime::from_us(10));
        assert_eq!(c.cache().hits(), 0);
        assert_eq!(c.stats().reads, 3);
    }

    #[test]
    fn flush_is_unsupported_but_completes() {
        let mut c = centaur();
        c.push_downstream(
            SimTime::ZERO,
            DownstreamPayload::Command {
                tag: t(9),
                header: CommandHeader::Flush,
            },
        );
        let resp = drain_all(&mut c, SimTime::from_us(1));
        assert!(matches!(resp[0].1, UpstreamPayload::Done { first, .. } if first == t(9)));
        assert_eq!(c.stats().unsupported, 1);
    }

    #[test]
    fn lines_interleave_across_ports() {
        let c = centaur();
        let (p0, _) = c.route(0);
        let (p1, _) = c.route(128);
        let (p2, _) = c.route(256);
        let (p3, _) = c.route(384);
        let (p4, l4) = c.route(512);
        assert_eq!((p0, p1, p2, p3, p4), (0, 1, 2, 3, 0));
        assert_eq!(l4, 128); // second line of port 0
    }

    #[test]
    fn slower_config_has_higher_latency() {
        let run = |cfg: CentaurConfig| {
            let mut c = Centaur::new(cfg, 1 << 30);
            c.push_downstream(
                SimTime::ZERO,
                DownstreamPayload::Command {
                    tag: t(0),
                    header: CommandHeader::Read { addr: 0x2000 },
                },
            );
            drain_all(&mut c, SimTime::from_us(2)).last().unwrap().0
        };
        let fast = run(CentaurConfig::optimized());
        let slow = run(CentaurConfig::serialized());
        assert!(
            slow > fast + SimTime::from_ns(150),
            "fast {fast} slow {slow}"
        );
    }

    #[test]
    fn simultaneous_dones_coalesce() {
        let mut c = centaur();
        let l = CacheLine::patterned(1);
        push_write(&mut c, SimTime::ZERO, t(0), 0, &l);
        push_write(&mut c, SimTime::ZERO, t(1), 128, &l);
        let resp = drain_all(&mut c, SimTime::from_us(2));
        let dones: Vec<_> = resp
            .iter()
            .filter_map(|(_, p)| match p {
                UpstreamPayload::Done { first, second } => Some((*first, *second)),
                _ => None,
            })
            .collect();
        // Different DDR ports complete near-simultaneously: one frame.
        assert_eq!(dones.len(), 1, "{dones:?}");
        assert!(dones[0].1.is_some());
        assert_eq!(c.stats().coalesced_dones, 1);
    }

    #[test]
    fn frtl_turnaround_matches_config() {
        let c = centaur();
        assert_eq!(c.frtl_turnaround(), SimTime::from_ns(11));
    }
}
