//! The Centaur 16 MB eDRAM cache model.
//!
//! A memory-side cache: it holds 128-byte lines, is set-associative
//! with LRU replacement, and includes a simple sequential prefetcher
//! (paper §2.1: the buffer contains "16 MB on-board cache to support
//! prefetching"). The cache is a *timing* structure — data remains
//! authoritative in DRAM (the model writes through), so the cache only
//! decides whether an access pays DRAM latency.

use contutto_sim::snapshot::{self, Persist, SnapReader};

/// A set-associative tag array with LRU replacement.
#[derive(Debug, Clone)]
pub struct EdramCache {
    sets: Vec<Vec<CacheWay>>,
    ways: usize,
    line_bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    prefetch_degree: u64,
    prefetch_fills: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct CacheWay {
    valid: bool,
    tag: u64,
    last_used: u64,
}

impl EdramCache {
    /// Creates a cache of `capacity` bytes with `ways`-way sets and
    /// 128-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless capacity is a positive multiple of
    /// `ways * line size`.
    pub fn new(capacity: u64, ways: usize) -> Self {
        let line_bytes = 128u64;
        assert!(ways > 0, "need at least one way");
        let set_bytes = line_bytes * ways as u64;
        assert!(
            capacity > 0 && capacity.is_multiple_of(set_bytes),
            "capacity must be a multiple of way count x line size"
        );
        let num_sets = (capacity / set_bytes) as usize;
        EdramCache {
            sets: vec![vec![CacheWay::default(); ways]; num_sets],
            ways,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
            prefetch_degree: 2,
            prefetch_fills: 0,
        }
    }

    /// The paper's Centaur cache: 16 MB, 8-way.
    pub fn centaur() -> Self {
        EdramCache::new(16 << 20, 8)
    }

    /// Sets the sequential-prefetch degree (0 disables prefetch).
    pub fn set_prefetch_degree(&mut self, degree: u64) {
        self.prefetch_degree = degree;
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        (
            (line as usize) % self.sets.len(),
            line / self.sets.len() as u64,
        )
    }

    /// Looks up `addr`; on miss, fills the line and (if enabled)
    /// prefetches the next lines. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let hit = self.probe_and_touch(addr);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.fill(addr);
            for i in 1..=self.prefetch_degree {
                let pf = addr + i * self.line_bytes;
                if !self.probe_and_touch(pf) {
                    self.fill(pf);
                    self.prefetch_fills += 1;
                }
            }
        }
        hit
    }

    /// Probes without filling (no stats side effects beyond LRU touch).
    fn probe_and_touch(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        for way in &mut self.sets[set_idx] {
            if way.valid && way.tag == tag {
                way.last_used = tick;
                return true;
            }
        }
        false
    }

    /// Checks residency without any side effects.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs a line, evicting LRU if needed.
    pub fn fill(&mut self, addr: u64) {
        let (set_idx, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        // Already resident?
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = tick;
            return;
        }
        // A zero-way geometry has nowhere to install the line; degrade
        // to an uncached fill instead of aborting mid-fault-campaign.
        let Some(victim) = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_used } else { 0 })
        else {
            return;
        };
        victim.valid = true;
        victim.tag = tag;
        victim.last_used = tick;
    }

    /// Invalidates the whole cache.
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
            }
        }
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lines installed by the prefetcher.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Hit rate over demand accesses (0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets.len() as u64 * self.ways as u64 * self.line_bytes
    }

    /// Serializes all dynamic state (tag array, LRU clock, stats).
    /// Geometry is a construction parameter and is only cross-checked.
    pub fn snapshot_state(&self, out: &mut Vec<u8>) {
        (self.sets.len() as u64).persist(out);
        (self.ways as u64).persist(out);
        self.line_bytes.persist(out);
        for set in &self.sets {
            (set.len() as u64).persist(out);
            for way in set {
                way.valid.persist(out);
                way.tag.persist(out);
                way.last_used.persist(out);
            }
        }
        self.tick.persist(out);
        self.hits.persist(out);
        self.misses.persist(out);
        self.prefetch_degree.persist(out);
        self.prefetch_fills.persist(out);
    }

    /// Overlays an [`EdramCache::snapshot_state`] image onto this
    /// cache.
    ///
    /// # Errors
    ///
    /// [`snapshot::RestoreError::TopologyMismatch`] if the image came
    /// from a different geometry, or any decode error from a corrupt
    /// payload.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), snapshot::RestoreError> {
        let num_sets = r.len()?;
        let ways = r.len()?;
        let line_bytes = r.u64()?;
        if num_sets != self.sets.len() || ways != self.ways || line_bytes != self.line_bytes {
            return Err(snapshot::RestoreError::TopologyMismatch {
                context: "cache geometry",
            });
        }
        let mut sets = Vec::with_capacity(num_sets);
        for _ in 0..num_sets {
            let set_ways = r.len()?;
            let mut set = Vec::with_capacity(set_ways);
            for _ in 0..set_ways {
                set.push(CacheWay {
                    valid: r.bool()?,
                    tag: r.u64()?,
                    last_used: r.u64()?,
                });
            }
            sets.push(set);
        }
        let tick = r.u64()?;
        let hits = r.u64()?;
        let misses = r.u64()?;
        let prefetch_degree = r.u64()?;
        let prefetch_fills = r.u64()?;
        self.sets = sets;
        self.tick = tick;
        self.hits = hits;
        self.misses = misses;
        self.prefetch_degree = prefetch_degree;
        self.prefetch_fills = prefetch_fills;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centaur_geometry() {
        let c = EdramCache::centaur();
        assert_eq!(c.capacity_bytes(), 16 << 20);
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = EdramCache::new(16 << 10, 4);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sequential_prefetch_turns_misses_into_hits() {
        let mut c = EdramCache::new(16 << 10, 4);
        c.set_prefetch_degree(2);
        assert!(!c.access(0)); // miss, prefetches lines 1 and 2
        assert!(c.access(128)); // prefetched
        assert!(c.access(256)); // prefetched
        assert!(c.prefetch_fills() >= 2);
    }

    #[test]
    fn prefetch_disabled_means_all_cold_misses() {
        let mut c = EdramCache::new(16 << 10, 4);
        c.set_prefetch_degree(0);
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set x 2 ways: third distinct line evicts the LRU.
        let mut c = EdramCache::new(256, 2);
        c.set_prefetch_degree(0);
        c.access(0); // set 0
        c.access(256); // same set (1 set total), way 2
        c.access(0); // touch line 0 (now MRU)
        c.access(512); // evicts line 256
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = EdramCache::new(16 << 10, 4); // 16 KiB
        c.set_prefetch_degree(0);
        // Stream 1 MiB twice: no reuse fits.
        for pass in 0..2 {
            for addr in (0..(1 << 20)).step_by(128) {
                c.access(addr as u64);
            }
            if pass == 0 {
                assert_eq!(c.hits(), 0);
            }
        }
        assert!(c.hit_rate() < 0.01, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn invalidate_all_flushes() {
        let mut c = EdramCache::new(16 << 10, 4);
        c.access(0);
        assert!(c.contains(0));
        c.invalidate_all();
        assert!(!c.contains(0));
    }

    #[test]
    fn snapshot_restore_preserves_residency_and_lru() {
        let mut c = EdramCache::new(16 << 10, 4);
        c.access(0);
        c.access(0x1000);
        c.access(0);
        let mut img = Vec::new();
        c.snapshot_state(&mut img);
        let mut fresh = EdramCache::new(16 << 10, 4);
        fresh.restore_state(&mut SnapReader::new(&img)).unwrap();
        assert!(fresh.contains(0) && fresh.contains(0x1000));
        assert_eq!(fresh.hits(), c.hits());
        assert_eq!(fresh.misses(), c.misses());
        assert_eq!(fresh.prefetch_fills(), c.prefetch_fills());
        // LRU order came back: the two copies evict identically.
        for addr in [0x8000u64, 0x9000, 0xA000] {
            assert_eq!(c.access(addr), fresh.access(addr));
        }
        assert_eq!(fresh.hits(), c.hits());
        // Different geometry refuses the image.
        let mut other = EdramCache::new(16 << 10, 8);
        let err = other.restore_state(&mut SnapReader::new(&img)).unwrap_err();
        assert!(
            matches!(err, snapshot::RestoreError::TopologyMismatch { .. }),
            "got {err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn geometry_validation() {
        let _ = EdramCache::new(1000, 4);
    }

    #[test]
    fn degenerate_zero_way_set_degrades_instead_of_aborting() {
        // The public constructor rejects zero ways, but a fill against
        // an empty set must still degrade gracefully — the chaos
        // oracle's no-panic invariant covers every internal path.
        let mut c = EdramCache::new(16 << 10, 4);
        for set in &mut c.sets {
            set.clear();
        }
        c.access(0);
        c.fill(128);
        assert!(!c.contains(0), "nothing can be resident with no ways");
        assert_eq!(c.hits(), 0);
    }
}
