//! # contutto-centaur
//!
//! Model of the POWER8 **Centaur** memory-buffer ASIC: the chip
//! ConTutto replaces. Paper §2.1: each of the eight DMI channels
//! connects to a Centaur, which implements the memory controllers,
//! four DDR ports and a 16 MB cache "to support prefetching and
//! improve system performance".
//!
//! The model implements the [`contutto_dmi::DmiBuffer`] contract:
//! downstream command payloads go in, upstream read-data/done payloads
//! come out, with timing charged through a configurable internal
//! pipeline, an eDRAM cache model and real [`contutto_memdev::Dram`]
//! devices behind its DDR ports.
//!
//! The **latency knobs** of paper §4.1 Table 2 are exposed as
//! [`CentaurConfig`] presets: the same silicon, progressively
//! de-tuned ("adjusting different performance-related knobs available
//! in it"), spanning the paper's 79–249 ns range, plus the
//! "functionality matched to ConTutto" configuration of Table 3
//! (cache and auxiliary functions disabled).

pub mod buffer;
pub mod cache;
pub mod config;

pub use buffer::{Centaur, CentaurStats};
pub use cache::EdramCache;
pub use config::CentaurConfig;
