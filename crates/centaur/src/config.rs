//! Centaur latency-knob configurations.
//!
//! Paper §4.1: "We vary the latency to memory first by using a
//! standard CDIMM and adjusting different performance-related knobs
//! available in it. Table 2 lists the different latency settings for
//! Centaur used to characterize application performance." The paper
//! does not name the knobs; the presets here model the natural
//! de-tunings of a memory buffer (bypass paths, cache, page policy,
//! command serialization) with internal latencies calibrated so the
//! *measured* end-to-end latencies land on the paper's reported
//! values (79 / 83 / 116 / 249 ns at nest level, and 97 / 293 ns for
//! the Table 3 system-level measurement).

use contutto_sim::SimTime;

/// One Centaur configuration (a row of Table 2, or the Table 3
/// matched-function setting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CentaurConfig {
    /// Preset name for reports.
    pub name: &'static str,
    /// Whether the 16 MB eDRAM cache serves hits.
    pub cache_enabled: bool,
    /// Sequential prefetch degree (0 = off).
    pub prefetch_degree: u64,
    /// Receive-side pipeline latency (PHY + MBI + decode).
    pub rx_latency: SimTime,
    /// Transmit-side pipeline latency (arbitration + MBI + PHY).
    pub tx_latency: SimTime,
    /// Cache hit service latency.
    pub cache_hit_latency: SimTime,
    /// Extra per-command scheduling/serialization delay added by the
    /// de-tuned knob settings.
    pub extra_command_delay: SimTime,
}

impl CentaurConfig {
    /// Setting A (Table 2, 79 ns): everything on — fast-path bypass,
    /// cache, prefetch, open-page policy.
    pub fn optimized() -> Self {
        CentaurConfig {
            name: "centaur-optimized",
            cache_enabled: true,
            prefetch_degree: 2,
            rx_latency: SimTime::from_ns(7),
            tx_latency: SimTime::from_ns(4),
            cache_hit_latency: SimTime::from_ns(35),
            extra_command_delay: SimTime::ZERO,
        }
    }

    /// Setting B (Table 2, 83 ns): receive/transmit bypass disabled
    /// (two extra pipeline stages each way).
    pub fn no_bypass() -> Self {
        CentaurConfig {
            name: "centaur-no-bypass",
            rx_latency: SimTime::from_ns(9),
            tx_latency: SimTime::from_ns(6),
            ..CentaurConfig::optimized()
        }
    }

    /// Setting C (Table 2, 116 ns): closed-page policy and prefetch
    /// off — every access pays activate + extra scheduling slack.
    pub fn closed_page() -> Self {
        CentaurConfig {
            name: "centaur-closed-page",
            cache_enabled: true,
            prefetch_degree: 0,
            extra_command_delay: SimTime::from_ns(33),
            ..CentaurConfig::no_bypass()
        }
    }

    /// Setting D (Table 2, 249 ns): command serialization + retry-safe
    /// ECC mode — the slowest knob combination the paper reports.
    pub fn serialized() -> Self {
        CentaurConfig {
            name: "centaur-serialized",
            cache_enabled: false,
            prefetch_degree: 0,
            extra_command_delay: SimTime::from_ns(162),
            ..CentaurConfig::no_bypass()
        }
    }

    /// The Table 3 comparison point (293 ns measured): "a single
    /// Centaur configured to match the hardware functionalities
    /// implemented in ConTutto" — cache and auxiliary functions off,
    /// conservative pipeline.
    pub fn contutto_matched() -> Self {
        CentaurConfig {
            name: "centaur-matched-to-contutto",
            cache_enabled: false,
            prefetch_degree: 0,
            rx_latency: SimTime::from_ns(9),
            tx_latency: SimTime::from_ns(6),
            cache_hit_latency: SimTime::from_ns(35),
            extra_command_delay: SimTime::from_ns(184),
        }
    }

    /// The four Table 2 rows, in order.
    pub fn table2_settings() -> Vec<CentaurConfig> {
        vec![
            CentaurConfig::optimized(),
            CentaurConfig::no_bypass(),
            CentaurConfig::closed_page(),
            CentaurConfig::serialized(),
        ]
    }
}

impl Default for CentaurConfig {
    fn default() -> Self {
        CentaurConfig::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_monotonically_slower() {
        let settings = CentaurConfig::table2_settings();
        let total =
            |c: &CentaurConfig| (c.rx_latency + c.tx_latency + c.extra_command_delay).as_ps();
        for pair in settings.windows(2) {
            assert!(
                total(&pair[0]) < total(&pair[1]),
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn matched_config_disables_centaur_extras() {
        let m = CentaurConfig::contutto_matched();
        assert!(!m.cache_enabled);
        assert_eq!(m.prefetch_degree, 0);
        assert!(m.extra_command_delay > CentaurConfig::serialized().extra_command_delay);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CentaurConfig::table2_settings()
            .iter()
            .map(|c| c.name)
            .chain([CentaurConfig::contutto_matched().name])
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
