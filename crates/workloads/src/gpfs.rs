//! The GPFS write-cache experiment (Table 4).
//!
//! Paper §4.2: GPFS with "STT-MRAM behind ConTutto as a write cache in
//! front of a hard disk drive ... STT-MRAM on ConTutto achieves 8.3X
//! single thread performance improvement over state of the art SSD."
//!
//! | Technology | Interface | IOPS (paper) |
//! |---|---|---|
//! | HDD 1.1 TB | SAS | 75 |
//! | SSD 400 GB | SAS | 15 K |
//! | STT-MRAM 256 MB | DMI (memory link) | 125 K |
//!
//! The experiment issues small random synchronous writes through the
//! GPFS recovery-log path: direct to the device for HDD/SSD, through
//! the [`WriteCache`] (MRAM log + HDD destage) for the ConTutto row.

use contutto_sim::SimTime;
use contutto_storage::blockdev::{mram_contutto_device, BlockDevice, SasHdd, SasSsd, BLOCK_BYTES};
use contutto_storage::writecache::WriteCache;

/// Per-write GPFS software-path cost (journaling, token, VFS).
pub const GPFS_SOFTWARE_OVERHEAD: SimTime = SimTime::from_us(2);

/// One Table 4 row: measured IOPS for a persistent-store setup.
#[derive(Debug, Clone, PartialEq)]
pub struct GpfsRow {
    /// Technology label.
    pub technology: String,
    /// Attach interface.
    pub interface: &'static str,
    /// Measured single-thread write IOPS.
    pub iops: f64,
}

/// The Table 4 experiment driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpfsExperiment {
    /// Synchronous small writes per run.
    pub writes: u64,
    /// LCG seed for target LBAs.
    pub seed: u64,
    /// Log writes kept in flight. 1 (the default) is the paper's
    /// single-thread synchronous measurement; deeper queues model
    /// asynchronous log appends whose software overhead overlaps
    /// device service. Devices serialize internally, so the gain is
    /// the hidden software path, not free device parallelism.
    pub queue_depth: u64,
}

impl Default for GpfsExperiment {
    fn default() -> Self {
        GpfsExperiment {
            writes: 48,
            seed: 0x6F5,
            queue_depth: 1,
        }
    }
}

impl GpfsExperiment {
    fn lba_stream(&self) -> impl FnMut() -> u64 {
        let mut lcg = self.seed | 1;
        move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg % 250_000_000 // span the whole 1.1 TB platter
        }
    }

    /// Direct synchronous writes to a raw device.
    pub fn run_direct(&self, device: &mut dyn BlockDevice) -> f64 {
        let mut next = self.lba_stream();
        let data = [0u8; BLOCK_BYTES];
        let qd = self.queue_depth.max(1);
        let mut now = SimTime::ZERO;
        let mut done = 0;
        while done < self.writes {
            let batch = qd.min(self.writes - done);
            // The software path stays serial; the device overlaps its
            // service with later submissions up to the queue depth.
            let mut submit = now;
            let mut batch_end = now;
            for _ in 0..batch {
                submit += GPFS_SOFTWARE_OVERHEAD;
                batch_end = batch_end.max(device.write_block(submit, next(), &data));
            }
            now = batch_end.max(submit);
            done += batch;
        }
        self.writes as f64 / now.as_secs_f64()
    }

    /// Writes through a write cache (log + backing disk).
    pub fn run_cached<L: BlockDevice, D: BlockDevice>(&self, cache: &mut WriteCache<L, D>) -> f64 {
        let mut next = self.lba_stream();
        let data = [0u8; BLOCK_BYTES];
        let qd = self.queue_depth.max(1);
        let mut now = SimTime::ZERO;
        let mut done = 0;
        while done < self.writes {
            let batch = qd.min(self.writes - done);
            let mut batch_end = now;
            for _ in 0..batch {
                // The cache charges the GPFS log path internally, so a
                // whole batch launches from the same instant; the log
                // device's own busy time serializes the appends.
                batch_end = batch_end.max(cache.write(now, next(), &data));
            }
            now = batch_end;
            done += batch;
        }
        self.writes as f64 / now.as_secs_f64()
    }

    /// Reproduces the full Table 4.
    pub fn table4(&self) -> Vec<GpfsRow> {
        let hdd_iops = self.run_direct(&mut SasHdd::new());
        let ssd_iops = self.run_direct(&mut SasSsd::new());
        let mut cache = WriteCache::new(mram_contutto_device(), SasHdd::new());
        let mram_iops = self.run_cached(&mut cache);
        vec![
            GpfsRow {
                technology: "Hard Disk Drive (1.1 TB)".into(),
                interface: "SAS",
                iops: hdd_iops,
            },
            GpfsRow {
                technology: "SSD (400 GB)".into(),
                interface: "SAS",
                iops: ssd_iops,
            },
            GpfsRow {
                technology: "STT-MRAM (256 MB)".into(),
                interface: "DMI (memory link)",
                iops: mram_iops,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_holds() {
        let rows = GpfsExperiment::default().table4();
        assert_eq!(rows.len(), 3);
        let hdd = rows[0].iops;
        let ssd = rows[1].iops;
        let mram = rows[2].iops;
        // Paper anchors: 75 / 15K / 125K.
        assert!((50.0..110.0).contains(&hdd), "hdd {hdd}");
        assert!((11_000.0..18_000.0).contains(&ssd), "ssd {ssd}");
        assert!((90_000.0..170_000.0).contains(&mram), "mram {mram}");
    }

    #[test]
    fn mram_improvement_over_ssd_is_about_8x() {
        let rows = GpfsExperiment::default().table4();
        let ratio = rows[2].iops / rows[1].iops;
        assert!((5.0..12.0).contains(&ratio), "MRAM/SSD ratio {ratio}");
    }

    #[test]
    fn queued_log_writes_raise_mram_iops() {
        // Async log appends overlap the 2 us software path with the
        // MRAM log write; the Table 4 single-thread anchors above all
        // run at the default depth of 1 and are untouched.
        let qd1 = GpfsExperiment::default();
        let qd4 = GpfsExperiment {
            queue_depth: 4,
            ..qd1
        };
        let mut a = WriteCache::new(mram_contutto_device(), SasHdd::new());
        let mut b = WriteCache::new(mram_contutto_device(), SasHdd::new());
        let serial = qd1.run_cached(&mut a);
        let queued = qd4.run_cached(&mut b);
        assert!(queued > serial, "{queued} !> {serial}");
    }

    #[test]
    fn ssd_improvement_over_hdd_is_two_orders() {
        let rows = GpfsExperiment::default().table4();
        let ratio = rows[1].iops / rows[0].iops;
        assert!(ratio > 100.0, "SSD/HDD ratio {ratio}");
    }
}
