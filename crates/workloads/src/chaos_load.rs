//! The chaos-campaign load driver: a deterministic key/value loop
//! whose every store is remembered.
//!
//! [`TrafficEngine`](crate::traffic::TrafficEngine) measures *latency*
//! under faults; this driver exists to check *durability*. It issues a
//! deterministic mix of loads and versioned stores against a booted
//! [`Power8System`] while a per-step hook injects faults, and it keeps
//! a [`StoreEvent`] ledger: for every store, the address, the exact
//! line written, when it was submitted, and how it ended (acked,
//! errored, orphaned by a power cut). The chaos oracle replays that
//! ledger against the post-run system to decide whether any
//! acknowledged write was silently lost — without the ledger there is
//! nothing to hold the system to.
//!
//! Determinism is load-bearing: same seed + same hook decisions ⇒
//! byte-identical ledger and report, which is what lets the campaign
//! run every plan twice and diff the fingerprints.

use std::collections::BTreeMap;

use contutto_dmi::command::CacheLine;
use contutto_power8::system::{Power8System, ReqId};
use contutto_sim::{SimRng, SimTime};

/// Configuration for one chaos load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosLoadConfig {
    /// Total requests to submit.
    pub requests: u64,
    /// Inter-submit gap; the hook may rewrite it mid-run (a
    /// traffic-rate step is a fault action too).
    pub gap: SimTime,
    /// Distinct keys; each maps to one line address.
    pub keys: u64,
    /// Fraction of requests that are loads (rest are stores).
    pub read_fraction: f64,
    /// Memory-level-parallelism window handed to the system.
    pub mlp_window: usize,
    /// RNG seed for the key/op stream.
    pub seed: u64,
}

impl Default for ChaosLoadConfig {
    fn default() -> Self {
        ChaosLoadConfig {
            requests: 256,
            gap: SimTime::from_ns(400),
            keys: 64,
            read_fraction: 0.5,
            mlp_window: 8,
            seed: 1,
        }
    }
}

/// How one store ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Submitted but its completion never arrived before the run ended.
    Pending,
    /// Completed successfully at this time — the system *acknowledged*
    /// the write, so the oracle holds it durable.
    Acked(SimTime),
    /// Surfaced a typed error (submit refused or completion failed);
    /// the write may or may not have landed.
    Errored,
    /// Its in-flight record was wiped by a power cut; no ack was ever
    /// given.
    Orphaned,
    /// Submitted in a timeline the hook later abandoned by restoring
    /// an earlier snapshot. The store un-happened: its value must
    /// *not* be visible afterwards (seeing it is a resurrection), and
    /// any ack it collected before the rewind does not stand.
    RolledBack,
}

/// One store, as the driver saw it. The oracle's unit of evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Physical line address written.
    pub phys: u64,
    /// Token whose [`CacheLine::patterned`] expansion was written —
    /// unique per store, so "which version survived?" is answerable.
    pub token: u64,
    /// When the store was submitted.
    pub submitted_at: SimTime,
    /// How it ended.
    pub outcome: StoreOutcome,
}

impl StoreEvent {
    /// The exact line this store wrote.
    pub fn line(&self) -> CacheLine {
        CacheLine::patterned(self.token)
    }
}

/// Per-iteration view handed to the hook.
#[derive(Debug, Clone, Copy)]
pub struct ChaosTick {
    /// Requests submitted so far — the plan's logical clock: fault
    /// actions trigger on this, not on wall-clock picoseconds, so a
    /// latency shift can't reorder a plan.
    pub step: u64,
    /// Requests resolved so far (completed + errors + orphaned).
    pub resolved: u64,
    /// Global simulated time.
    pub now: SimTime,
    /// Ledger length so far (stores submitted). A hook snapshotting
    /// the system records this alongside the image so a later rewind
    /// can tell the driver where the surviving ledger ends.
    pub stores: u64,
}

/// The checkpoint a hook just rewound to by restoring a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewindPoint {
    /// Simulated time the restored snapshot was taken at.
    pub at: SimTime,
    /// Ledger length ([`ChaosTick::stores`]) when it was taken.
    pub stores: u64,
}

/// What the per-tick hook decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HookVerdict {
    /// New inter-submit gap (a traffic-rate step), if any.
    pub new_gap: Option<SimTime>,
    /// Set when the hook restored an earlier snapshot of the system:
    /// the driver demotes the abandoned timeline's ledger entries and
    /// realigns its clocks to the rewound present.
    pub rewound: Option<RewindPoint>,
}

impl HookVerdict {
    /// Change nothing this tick.
    pub const KEEP: HookVerdict = HookVerdict {
        new_gap: None,
        rewound: None,
    };

    /// A traffic-rate step to `gap`.
    pub fn gap(gap: SimTime) -> HookVerdict {
        HookVerdict {
            new_gap: Some(gap),
            rewound: None,
        }
    }
}

/// What a run produced: counters plus the full store ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosLoadReport {
    /// Requests submitted.
    pub submitted: u64,
    /// Of those, stores.
    pub stores: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that surfaced a typed error.
    pub errors: u64,
    /// Requests orphaned by a power cut.
    pub orphaned: u64,
    /// Every store, in submit order.
    pub ledger: Vec<StoreEvent>,
    /// Global time when the run finished.
    pub finished_at: SimTime,
}

impl ChaosLoadReport {
    /// The last store *acknowledged* per address, in ledger order.
    pub fn last_acked_by_addr(&self) -> BTreeMap<u64, StoreEvent> {
        let mut out = BTreeMap::new();
        for ev in &self.ledger {
            if matches!(ev.outcome, StoreOutcome::Acked(_)) {
                out.insert(ev.phys, *ev);
            }
        }
        out
    }
}

/// The driver itself: owns the key→address table for one layout.
#[derive(Debug, Clone)]
pub struct ChaosLoad {
    cfg: ChaosLoadConfig,
    addrs: Vec<u64>,
}

enum PendingKind {
    Load,
    /// Index into the ledger.
    Store(usize),
}

impl ChaosLoad {
    /// Builds the key table against the system's memory map, striping
    /// keys across every mapped region so faults on any slot are
    /// exercised.
    ///
    /// # Panics
    ///
    /// Panics if the system has no mapped memory.
    pub fn new(cfg: ChaosLoadConfig, sys: &Power8System) -> Self {
        let regions = sys.memory_map().regions();
        assert!(!regions.is_empty(), "system has no mapped memory");
        let keys = cfg.keys.max(1);
        let addrs = (0..keys)
            .map(|key| {
                let region = &regions[(key % regions.len() as u64) as usize];
                let lines = (region.os_size / 128).max(1);
                let line = (key / regions.len() as u64) % lines;
                region.base + line * 128
            })
            .collect();
        ChaosLoad { cfg, addrs }
    }

    /// Runs the load. `hook` fires once per engine iteration *before*
    /// any submission; it may mutate the system (that is the point)
    /// and returns a [`HookVerdict`]: a new inter-submit gap to model
    /// a traffic-rate step, and/or a [`RewindPoint`] after restoring
    /// an earlier snapshot. [`HookVerdict::KEEP`] changes nothing.
    ///
    /// On a rewind every in-flight request is resolved on the spot
    /// (its completion belongs to a timeline that no longer exists),
    /// ledger entries submitted after the checkpoint become
    /// [`StoreOutcome::RolledBack`], acks collected after the
    /// checkpoint are demoted to [`StoreOutcome::Orphaned`] (the
    /// restored system re-executes those writes, so they may or may
    /// not land again), and pacing restarts from the rewound clock.
    pub fn run<H>(&self, sys: &mut Power8System, mut hook: H) -> ChaosLoadReport
    where
        H: FnMut(&mut Power8System, &ChaosTick) -> HookVerdict,
    {
        sys.set_mlp_window(self.cfg.mlp_window);
        let mut rng = SimRng::seed_from_stream(self.cfg.seed, 0x006C_0AD5);
        let mut gap = self.cfg.gap;
        let mut next_submit = sys.now() + gap;
        let mut submitted = 0u64;
        let mut stores = 0u64;
        let mut completed = 0u64;
        let mut errors = 0u64;
        let mut orphaned = 0u64;
        let mut seq = 0u64;
        let mut ledger: Vec<StoreEvent> = Vec::new();
        let mut pending: BTreeMap<ReqId, PendingKind> = BTreeMap::new();
        loop {
            let tick = ChaosTick {
                step: submitted,
                resolved: completed + errors + orphaned,
                now: sys.now(),
                stores: ledger.len() as u64,
            };
            let verdict = hook(sys, &tick);
            if let Some(new_gap) = verdict.new_gap {
                gap = new_gap.max(SimTime::from_ps(1));
                next_submit = next_submit.min(sys.now() + gap);
            }
            if let Some(rp) = verdict.rewound {
                // The post-checkpoint timeline is abandoned: no
                // completion for anything in flight can ever arrive
                // (the restored system's re-completions carry request
                // ids we either already resolved or never issued).
                for (_, kind) in std::mem::take(&mut pending) {
                    orphaned += 1;
                    if let PendingKind::Store(idx) = kind {
                        ledger[idx].outcome = if idx as u64 >= rp.stores {
                            StoreOutcome::RolledBack
                        } else {
                            StoreOutcome::Orphaned
                        };
                    }
                }
                for (idx, ev) in ledger.iter_mut().enumerate() {
                    if idx as u64 >= rp.stores {
                        ev.outcome = StoreOutcome::RolledBack;
                    } else if matches!(ev.outcome, StoreOutcome::Acked(t) if t > rp.at) {
                        // Acked in the abandoned timeline: the write
                        // is in flight again and may or may not land.
                        ev.outcome = StoreOutcome::Orphaned;
                    }
                }
                // Pacing restarts from the rewound clock — do NOT
                // drag the restored system forward to abandoned time.
                next_submit = sys.now() + gap;
            } else {
                // A fault hook may have rebooted the system and moved
                // some channel clocks; keep every local clock at the
                // global now.
                sys.advance_to(tick.now.max(sys.now()));
            }
            while submitted < self.cfg.requests && next_submit <= sys.now() {
                let key = rng.gen_below(self.addrs.len() as u64);
                let phys = self.addrs[key as usize];
                submitted += 1;
                next_submit += gap;
                if rng.gen_bool(self.cfg.read_fraction) {
                    match sys.submit_load(phys) {
                        Ok(id) => {
                            pending.insert(id, PendingKind::Load);
                        }
                        Err(_) => errors += 1,
                    }
                } else {
                    stores += 1;
                    seq += 1;
                    // Unique per store: the high bits carry the key so
                    // a misrouted line is visibly foreign, the low
                    // bits the sequence so versions are ordered.
                    let token = (key << 40) | seq;
                    let event = StoreEvent {
                        phys,
                        token,
                        submitted_at: sys.now(),
                        outcome: StoreOutcome::Pending,
                    };
                    match sys.submit_store(phys, CacheLine::patterned(token)) {
                        Ok(id) => {
                            ledger.push(event);
                            pending.insert(id, PendingKind::Store(ledger.len() - 1));
                        }
                        Err(_) => {
                            errors += 1;
                            ledger.push(StoreEvent {
                                outcome: StoreOutcome::Errored,
                                ..event
                            });
                        }
                    }
                }
            }
            let finished = sys.poll();
            let progressed = !finished.is_empty();
            for (id, result) in finished {
                let Some(kind) = pending.remove(&id) else {
                    continue;
                };
                match result {
                    Ok(c) => {
                        completed += 1;
                        if let PendingKind::Store(idx) = kind {
                            ledger[idx].outcome = StoreOutcome::Acked(c.completed_at);
                        }
                    }
                    Err(_) => {
                        errors += 1;
                        if let PendingKind::Store(idx) = kind {
                            ledger[idx].outcome = StoreOutcome::Errored;
                        }
                    }
                }
            }
            if submitted >= self.cfg.requests && pending.is_empty() {
                break;
            }
            if !progressed {
                if pending.is_empty() {
                    sys.advance_to(next_submit.max(sys.now()));
                } else if sys.outstanding_reqs() == 0 {
                    // A power cut wiped the in-flight set; these
                    // completions can never arrive.
                    for (_, kind) in std::mem::take(&mut pending) {
                        orphaned += 1;
                        if let PendingKind::Store(idx) = kind {
                            ledger[idx].outcome = StoreOutcome::Orphaned;
                        }
                    }
                }
            }
        }
        ChaosLoadReport {
            submitted,
            stores,
            completed,
            errors,
            orphaned,
            ledger,
            finished_at: sys.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_centaur::CentaurConfig;
    use contutto_power8::firmware::layouts;

    fn boot() -> Power8System {
        Power8System::boot(layouts::all_cdimm(CentaurConfig::optimized(), 4 << 30), 7)
            .expect("cdimm system must boot")
    }

    fn quick(seed: u64) -> ChaosLoadConfig {
        ChaosLoadConfig {
            requests: 96,
            keys: 32,
            seed,
            ..ChaosLoadConfig::default()
        }
    }

    #[test]
    fn every_request_resolves_and_the_ledger_matches() {
        let mut sys = boot();
        let load = ChaosLoad::new(quick(3), &sys);
        let r = load.run(&mut sys, |_, _| HookVerdict::KEEP);
        assert_eq!(r.submitted, 96);
        assert_eq!(r.completed + r.errors + r.orphaned, 96);
        assert_eq!(r.errors, 0);
        assert_eq!(r.ledger.len() as u64, r.stores);
        assert!(r.stores > 0, "mixed workload must include stores");
        assert!(r
            .ledger
            .iter()
            .all(|e| matches!(e.outcome, StoreOutcome::Acked(_))));
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let mut a = boot();
        let ra = ChaosLoad::new(quick(17), &a).run(&mut a, |_, _| HookVerdict::KEEP);
        let mut b = boot();
        let rb = ChaosLoad::new(quick(17), &b).run(&mut b, |_, _| HookVerdict::KEEP);
        assert_eq!(ra, rb);
    }

    #[test]
    fn last_acked_value_is_what_memory_holds() {
        // The mini-oracle: after a clean run, every address's last
        // acked token must be exactly what a load returns.
        let mut sys = boot();
        let load = ChaosLoad::new(quick(29), &sys);
        let r = load.run(&mut sys, |_, _| HookVerdict::KEEP);
        let last = r.last_acked_by_addr();
        assert!(!last.is_empty());
        for (phys, ev) in last {
            let (line, _) = sys.load_line(phys).expect("clean run, line readable");
            assert_eq!(line, ev.line(), "addr {phys:#x} lost its last ack");
        }
    }

    #[test]
    fn hook_rate_step_changes_pacing() {
        let mut slow = boot();
        let r_slow = ChaosLoad::new(quick(5), &slow).run(&mut slow, |_, tick| HookVerdict {
            new_gap: (tick.step == 8).then(|| SimTime::from_us(2)),
            rewound: None,
        });
        let mut fast = boot();
        let r_fast = ChaosLoad::new(quick(5), &fast).run(&mut fast, |_, _| HookVerdict::KEEP);
        assert_eq!(r_slow.submitted, r_fast.submitted);
        assert!(
            r_slow.finished_at > r_fast.finished_at,
            "throttled run must take longer ({} !> {})",
            r_slow.finished_at,
            r_fast.finished_at
        );
    }

    #[test]
    fn power_cut_orphans_are_typed_in_the_ledger() {
        let mut sys = boot();
        let cfg = ChaosLoadConfig {
            requests: 64,
            gap: SimTime::from_ps(100), // flood so plenty are in flight
            read_fraction: 0.0,
            ..quick(13)
        };
        let load = ChaosLoad::new(cfg, &sys);
        let mut cut = false;
        let r = load.run(&mut sys, |sys, tick| {
            if !cut && tick.resolved >= 8 {
                cut = true;
                let at = sys.now();
                let quiet = sys.power_cut(at);
                sys.reboot(quiet + SimTime::from_us(5))
                    .expect("reboot after cut");
            }
            HookVerdict::KEEP
        });
        assert!(r.orphaned > 0, "flood + cut must orphan something");
        assert_eq!(
            r.ledger
                .iter()
                .filter(|e| e.outcome == StoreOutcome::Orphaned)
                .count() as u64,
            r.orphaned
        );
        assert!(r.ledger.iter().all(|e| e.outcome != StoreOutcome::Pending));
    }

    #[test]
    fn rewind_demotes_the_abandoned_timeline() {
        let mut sys = boot();
        let cfg = ChaosLoadConfig {
            requests: 64,
            read_fraction: 0.0,
            ..quick(21)
        };
        let load = ChaosLoad::new(cfg, &sys);
        let mut checkpoint: Option<(Vec<u8>, RewindPoint)> = None;
        let mut rewound = false;
        let r = load.run(&mut sys, |sys, tick| {
            if checkpoint.is_none() && tick.step >= 8 {
                checkpoint = Some((
                    sys.snapshot(),
                    RewindPoint {
                        at: sys.now(),
                        stores: tick.stores,
                    },
                ));
                return HookVerdict::KEEP;
            }
            if !rewound && tick.step >= 32 {
                if let Some((image, rp)) = &checkpoint {
                    rewound = true;
                    sys.restore(image).expect("in-place restore");
                    return HookVerdict {
                        new_gap: None,
                        rewound: Some(*rp),
                    };
                }
            }
            HookVerdict::KEEP
        });
        assert!(rewound, "the hook must have fired");
        let rolled_back = r
            .ledger
            .iter()
            .filter(|e| e.outcome == StoreOutcome::RolledBack)
            .count();
        assert!(rolled_back > 0, "stores past the checkpoint must roll back");
        assert!(r.ledger.iter().all(|e| e.outcome != StoreOutcome::Pending));
        // Post-rewind stores resubmit and must still resolve cleanly.
        let cp_stores = checkpoint.expect("taken").1.stores;
        assert!(
            r.ledger[cp_stores as usize..]
                .iter()
                .any(|e| matches!(e.outcome, StoreOutcome::Acked(_))),
            "the surviving timeline must make progress after the rewind"
        );
    }
}
