//! Service-level traffic generator: millions of simulated users with
//! tail-latency SLOs (ROADMAP item 2).
//!
//! The paper's DB2/GPFS/FIO results are latency-sensitivity curves;
//! the production-scale extension is the *tail*. This module drives a
//! KV-style serving layer over [`Power8System`]'s pipelined
//! submit/poll path with open- or closed-loop request arrivals
//! (Poisson or bursty), a configurable user population, and zipfian
//! key skew, recording every per-request latency into a
//! [`LogHistogram`] so p50/p99/p99.9/p99.99 are reported with bounded
//! relative error and no silent overflow.
//!
//! Two disciplines, per the standard load-testing taxonomy:
//!
//! * **Open loop** — arrivals follow the configured process regardless
//!   of completions, so queueing delay is part of the measured latency
//!   (`completion − nominal arrival`). This is what exposes tail
//!   collapse under a fault: arrivals keep coming while the system
//!   recovers.
//! * **Closed loop** — each simulated user waits for its response,
//!   thinks, and issues the next request; latency is service time
//!   (`completion − issue`). Coordinated omission applies, which is
//!   exactly why campaigns run both.
//!
//! A per-iteration hook lets a campaign trigger faults mid-run
//! (patrol-scrub storm, channel failover, EPOW/reboot) and label the
//! current [`Phase`]; steady and fault latencies accumulate into
//! separate histograms so "p99.9 *during* the fault" is a first-class
//! result. Every run is deterministic: same seed, same byte-identical
//! trace and histograms.

use std::collections::BTreeMap;

use contutto_dmi::command::CacheLine;
use contutto_power8::system::{Power8System, ReqId, SystemError};
use contutto_sim::{LogHistogram, MetricsRegistry, SimRng, SimTime};

/// Load-generation discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Arrivals are independent of completions (queueing delay is
    /// measured).
    Open,
    /// Each user waits for its response and thinks before re-issuing.
    Closed,
}

/// Inter-arrival (open loop) / think-time (closed loop) process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential gaps — memoryless, the classic M/G/k offered load.
    Poisson,
    /// `burst_len` back-to-back arrivals, then one long exponential
    /// gap scaled so the mean offered rate matches Poisson.
    Bursty {
        /// Arrivals per burst (≥ 1; 1 degenerates to Poisson).
        burst_len: u32,
    },
}

/// Which regime a request was issued in (set by the campaign hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// No fault active.
    Steady,
    /// A fault (scrub storm, failover, EPOW…) is in progress.
    Fault,
    /// The fault trigger has cleared but the system may still be
    /// digging out — the window where metastable congestion shows (or
    /// doesn't). Labelled by the campaign hook after its trigger ends.
    Recovery,
}

/// Traffic generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Open or closed loop.
    pub mode: LoopMode,
    /// Arrival / think process.
    pub arrival: ArrivalProcess,
    /// Total requests to issue.
    pub requests: u64,
    /// Simulated user population (closed loop: concurrent users; open
    /// loop: only scales the offered rate via `per_user_rps`).
    pub users: u64,
    /// Open loop: offered requests/sec *per user* (aggregate offered
    /// load is `users × per_user_rps` of simulated time).
    pub per_user_rps: f64,
    /// Closed loop: mean think time between a response and the user's
    /// next request.
    pub think: SimTime,
    /// Key-space size (each key maps to one cache line, spread across
    /// every memory-map region for channel-level parallelism).
    pub keys: u64,
    /// Zipf exponent for key popularity (0 = uniform; 0.99 = YCSB-ish).
    pub zipf_theta: f64,
    /// Fraction of requests that are reads (the rest are writes).
    pub read_fraction: f64,
    /// Per-channel in-flight window applied at run start.
    pub mlp_window: usize,
    /// The latency SLO; completions above it count as violations.
    pub slo: SimTime,
    /// Per-request deadline, relative to the nominal arrival: requests
    /// are submitted with an absolute deadline of `arrival + deadline`
    /// and the system sheds them (pre-issue) once it passes. `None`
    /// disables deadline propagation.
    pub deadline: Option<SimTime>,
    /// Client-side retries per logical request after a retryable error
    /// (open loop only). Each retry asks the system's shared retry
    /// budget first — with no budget configured, retries are
    /// unconditional, which is exactly the metastable-failure
    /// amplifier the overload campaign demonstrates.
    pub client_retries: u32,
    /// Base client backoff; retry `n` waits `n × client_backoff`.
    pub client_backoff: SimTime,
    /// RNG seed — same seed, byte-identical run.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            mode: LoopMode::Open,
            arrival: ArrivalProcess::Poisson,
            requests: 512,
            users: 1000,
            per_user_rps: 4_000.0, // 4M rps aggregate at 1000 users
            think: SimTime::from_us(1),
            keys: 4096,
            zipf_theta: 0.99,
            read_fraction: 0.9,
            mlp_window: 16,
            slo: SimTime::from_us(2),
            deadline: None,
            client_retries: 0,
            client_backoff: SimTime::from_us(2),
            seed: 0xC0FFEE,
        }
    }
}

/// Everything a campaign hook needs to decide whether to fire a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficTick {
    /// Requests issued so far.
    pub submitted: u64,
    /// Requests finished so far (ok or error).
    pub completed: u64,
    /// The system clock.
    pub now: SimTime,
}

/// Results of one traffic run. Structural equality covers the full
/// latency distributions, so two same-seed runs can be asserted
/// identical with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Requests issued (including failed submissions).
    pub submitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that surfaced a typed error (submit or completion).
    pub errors: u64,
    /// Requests orphaned by a power cut (no completion ever arrived).
    pub orphaned: u64,
    /// Simulated time from first submission to last completion.
    pub elapsed: SimTime,
    /// Latency distribution (ns) for steady-phase requests.
    pub steady: LogHistogram,
    /// Latency distribution (ns) for fault-phase requests.
    pub fault: LogHistogram,
    /// Latency distribution (ns) for recovery-phase requests.
    pub recovery: LogHistogram,
    /// Steady-phase completions over the SLO.
    pub steady_slo_violations: u64,
    /// Fault-phase completions over the SLO.
    pub fault_slo_violations: u64,
    /// Recovery-phase completions over the SLO.
    pub recovery_slo_violations: u64,
    /// Requests shed by the overload layer per phase
    /// ([`SystemError::Shed`] + [`SystemError::DeadlineExceeded`]
    /// events, at submit or completion), indexed steady/fault/recovery.
    pub shed: [u64; 3],
    /// The [`SystemError::DeadlineExceeded`] subset of `shed`.
    pub deadline_expired: u64,
    /// Client retries actually issued (budget-approved).
    pub client_retries: u64,
    /// Client retries the shared budget refused.
    pub client_retries_denied: u64,
    /// Completions for requests already finished — a hedge that
    /// double-applied would show here. Must stay zero.
    pub duplicate_completions: u64,
    /// Hedged reads issued per phase (sampled from the system's
    /// overload stats at each tick), indexed steady/fault/recovery.
    pub hedges: [u64; 3],
    /// Completions that hit the hottest 1 % of keys (zipf sanity).
    pub hot_key_completions: u64,
}

/// Index of a [`Phase`] into the per-phase count arrays.
fn phase_idx(phase: Phase) -> usize {
    match phase {
        Phase::Steady => 0,
        Phase::Fault => 1,
        Phase::Recovery => 2,
    }
}

impl TrafficReport {
    /// A latency quantile for one phase.
    pub fn quantile(&self, phase: Phase, q: f64) -> SimTime {
        let hist = match phase {
            Phase::Steady => &self.steady,
            Phase::Fault => &self.fault,
            Phase::Recovery => &self.recovery,
        };
        SimTime::from_ns(hist.quantile(q))
    }

    /// Shed count for one phase (admission/breaker sheds + expired
    /// deadlines, wherever in the request's life they fired).
    pub fn shed_in(&self, phase: Phase) -> u64 {
        self.shed[phase_idx(phase)]
    }

    /// Hedged reads issued while the run was in `phase`.
    pub fn hedges_in(&self, phase: Phase) -> u64 {
        self.hedges[phase_idx(phase)]
    }

    /// Successful completions per simulated second.
    pub fn achieved_rps(&self) -> f64 {
        contutto_sim::stats::ops_per_sec(self.completed, self.elapsed)
    }

    /// Fraction of completions that hit the hottest 1 % of keys.
    pub fn hot_key_share(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.hot_key_completions as f64 / self.completed as f64
        }
    }

    /// Publishes the run under `system.traffic.*` in a registry.
    pub fn publish(&self, reg: &mut MetricsRegistry) {
        reg.set_counter("system.traffic.submitted", self.submitted);
        reg.set_counter("system.traffic.completed", self.completed);
        reg.set_counter("system.traffic.errors", self.errors);
        reg.set_counter("system.traffic.orphaned", self.orphaned);
        reg.set_log_histogram("system.traffic.latency.steady", &self.steady);
        reg.set_log_histogram("system.traffic.latency.fault", &self.fault);
        reg.set_log_histogram("system.traffic.latency.recovery", &self.recovery);
        reg.set_counter(
            "system.traffic.slo_violations.steady",
            self.steady_slo_violations,
        );
        reg.set_counter(
            "system.traffic.slo_violations.fault",
            self.fault_slo_violations,
        );
        reg.set_counter(
            "system.traffic.slo_violations.recovery",
            self.recovery_slo_violations,
        );
        reg.set_counter("system.traffic.shed.steady", self.shed[0]);
        reg.set_counter("system.traffic.shed.fault", self.shed[1]);
        reg.set_counter("system.traffic.shed.recovery", self.shed[2]);
        reg.set_counter("system.traffic.deadline_expired", self.deadline_expired);
        reg.set_counter("system.traffic.client_retries", self.client_retries);
        reg.set_counter(
            "system.traffic.client_retries_denied",
            self.client_retries_denied,
        );
        reg.set_counter(
            "system.traffic.duplicate_completions",
            self.duplicate_completions,
        );
        reg.set_counter("system.traffic.hedges.steady", self.hedges[0]);
        reg.set_counter("system.traffic.hedges.fault", self.hedges[1]);
        reg.set_counter("system.traffic.hedges.recovery", self.hedges[2]);
    }
}

struct PendingReq {
    /// Nominal arrival (open loop) or issue instant (closed loop) —
    /// the latency epoch. Retries keep the *original* epoch: a retried
    /// request's latency honestly includes every failed attempt.
    issued: SimTime,
    /// Absolute deadline submitted with every attempt. Fixed at the
    /// first issue, so an expired retry is refused at submit and never
    /// re-queued.
    deadline: Option<SimTime>,
    phase: Phase,
    key: u64,
    /// The op is sampled once per logical request so a retry replays
    /// the same operation, not a fresh coin flip.
    is_read: bool,
    /// Client retries performed so far.
    attempts: u32,
    /// Closed loop: which user is blocked on this request.
    user: Option<usize>,
}

/// Client-side retries waiting out their backoff, ordered by due time
/// with a sequence tiebreaker so same-instant retries re-issue in a
/// deterministic order.
struct RetryQueue {
    items: BTreeMap<(SimTime, u64), PendingReq>,
    seq: u64,
}

impl RetryQueue {
    fn new() -> Self {
        RetryQueue {
            items: BTreeMap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, due: SimTime, req: PendingReq) {
        self.items.insert((due, self.seq), req);
        self.seq += 1;
    }

    fn pop_due(&mut self, now: SimTime) -> Option<PendingReq> {
        let (&(due, seq), _) = self.items.iter().next()?;
        if due > now {
            return None;
        }
        self.items.remove(&(due, seq))
    }

    fn next_due(&self) -> Option<SimTime> {
        self.items.keys().next().map(|&(t, _)| t)
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The traffic engine: key table, popularity distribution, arrival
/// state. Build once per run with [`TrafficEngine::new`], then drive
/// a system with [`TrafficEngine::run`].
pub struct TrafficEngine {
    cfg: TrafficConfig,
    /// key → physical line address, spread across regions.
    addrs: Vec<u64>,
    /// Zipf CDF over keys (hotness order: key 0 is hottest).
    cdf: Vec<f64>,
    hot_keys: u64,
}

impl TrafficEngine {
    /// Builds the key table against a booted system's memory map.
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate (no keys, no requests, no
    /// users, a non-positive rate, or an unbootable empty map).
    pub fn new(cfg: TrafficConfig, sys: &Power8System) -> Self {
        assert!(cfg.requests > 0, "need at least one request");
        assert!(cfg.users > 0, "need at least one user");
        assert!(cfg.keys > 0 && cfg.keys <= 1 << 22, "keys must be 1..=4M");
        assert!(cfg.per_user_rps > 0.0, "offered rate must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.read_fraction),
            "read fraction must be a probability"
        );
        let regions = sys.memory_map().regions();
        assert!(!regions.is_empty(), "system has no mapped memory");
        let mut addrs = Vec::with_capacity(cfg.keys as usize);
        for key in 0..cfg.keys {
            let region = &regions[(key % regions.len() as u64) as usize];
            let lines = (region.os_size / 128).max(1);
            let line = (key / regions.len() as u64) % lines;
            addrs.push(region.base + line * 128);
        }
        // Zipf CDF: weight(i) = 1/(i+1)^theta, normalized.
        let mut cdf = Vec::with_capacity(cfg.keys as usize);
        let mut acc = 0.0;
        for i in 0..cfg.keys {
            acc += 1.0 / ((i + 1) as f64).powf(cfg.zipf_theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        TrafficEngine {
            cfg,
            addrs,
            cdf,
            hot_keys: (cfg.keys / 100).max(1),
        }
    }

    fn sample_key(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        // First key whose CDF covers u.
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.addrs.len() - 1) as u64
    }

    /// Exponential sample with the given mean, floored at one
    /// picosecond so time always moves.
    fn sample_exp(rng: &mut SimRng, mean_ps: f64) -> SimTime {
        let u = rng.next_f64();
        let ps = -(1.0 - u).ln() * mean_ps;
        SimTime::from_ps((ps as u64).max(1))
    }

    /// The next inter-arrival gap (open loop) or think time (closed
    /// loop). `burst_pos` cycles through the burst so bursty traffic
    /// alternates zero-gap clusters with long compensating gaps.
    fn next_gap(&self, rng: &mut SimRng, mean_ps: f64, burst_pos: &mut u32) -> SimTime {
        match self.cfg.arrival {
            ArrivalProcess::Poisson => Self::sample_exp(rng, mean_ps),
            ArrivalProcess::Bursty { burst_len } => {
                let len = burst_len.max(1);
                *burst_pos = (*burst_pos + 1) % len;
                if *burst_pos == 0 {
                    // One long gap carries the whole burst's budget.
                    Self::sample_exp(rng, mean_ps * f64::from(len))
                } else {
                    SimTime::ZERO
                }
            }
        }
    }

    fn submit_req(&self, sys: &mut Power8System, req: &PendingReq) -> Result<ReqId, SystemError> {
        let phys = self.addrs[req.key as usize];
        if req.is_read {
            sys.submit_load_deadline(phys, req.deadline)
        } else {
            sys.submit_store_deadline(phys, CacheLine::patterned(req.key), req.deadline)
        }
    }

    /// Whether a failed request may be re-submitted: within the retry
    /// limit, and the error isn't terminal. Expired deadlines are
    /// never retried (the deadline is absolute — a retry would be
    /// refused at submit anyway), and a dead rail or stranded request
    /// has nothing to retry against.
    fn retry_eligible(&self, req: &PendingReq, e: &SystemError) -> bool {
        req.attempts < self.cfg.client_retries
            && !matches!(
                e,
                SystemError::DeadlineExceeded
                    | SystemError::PoweredOff
                    | SystemError::UnknownRequest
            )
    }

    /// Linear client backoff: retry `n` waits `n × client_backoff`.
    fn backoff_for(&self, attempts: u32) -> SimTime {
        self.cfg.client_backoff.max(SimTime::from_ps(1)) * u64::from(attempts.max(1))
    }

    /// Submits one logical request (first attempt or retry): on a
    /// retryable submit error it is re-queued with backoff if the
    /// shared retry budget allows, otherwise counted as finished.
    fn issue(
        &self,
        sys: &mut Power8System,
        acc: &mut Accumulator,
        pending: &mut BTreeMap<ReqId, PendingReq>,
        retries: &mut RetryQueue,
        mut req: PendingReq,
        phase: Phase,
    ) {
        req.phase = phase;
        match self.submit_req(sys, &req) {
            Ok(id) => {
                pending.insert(id, req);
            }
            Err(e) => {
                acc.note_error_kind(phase, &e);
                if self.retry_eligible(&req, &e) && sys.client_retry_allowed() {
                    acc.client_retries += 1;
                    req.attempts += 1;
                    retries.push(sys.now() + self.backoff_for(req.attempts), req);
                } else {
                    if self.retry_eligible(&req, &e) {
                        acc.client_retries_denied += 1;
                    }
                    acc.finish(&req, Err(e));
                }
            }
        }
    }

    /// Runs the configured traffic with no fault hook: all requests
    /// are steady-phase.
    pub fn run_steady(&self, sys: &mut Power8System) -> TrafficReport {
        self.run(sys, |_, _| Phase::Steady)
    }

    /// Runs the configured traffic. `hook` is called once per engine
    /// iteration; it may mutate the system (fire a scrub storm, pull a
    /// channel, cut power) and returns the phase label stamped on
    /// requests issued from that point on.
    ///
    /// Requests whose completions were wiped by a power cut are
    /// reconciled as `orphaned` (the system clears its in-flight set;
    /// the engine must not wait forever for completions that can never
    /// arrive).
    pub fn run<H>(&self, sys: &mut Power8System, mut hook: H) -> TrafficReport
    where
        H: FnMut(&mut Power8System, &TrafficTick) -> Phase,
    {
        sys.set_mlp_window(self.cfg.mlp_window);
        match self.cfg.mode {
            LoopMode::Open => self.run_open(sys, &mut hook),
            LoopMode::Closed => self.run_closed(sys, &mut hook),
        }
    }

    fn run_open<H>(&self, sys: &mut Power8System, hook: &mut H) -> TrafficReport
    where
        H: FnMut(&mut Power8System, &TrafficTick) -> Phase,
    {
        let mut rng = SimRng::seed_from_u64(self.cfg.seed);
        let mean_gap_ps = 1e12 / (self.cfg.per_user_rps * self.cfg.users as f64);
        let mut burst_pos = 0u32;
        let start = sys.now();
        let mut next_arrival = start + self.next_gap(&mut rng, mean_gap_ps, &mut burst_pos);
        let mut acc = Accumulator::new(&self.cfg, self.hot_keys, start);
        let mut pending: BTreeMap<ReqId, PendingReq> = BTreeMap::new();
        let mut retries = RetryQueue::new();
        loop {
            let tick = TrafficTick {
                submitted: acc.submitted,
                completed: acc.completed + acc.errors + acc.orphaned,
                now: sys.now(),
            };
            let phase = hook(sys, &tick);
            acc.note_hedges(sys, phase);
            // Latencies are measured against the global clock (the max
            // across channels); a lagging channel would stamp
            // completions before the arrival that caused them. Keep
            // every local clock at or past the global now.
            sys.advance_to(tick.now);
            // Re-issue retries whose backoff has elapsed (they predate
            // any arrival due this round).
            while let Some(req) = retries.pop_due(sys.now()) {
                self.issue(sys, &mut acc, &mut pending, &mut retries, req, phase);
            }
            // Issue every arrival that is due.
            while acc.submitted < self.cfg.requests && next_arrival <= sys.now() {
                let key = self.sample_key(&mut rng);
                let is_read = rng.gen_bool(self.cfg.read_fraction);
                let arrival = next_arrival;
                acc.submitted += 1;
                next_arrival += self.next_gap(&mut rng, mean_gap_ps, &mut burst_pos);
                let req = PendingReq {
                    issued: arrival,
                    deadline: self.cfg.deadline.map(|d| arrival + d),
                    phase,
                    key,
                    is_read,
                    attempts: 0,
                    user: None,
                };
                self.issue(sys, &mut acc, &mut pending, &mut retries, req, phase);
            }
            let finished = sys.poll();
            let progressed = !finished.is_empty();
            for (id, result) in finished {
                let Some(req) = pending.remove(&id) else {
                    acc.duplicate_completions += 1;
                    continue;
                };
                match result {
                    Ok(c) => {
                        acc.finish(&req, Ok(c.completed_at));
                    }
                    Err(e) => {
                        acc.note_error_kind(req.phase, &e);
                        if self.retry_eligible(&req, &e) && sys.client_retry_allowed() {
                            acc.client_retries += 1;
                            let mut r = req;
                            r.attempts += 1;
                            let due = sys.now() + self.backoff_for(r.attempts);
                            retries.push(due, r);
                        } else {
                            if self.retry_eligible(&req, &e) {
                                acc.client_retries_denied += 1;
                            }
                            acc.finish(&req, Err(e));
                        }
                    }
                }
            }
            if acc.submitted >= self.cfg.requests && pending.is_empty() && retries.is_empty() {
                break;
            }
            if !progressed && pending.is_empty() {
                // Idle: jump to the next arrival or due retry.
                let next_new = (acc.submitted < self.cfg.requests).then_some(next_arrival);
                if let Some(t) = [next_new, retries.next_due()].into_iter().flatten().min() {
                    sys.advance_to(t.max(sys.now()));
                }
            } else if !progressed && sys.outstanding_reqs() == 0 {
                // A power cut wiped the in-flight set — these
                // completions will never arrive.
                for (_, req) in std::mem::take(&mut pending) {
                    acc.orphaned += 1;
                    acc.last_event = acc.last_event.max(sys.now());
                    let _ = req;
                }
            }
        }
        acc.into_report()
    }

    fn run_closed<H>(&self, sys: &mut Power8System, hook: &mut H) -> TrafficReport
    where
        H: FnMut(&mut Power8System, &TrafficTick) -> Phase,
    {
        let mut rng = SimRng::seed_from_u64(self.cfg.seed);
        let think_ps = self.cfg.think.as_ps() as f64;
        let start = sys.now();
        struct User {
            next_issue: SimTime,
            waiting: bool,
            burst_pos: u32,
        }
        let mut users: Vec<User> = (0..self.cfg.users)
            .map(|_| User {
                // Staggered cold start so the population doesn't
                // stampede in one slot.
                next_issue: start + Self::sample_exp(&mut rng, think_ps),
                waiting: false,
                burst_pos: 0,
            })
            .collect();
        let mut acc = Accumulator::new(&self.cfg, self.hot_keys, start);
        let mut pending: BTreeMap<ReqId, PendingReq> = BTreeMap::new();
        loop {
            let tick = TrafficTick {
                submitted: acc.submitted,
                completed: acc.completed + acc.errors + acc.orphaned,
                now: sys.now(),
            };
            let phase = hook(sys, &tick);
            acc.note_hedges(sys, phase);
            // Same timebase rule as the open loop: no channel may lag
            // the global clock that issue times are stamped with.
            sys.advance_to(tick.now);
            let now = sys.now();
            for (idx, user) in users.iter_mut().enumerate() {
                if acc.submitted >= self.cfg.requests {
                    break;
                }
                if user.waiting || user.next_issue > now {
                    continue;
                }
                let key = self.sample_key(&mut rng);
                acc.submitted += 1;
                let req = PendingReq {
                    issued: now,
                    deadline: self.cfg.deadline.map(|d| now + d),
                    phase,
                    key,
                    is_read: rng.gen_bool(self.cfg.read_fraction),
                    attempts: 0,
                    user: Some(idx),
                };
                match self.submit_req(sys, &req) {
                    Ok(id) => {
                        user.waiting = true;
                        pending.insert(id, req);
                    }
                    Err(e) => {
                        // Closed-loop users don't retry: the blocked
                        // user simply thinks and issues fresh work —
                        // the loop is self-clocking, so there is no
                        // retry storm to model here.
                        acc.note_error_kind(phase, &e);
                        acc.errors += 1;
                        user.next_issue =
                            now + self.next_gap(&mut rng, think_ps, &mut user.burst_pos);
                    }
                }
            }
            let finished = sys.poll();
            let progressed = !finished.is_empty();
            for (id, result) in finished {
                let Some(req) = pending.remove(&id) else {
                    acc.duplicate_completions += 1;
                    continue;
                };
                if let Err(e) = &result {
                    acc.note_error_kind(req.phase, e);
                }
                let end = acc.finish(&req, result.map(|c| c.completed_at));
                if let Some(u) = req.user {
                    users[u].waiting = false;
                    users[u].next_issue =
                        end + self.next_gap(&mut rng, think_ps, &mut users[u].burst_pos);
                }
            }
            if acc.submitted >= self.cfg.requests && pending.is_empty() {
                break;
            }
            if !progressed {
                if pending.is_empty() {
                    if let Some(next) = users
                        .iter()
                        .filter(|u| !u.waiting)
                        .map(|u| u.next_issue)
                        .min()
                    {
                        sys.advance_to(next.max(sys.now()));
                    }
                } else if sys.outstanding_reqs() == 0 {
                    let now = sys.now();
                    for (_, req) in std::mem::take(&mut pending) {
                        acc.orphaned += 1;
                        acc.last_event = acc.last_event.max(now);
                        if let Some(u) = req.user {
                            users[u].waiting = false;
                            users[u].next_issue =
                                now + self.next_gap(&mut rng, think_ps, &mut users[u].burst_pos);
                        }
                    }
                }
            }
        }
        acc.into_report()
    }
}

/// Shared per-run bookkeeping between the two loop disciplines.
struct Accumulator {
    submitted: u64,
    completed: u64,
    errors: u64,
    orphaned: u64,
    steady: LogHistogram,
    fault: LogHistogram,
    recovery: LogHistogram,
    steady_slo_violations: u64,
    fault_slo_violations: u64,
    recovery_slo_violations: u64,
    shed: [u64; 3],
    deadline_expired: u64,
    client_retries: u64,
    client_retries_denied: u64,
    duplicate_completions: u64,
    hedges: [u64; 3],
    /// Last `hedges_issued` sample from the system's overload stats
    /// (`None` until the first tick sets the baseline).
    hedge_seen: Option<u64>,
    hot_key_completions: u64,
    hot_keys: u64,
    slo: SimTime,
    start: SimTime,
    last_event: SimTime,
}

impl Accumulator {
    fn new(cfg: &TrafficConfig, hot_keys: u64, start: SimTime) -> Self {
        Accumulator {
            submitted: 0,
            completed: 0,
            errors: 0,
            orphaned: 0,
            steady: LogHistogram::new(),
            fault: LogHistogram::new(),
            recovery: LogHistogram::new(),
            steady_slo_violations: 0,
            fault_slo_violations: 0,
            recovery_slo_violations: 0,
            shed: [0; 3],
            deadline_expired: 0,
            client_retries: 0,
            client_retries_denied: 0,
            duplicate_completions: 0,
            hedges: [0; 3],
            hedge_seen: None,
            hot_key_completions: 0,
            hot_keys,
            slo: cfg.slo,
            start,
            last_event: start,
        }
    }

    /// Classifies an overload-layer refusal into the per-phase shed
    /// counters. Other error kinds are left to the plain error count.
    fn note_error_kind(&mut self, phase: Phase, e: &SystemError) {
        match e {
            SystemError::Shed { .. } => self.shed[phase_idx(phase)] += 1,
            SystemError::DeadlineExceeded => {
                self.shed[phase_idx(phase)] += 1;
                self.deadline_expired += 1;
            }
            _ => {}
        }
    }

    /// Attributes newly issued hedges to the current phase by diffing
    /// the system's cumulative counter at each tick.
    fn note_hedges(&mut self, sys: &Power8System, phase: Phase) {
        let issued = sys.overload_stats().hedges_issued;
        if let Some(seen) = self.hedge_seen {
            self.hedges[phase_idx(phase)] += issued.saturating_sub(seen);
        }
        self.hedge_seen = Some(issued);
    }

    /// Records one finished request; returns the completion time used
    /// (for closed-loop think scheduling).
    fn finish(&mut self, req: &PendingReq, result: Result<SimTime, SystemError>) -> SimTime {
        match result {
            Ok(completed_at) => {
                self.completed += 1;
                self.last_event = self.last_event.max(completed_at);
                let latency = completed_at.saturating_sub(req.issued);
                if req.key < self.hot_keys {
                    self.hot_key_completions += 1;
                }
                let over = latency > self.slo;
                match req.phase {
                    Phase::Steady => {
                        self.steady.record(latency.as_ns());
                        if over {
                            self.steady_slo_violations += 1;
                        }
                    }
                    Phase::Fault => {
                        self.fault.record(latency.as_ns());
                        if over {
                            self.fault_slo_violations += 1;
                        }
                    }
                    Phase::Recovery => {
                        self.recovery.record(latency.as_ns());
                        if over {
                            self.recovery_slo_violations += 1;
                        }
                    }
                }
                completed_at
            }
            Err(_) => {
                self.errors += 1;
                self.last_event
            }
        }
    }

    fn into_report(self) -> TrafficReport {
        TrafficReport {
            submitted: self.submitted,
            completed: self.completed,
            errors: self.errors,
            orphaned: self.orphaned,
            elapsed: self.last_event.saturating_sub(self.start),
            steady: self.steady,
            fault: self.fault,
            recovery: self.recovery,
            steady_slo_violations: self.steady_slo_violations,
            fault_slo_violations: self.fault_slo_violations,
            recovery_slo_violations: self.recovery_slo_violations,
            shed: self.shed,
            deadline_expired: self.deadline_expired,
            client_retries: self.client_retries,
            client_retries_denied: self.client_retries_denied,
            duplicate_completions: self.duplicate_completions,
            hedges: self.hedges,
            hot_key_completions: self.hot_key_completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_centaur::CentaurConfig;
    use contutto_power8::firmware::layouts;

    fn boot() -> Power8System {
        Power8System::boot(layouts::all_cdimm(CentaurConfig::optimized(), 4 << 30), 7)
            .expect("cdimm system must boot")
    }

    fn quick(mode: LoopMode, arrival: ArrivalProcess, seed: u64) -> TrafficConfig {
        TrafficConfig {
            mode,
            arrival,
            requests: 96,
            users: 16,
            per_user_rps: 250_000.0,
            think: SimTime::from_us(1),
            keys: 256,
            seed,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn open_loop_completes_every_request() {
        let mut sys = boot();
        let cfg = quick(LoopMode::Open, ArrivalProcess::Poisson, 7);
        let engine = TrafficEngine::new(cfg, &sys);
        let r = engine.run_steady(&mut sys);
        assert_eq!(r.submitted, 96);
        assert_eq!(r.completed, 96);
        assert_eq!(r.errors, 0);
        assert_eq!(r.orphaned, 0);
        assert_eq!(r.steady.count(), 96);
        assert_eq!(r.fault.count(), 0);
        assert!(r.elapsed > SimTime::ZERO);
        assert!(r.achieved_rps() > 0.0);
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let mut sys = boot();
        let cfg = quick(LoopMode::Closed, ArrivalProcess::Bursty { burst_len: 4 }, 9);
        let engine = TrafficEngine::new(cfg, &sys);
        let r = engine.run_steady(&mut sys);
        assert_eq!(r.completed, 96);
        assert_eq!(r.steady.count(), 96);
    }

    #[test]
    fn same_seed_reports_are_identical() {
        let cfg = quick(LoopMode::Open, ArrivalProcess::Bursty { burst_len: 8 }, 21);
        let mut a = boot();
        let ra = TrafficEngine::new(cfg, &a).run_steady(&mut a);
        let mut b = boot();
        let rb = TrafficEngine::new(cfg, &b).run_steady(&mut b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn open_loop_latency_includes_queueing() {
        // Same system, same request count: offered load far above
        // capacity must show a worse tail than a trickle (queueing
        // delay measured from the *nominal* arrival).
        let base = quick(LoopMode::Open, ArrivalProcess::Poisson, 33);
        let mut sys = boot();
        let trickle = TrafficEngine::new(
            TrafficConfig {
                per_user_rps: 62_500.0, // 1M rps aggregate: well under capacity
                ..base
            },
            &sys,
        )
        .run_steady(&mut sys);
        let mut sys2 = boot();
        let flood = TrafficEngine::new(
            TrafficConfig {
                per_user_rps: 4e9, // everything arrives at once: pure queueing
                ..base
            },
            &sys2,
        )
        .run_steady(&mut sys2);
        assert!(
            flood.quantile(Phase::Steady, 0.99) > trickle.quantile(Phase::Steady, 0.99),
            "flood p99 {} !> trickle p99 {}",
            flood.quantile(Phase::Steady, 0.99),
            trickle.quantile(Phase::Steady, 0.99),
        );
    }

    #[test]
    fn zipfian_skew_concentrates_on_hot_keys() {
        let mut sys = boot();
        let cfg = TrafficConfig {
            requests: 256,
            keys: 1000,
            zipf_theta: 0.99,
            ..quick(LoopMode::Open, ArrivalProcess::Poisson, 5)
        };
        let skewed = TrafficEngine::new(cfg, &sys).run_steady(&mut sys);
        let mut sys2 = boot();
        let uniform = TrafficEngine::new(
            TrafficConfig {
                zipf_theta: 0.0,
                ..cfg
            },
            &sys2,
        )
        .run_steady(&mut sys2);
        // Hottest 1% of 1000 keys = 10 keys: zipf(0.99) sends >20% of
        // traffic there; uniform sends ~1%.
        assert!(
            skewed.hot_key_share() > 0.2,
            "hot share {}",
            skewed.hot_key_share()
        );
        assert!(
            uniform.hot_key_share() < 0.1,
            "uniform hot share {}",
            uniform.hot_key_share()
        );
    }

    #[test]
    fn fault_phase_is_recorded_separately() {
        let mut sys = boot();
        let cfg = quick(LoopMode::Open, ArrivalProcess::Poisson, 11);
        let engine = TrafficEngine::new(cfg, &sys);
        let r = engine.run(&mut sys, |_, tick| {
            if tick.completed >= 48 {
                Phase::Fault
            } else {
                Phase::Steady
            }
        });
        assert_eq!(r.steady.count() + r.fault.count(), 96);
        assert!(r.steady.count() > 0);
        assert!(r.fault.count() > 0);
    }

    #[test]
    fn power_cut_orphans_inflight_requests() {
        let mut sys = boot();
        let cfg = TrafficConfig {
            requests: 64,
            per_user_rps: 4_000_000.0, // flood so plenty are in flight
            ..quick(LoopMode::Open, ArrivalProcess::Poisson, 13)
        };
        let engine = TrafficEngine::new(cfg, &sys);
        let mut cut = false;
        let r = engine.run(&mut sys, |sys, tick| {
            if !cut && tick.completed >= 16 {
                cut = true;
                let at = sys.now();
                sys.power_cut(at);
                let back = sys.now() + SimTime::from_us(5);
                sys.reboot(back).expect("reboot after cut");
                return Phase::Fault;
            }
            if cut {
                Phase::Fault
            } else {
                Phase::Steady
            }
        });
        assert!(r.orphaned > 0, "no in-flight request was orphaned");
        assert_eq!(r.submitted, 64);
        assert_eq!(r.completed + r.errors + r.orphaned, 64);
    }
}
