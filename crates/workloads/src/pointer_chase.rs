//! Pointer-chasing workload.
//!
//! Paper §4.1's caveat: "there can be other memory-bound applications
//! such as graph and pointer chasing application where the performance
//! degradation could be much higher. The effects on such computations
//! need to be further studied and ConTutto provides a unique platform
//! to study such effects."
//!
//! This workload builds a real linked list in simulated memory (one
//! node per cache line, next-pointer in word 0) and traverses it with
//! strictly dependent loads through the cache hierarchy and the DMI
//! channel — the zero-MLP worst case where the full memory latency is
//! exposed on every hop.

use contutto_dmi::command::{CacheLine, CommandOp};
use contutto_power8::caches::CacheHierarchy;
use contutto_power8::channel::{CmdId, DmiChannel};
use contutto_sim::{SimRng, SimTime};

/// A pointer-chase experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerChase {
    /// Number of list nodes (one cache line each).
    pub nodes: u64,
    /// Base address of the node arena.
    pub base_addr: u64,
    /// Shuffle seed (a random permutation defeats prefetching).
    pub seed: u64,
}

impl Default for PointerChase {
    fn default() -> Self {
        PointerChase {
            nodes: 256,
            base_addr: 0x40_0000,
            seed: 11,
        }
    }
}

/// Results of a traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaseResult {
    /// Hops taken.
    pub hops: u64,
    /// Mean time per hop.
    pub ns_per_hop: f64,
    /// Fraction of hops served by the processor caches.
    pub cache_hit_fraction: f64,
}

impl PointerChase {
    fn node_addr(&self, idx: u64) -> u64 {
        self.base_addr + idx * 128
    }

    /// Builds the shuffled list in memory through the channel and
    /// returns the link table (the traversal's oracle for cache hits,
    /// cross-checked against memory on every miss).
    ///
    /// # Panics
    ///
    /// Panics if the channel hangs.
    pub fn build(&self, channel: &mut DmiChannel) -> ChaseList {
        let mut order: Vec<u64> = (1..self.nodes).collect();
        let mut rng = SimRng::seed_from_u64(self.seed);
        rng.shuffle(&mut order);
        order.insert(0, 0); // start at node 0
        order.push(0); // cycle back
        let mut next = std::collections::HashMap::new();
        for pair in order.windows(2) {
            let mut line = CacheLine::ZERO;
            line.set_word(0, self.node_addr(pair[1]));
            next.insert(self.node_addr(pair[0]), self.node_addr(pair[1]));
            channel
                .write_line_blocking(self.node_addr(pair[0]), line)
                .expect("list build write");
        }
        ChaseList { next }
    }

    /// Traverses `hops` steps with dependent loads through the cache
    /// hierarchy, returning timing and hit statistics. Cache hits use
    /// the link table at core-cache latency; memory accesses go over
    /// the channel and are cross-checked against the table.
    ///
    /// # Panics
    ///
    /// Panics if memory disagrees with the link table (corruption) or
    /// the channel hangs.
    pub fn traverse(
        &self,
        channel: &mut DmiChannel,
        caches: &mut CacheHierarchy,
        list: &ChaseList,
        hops: u64,
    ) -> ChaseResult {
        let mut addr = self.node_addr(0);
        let start = channel.now();
        let mut cache_time = SimTime::ZERO;
        let before_stats = caches.stats();
        for _ in 0..hops {
            let (level, lat) = caches.access(addr);
            let expected = list.next[&addr];
            if level == contutto_power8::caches::HitLevel::Memory {
                let (line, _) = channel.read_line_blocking(addr).expect("chase load");
                assert_eq!(line.word(0), expected, "list corrupted at {addr:#x}");
            } else {
                cache_time += lat;
            }
            addr = expected;
        }
        let after = caches.stats();
        let total = (channel.now() - start) + cache_time;
        let mem_hops = after.memory_accesses - before_stats.memory_accesses;
        let cached_hops = hops - mem_hops;
        ChaseResult {
            hops,
            ns_per_hop: total.as_ns_f64() / hops as f64,
            cache_hit_fraction: cached_hops as f64 / hops as f64,
        }
    }
}

impl PointerChase {
    /// Traverses the list with `lanes` independent walkers through the
    /// channel's non-blocking submit/poll path. Each lane is a strictly
    /// dependent chase (the worst case), but the lanes themselves are
    /// independent, so the channel overlaps their misses — this is the
    /// knob that separates "zero-MLP pointer chasing" from "graph
    /// analytics with a frontier": per-hop time should approach the
    /// single-lane figure divided by the lane count until the link
    /// saturates.
    ///
    /// Lanes start at evenly spaced positions around the cycle and
    /// skip the cache hierarchy entirely (every hop is a memory
    /// access), so `cache_hit_fraction` is always 0.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0, if memory disagrees with the link table
    /// (corruption), or if the channel fails a load.
    pub fn traverse_lanes(
        &self,
        channel: &mut DmiChannel,
        list: &ChaseList,
        lanes: u64,
        hops_per_lane: u64,
    ) -> ChaseResult {
        assert!(lanes >= 1, "need at least one lane");
        struct Lane {
            addr: u64,
            remaining: u64,
            pending: Option<CmdId>,
        }
        // Evenly spaced starting positions along the cycle.
        let lanes = lanes.min(self.nodes.max(1));
        let stride = self.nodes / lanes;
        let mut walkers = Vec::with_capacity(lanes as usize);
        let mut addr = self.node_addr(0);
        let mut pos = 0;
        for lane in 0..lanes {
            while pos < lane * stride {
                addr = list.next[&addr];
                pos += 1;
            }
            walkers.push(Lane {
                addr,
                remaining: hops_per_lane,
                pending: None,
            });
        }
        let total_hops = lanes * hops_per_lane;
        let start = channel.now();
        let mut inflight = std::collections::BTreeMap::new();
        while walkers
            .iter()
            .any(|l| l.remaining > 0 || l.pending.is_some())
        {
            // Every idle lane issues its next dependent load.
            for (i, lane) in walkers.iter_mut().enumerate() {
                if lane.pending.is_none() && lane.remaining > 0 {
                    let id = channel.enqueue_command(CommandOp::Read { addr: lane.addr });
                    lane.pending = Some(id);
                    inflight.insert(id, i);
                }
            }
            let mut progressed = false;
            while let Some((id, result)) = channel.poll_command() {
                let i = inflight.remove(&id).expect("completion for unknown lane");
                let done = result.expect("chase load");
                let line = done.data.expect("read carries data");
                let lane = &mut walkers[i];
                let expected = list.next[&lane.addr];
                assert_eq!(line.word(0), expected, "list corrupted at {:#x}", lane.addr);
                lane.addr = expected;
                lane.remaining -= 1;
                lane.pending = None;
                progressed = true;
            }
            if !progressed {
                channel.step();
            }
        }
        ChaseResult {
            hops: total_hops,
            ns_per_hop: (channel.now() - start).as_ns_f64() / total_hops as f64,
            cache_hit_fraction: 0.0,
        }
    }
}

/// The link table produced by [`PointerChase::build`].
#[derive(Debug, Clone)]
pub struct ChaseList {
    next: std::collections::HashMap<u64, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_centaur::{Centaur, CentaurConfig};
    use contutto_core::{ConTutto, ContuttoConfig, MemoryPopulation};
    use contutto_power8::channel::ChannelConfig;

    fn centaur_channel() -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::centaur(),
            Box::new(Centaur::new(CentaurConfig::optimized(), 8 << 30)),
        )
    }

    fn contutto_channel(knob: u8) -> DmiChannel {
        DmiChannel::new(
            ChannelConfig::contutto(),
            Box::new(ConTutto::new(
                ContuttoConfig::with_knob(knob),
                MemoryPopulation::dram_8gb(),
            )),
        )
    }

    #[test]
    fn traversal_follows_the_permutation() {
        let chase = PointerChase {
            nodes: 32,
            ..PointerChase::default()
        };
        let mut ch = centaur_channel();
        let list = chase.build(&mut ch);
        let mut caches = CacheHierarchy::power8_core();
        let r = chase.traverse(&mut ch, &mut caches, &list, 64);
        assert_eq!(r.hops, 64);
        assert!(r.ns_per_hop > 0.0);
    }

    #[test]
    fn pointer_chase_degrades_proportionally_to_latency() {
        // Unlike SPEC (overlapped misses), a dependent chase exposes
        // nearly the full latency difference per hop.
        let chase = PointerChase {
            nodes: 512, // larger than L1/L2; collides in L3 too, partially
            ..PointerChase::default()
        };
        let mut cen = centaur_channel();
        let list = chase.build(&mut cen);
        let mut caches = CacheHierarchy::power8_core();
        let base = chase.traverse(&mut cen, &mut caches, &list, 256);

        let mut con = contutto_channel(7);
        let list = chase.build(&mut con);
        let mut caches = CacheHierarchy::power8_core();
        let slow = chase.traverse(&mut con, &mut caches, &list, 256);

        let ratio = slow.ns_per_hop / base.ns_per_hop;
        // ~97 ns vs ~560 ns channels: hops slow down several-fold —
        // far beyond SPEC's <10 % typical degradation (the paper's
        // warning about pointer chasing).
        assert!(ratio > 2.5, "chase ratio only {ratio}");
    }

    #[test]
    fn independent_lanes_overlap_dependent_chases() {
        // One lane is the serialized worst case; four lanes keep four
        // dependent chases in flight on one channel, so per-hop time
        // drops by nearly the lane count on the high-latency buffer.
        let chase = PointerChase {
            nodes: 64,
            ..PointerChase::default()
        };
        let mut ch = contutto_channel(7);
        let list = chase.build(&mut ch);
        let serial = chase.traverse_lanes(&mut ch, &list, 1, 64);
        let overlapped = chase.traverse_lanes(&mut ch, &list, 4, 16);
        assert_eq!(serial.hops, overlapped.hops);
        let speedup = serial.ns_per_hop / overlapped.ns_per_hop;
        assert!(speedup > 2.0, "lane speedup only {speedup}");
        assert_eq!(overlapped.cache_hit_fraction, 0.0);
    }

    #[test]
    fn lane_traversal_matches_blocking_traversal_order() {
        // A single lane through submit/poll must follow exactly the
        // same permutation the blocking path follows (the link-table
        // cross-check inside traverse_lanes enforces per-hop equality).
        let chase = PointerChase {
            nodes: 32,
            ..PointerChase::default()
        };
        let mut ch = centaur_channel();
        let list = chase.build(&mut ch);
        let r = chase.traverse_lanes(&mut ch, &list, 1, 32);
        assert_eq!(r.hops, 32);
        assert!(r.ns_per_hop > 0.0);
    }

    #[test]
    fn small_list_gets_cache_hits_on_second_pass() {
        let chase = PointerChase {
            nodes: 16,
            ..PointerChase::default()
        };
        let mut ch = centaur_channel();
        let list = chase.build(&mut ch);
        let mut caches = CacheHierarchy::power8_core();
        chase.traverse(&mut ch, &mut caches, &list, 16); // cold pass
        let warm = chase.traverse(&mut ch, &mut caches, &list, 16);
        assert!(warm.cache_hit_fraction > 0.9, "{}", warm.cache_hit_fraction);
    }
}
