//! SPEC CINT2006 latency-sensitivity models (Figures 6 and 7).
//!
//! Paper §4.1: "with almost 6x (600%) increase in latency to memory,
//! about half of the applications incur less than 2% performance
//! degradation whereas two-thirds of the applications remain under 10%
//! degradation. For the rest, the performance degradation is in the
//! range of 15% to 35%, with one benchmark application showing
//! performance degradation of more than 50%."
//!
//! Each benchmark is modelled with the standard stall-cycle
//! decomposition: `CPI(L) = CPI_base + EPKI/1000 · L_cycles`, where
//! EPKI is the *effective* (post-L3, post-prefetch, post-overlap)
//! memory misses per kilo-instruction. The SPEC ratio is inversely
//! proportional to CPI for a fixed instruction count. EPKI and
//! CPI_base per benchmark follow the published memory-boundedness
//! ranking of CINT2006 (mcf ≫ omnetpp/libquantum/astar ≫ gcc/xalan ≫
//! the compute-bound rest) and are normalized so the paper's summary
//! statistics hold at the paper's measured latencies.

use contutto_sim::SimTime;

/// One modelled benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecBenchmark {
    /// SPEC name.
    pub name: &'static str,
    /// SPEC ratio at the Centaur-optimized baseline latency.
    pub base_ratio: f64,
    /// Core cycles per instruction excluding memory stalls.
    pub base_cpi: f64,
    /// Effective memory misses per kilo-instruction (after cache
    /// hierarchy, prefetching and MLP overlap).
    pub epki: f64,
}

/// The CINT2006 latency model.
///
/// # Example
///
/// ```
/// use contutto_workloads::spec::{suite, SpecModel};
/// use contutto_sim::SimTime;
///
/// let model = SpecModel::default();
/// let mcf = suite().into_iter().find(|b| b.name == "429.mcf").unwrap();
/// let d = model.degradation(&mcf, SimTime::from_ns(558), SimTime::from_ns(97));
/// // The one benchmark over 50% in Figure 7.
/// assert!(d > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecModel {
    /// Core clock in GHz (latency in ns × GHz = cycles).
    pub core_ghz: f64,
    /// Memory-level parallelism: average independent misses the core
    /// keeps in flight, dividing the exposed stall per miss. The
    /// default of 1.0 models fully serialized misses — the published
    /// EPKI values already fold in baseline overlap, so 1.0 reproduces
    /// the paper's figures; raising it shows how MLP flattens the
    /// latency-sensitivity curves.
    pub mlp: f64,
}

impl Default for SpecModel {
    fn default() -> Self {
        SpecModel {
            core_ghz: 4.0,
            mlp: 1.0,
        }
    }
}

impl SpecModel {
    /// The default model at a given MLP depth (clamped to ≥ 1.0).
    pub fn with_mlp(mlp: f64) -> Self {
        SpecModel {
            mlp: mlp.max(1.0),
            ..SpecModel::default()
        }
    }

    /// CPI of a benchmark at a given memory latency: the stall term is
    /// the miss latency divided by the overlap depth (a standard
    /// MLP-aware stall decomposition).
    pub fn cpi(&self, b: &SpecBenchmark, mem_latency: SimTime) -> f64 {
        let cycles = mem_latency.as_ns_f64() * self.core_ghz;
        b.base_cpi + b.epki / 1000.0 * cycles / self.mlp.max(1.0)
    }

    /// SPEC ratio at `mem_latency`, anchored so that `base_latency`
    /// yields the benchmark's published `base_ratio`.
    pub fn ratio(&self, b: &SpecBenchmark, mem_latency: SimTime, base_latency: SimTime) -> f64 {
        b.base_ratio * self.cpi(b, base_latency) / self.cpi(b, mem_latency)
    }

    /// Fractional runtime degradation going from `base_latency` to
    /// `mem_latency` (0.02 = 2 % slower).
    pub fn degradation(
        &self,
        b: &SpecBenchmark,
        mem_latency: SimTime,
        base_latency: SimTime,
    ) -> f64 {
        self.cpi(b, mem_latency) / self.cpi(b, base_latency) - 1.0
    }
}

/// The twelve CINT2006 benchmarks.
pub fn suite() -> Vec<SpecBenchmark> {
    vec![
        SpecBenchmark {
            name: "400.perlbench",
            base_ratio: 25.0,
            base_cpi: 0.70,
            epki: 0.005,
        },
        SpecBenchmark {
            name: "401.bzip2",
            base_ratio: 19.0,
            base_cpi: 0.80,
            epki: 0.008,
        },
        SpecBenchmark {
            name: "403.gcc",
            base_ratio: 24.0,
            base_cpi: 0.90,
            epki: 0.050,
        },
        SpecBenchmark {
            name: "429.mcf",
            base_ratio: 28.0,
            base_cpi: 1.60,
            epki: 0.500,
        },
        SpecBenchmark {
            name: "445.gobmk",
            base_ratio: 20.0,
            base_cpi: 1.00,
            epki: 0.010,
        },
        SpecBenchmark {
            name: "456.hmmer",
            base_ratio: 25.0,
            base_cpi: 0.85,
            epki: 0.003,
        },
        SpecBenchmark {
            name: "458.sjeng",
            base_ratio: 21.0,
            base_cpi: 1.00,
            epki: 0.008,
        },
        SpecBenchmark {
            name: "462.libquantum",
            base_ratio: 60.0,
            base_cpi: 0.70,
            epki: 0.120,
        },
        SpecBenchmark {
            name: "464.h264ref",
            base_ratio: 32.0,
            base_cpi: 0.75,
            epki: 0.012,
        },
        SpecBenchmark {
            name: "471.omnetpp",
            base_ratio: 17.0,
            base_cpi: 1.10,
            epki: 0.180,
        },
        SpecBenchmark {
            name: "473.astar",
            base_ratio: 15.0,
            base_cpi: 1.20,
            epki: 0.120,
        },
        SpecBenchmark {
            name: "483.xalancbmk",
            base_ratio: 28.0,
            base_cpi: 1.00,
            epki: 0.050,
        },
    ]
}

/// Summary of a latency sweep: the statistics the paper quotes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationSummary {
    /// Fraction of the suite under 2 % degradation.
    pub under_2pct: f64,
    /// Fraction under 10 %.
    pub under_10pct: f64,
    /// Fraction in the 15–35 % band.
    pub band_15_35: f64,
    /// Fraction over 50 %.
    pub over_50pct: f64,
    /// Worst-case degradation.
    pub worst: f64,
}

/// Computes the paper's summary statistics for a latency pair.
pub fn summarize(
    model: &SpecModel,
    mem_latency: SimTime,
    base_latency: SimTime,
) -> DegradationSummary {
    let suite = suite();
    let n = suite.len() as f64;
    let degradations: Vec<f64> = suite
        .iter()
        .map(|b| model.degradation(b, mem_latency, base_latency))
        .collect();
    DegradationSummary {
        under_2pct: degradations.iter().filter(|d| **d < 0.02).count() as f64 / n,
        under_10pct: degradations.iter().filter(|d| **d < 0.10).count() as f64 / n,
        band_15_35: degradations
            .iter()
            .filter(|d| (0.15..=0.35).contains(*d))
            .count() as f64
            / n,
        over_50pct: degradations.iter().filter(|d| **d > 0.50).count() as f64 / n,
        worst: degradations.iter().fold(0.0f64, |a, b| a.max(*b)),
    }
}

/// The §4.1 disaggregated-memory question: what fraction of the suite
/// tolerates `added_latency` of remote-memory distance (degradation
/// under `threshold`) on top of a local baseline?
///
/// "Judging by these applications alone, a case for remote,
/// disaggregated memory can be made, at least for a class of
/// applications."
pub fn remote_memory_viability(
    model: &SpecModel,
    base_latency: SimTime,
    added_latency: SimTime,
    threshold: f64,
) -> f64 {
    let suite = suite();
    let n = suite.len() as f64;
    suite
        .iter()
        .filter(|b| model.degradation(b, base_latency + added_latency, base_latency) < threshold)
        .count() as f64
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    const CENTAUR: SimTime = SimTime::from_ns(97);
    const CONTUTTO_K7: SimTime = SimTime::from_ns(558);

    #[test]
    fn suite_has_twelve_benchmarks_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 12);
        let mut names: Vec<_> = s.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn ratio_at_base_latency_is_published_ratio() {
        let model = SpecModel::default();
        for b in suite() {
            let r = model.ratio(&b, CENTAUR, CENTAUR);
            assert!((r - b.base_ratio).abs() < 1e-9, "{}", b.name);
        }
    }

    #[test]
    fn ratios_fall_monotonically_with_latency() {
        let model = SpecModel::default();
        for b in suite() {
            let mut prev = f64::INFINITY;
            for ns in [97u64, 200, 390, 438, 534, 558] {
                let r = model.ratio(&b, SimTime::from_ns(ns), CENTAUR);
                assert!(r < prev, "{} not monotone at {ns} ns", b.name);
                prev = r;
            }
        }
    }

    #[test]
    fn figure7_summary_statistics_hold_at_6x_latency() {
        // Paper: at ~6x latency, ~half the suite <2 %, ~two-thirds
        // <10 %, a 15–35 % tail, one benchmark >50 %.
        let s = summarize(&SpecModel::default(), CONTUTTO_K7, CENTAUR);
        assert!(
            (0.33..=0.58).contains(&s.under_2pct),
            "under 2%: {}",
            s.under_2pct
        );
        assert!(
            (0.58..=0.75).contains(&s.under_10pct),
            "under 10%: {}",
            s.under_10pct
        );
        assert!(s.band_15_35 > 0.0, "some apps in the 15-35% band");
        assert!(
            (s.over_50pct - 1.0 / 12.0).abs() < 1e-9,
            "exactly one app >50%"
        );
        assert!(s.worst > 0.50 && s.worst < 0.90, "worst {}", s.worst);
    }

    #[test]
    fn mcf_is_the_worst() {
        let model = SpecModel::default();
        let worst = suite()
            .into_iter()
            .max_by(|a, b| {
                model
                    .degradation(a, CONTUTTO_K7, CENTAUR)
                    .partial_cmp(&model.degradation(b, CONTUTTO_K7, CENTAUR))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(worst.name, "429.mcf");
    }

    #[test]
    fn degradation_not_proportional_to_latency_increase() {
        // The paper's headline: 6x latency != 6x runtime. Even mcf
        // degrades far less than 500 %.
        let model = SpecModel::default();
        for b in suite() {
            let d = model.degradation(&b, CONTUTTO_K7, CENTAUR);
            assert!(d < 1.0, "{} degraded {d}", b.name);
        }
    }

    #[test]
    fn remote_memory_case_holds_for_a_class_of_applications() {
        // +500 ns of "network distance" at a 10% tolerance: most of
        // CINT2006 still qualifies — the paper's closing argument.
        let model = SpecModel::default();
        let viable =
            remote_memory_viability(&model, SimTime::from_ns(97), SimTime::from_ns(500), 0.10);
        assert!(
            viable >= 0.5,
            "only {viable} of the suite tolerates remote memory"
        );
        // But a tight 1% tolerance excludes most of it.
        let strict =
            remote_memory_viability(&model, SimTime::from_ns(97), SimTime::from_ns(500), 0.01);
        assert!(strict < viable);
    }

    #[test]
    fn mlp_flattens_the_sensitivity_curve() {
        // Raising MLP divides the exposed stall per miss: mcf's >50 %
        // degradation at 6x latency collapses toward the compute-bound
        // pack, while the depth-1 model (all the anchors above) is
        // untouched by the new knob's default.
        let serial = SpecModel::default();
        let deep = SpecModel::with_mlp(4.0);
        let mcf = suite().into_iter().find(|b| b.name == "429.mcf").unwrap();
        let d1 = serial.degradation(&mcf, CONTUTTO_K7, CENTAUR);
        let d4 = deep.degradation(&mcf, CONTUTTO_K7, CENTAUR);
        assert!(d1 > 0.50, "serial mcf {d1}");
        assert!(d4 < d1 / 2.0, "mlp-4 mcf {d4} vs serial {d1}");
        assert!(d4 > 0.0);
        // The clamp keeps nonsense depths from inflating stalls.
        assert_eq!(SpecModel::with_mlp(0.25).mlp, 1.0);
    }

    #[test]
    fn table2_range_shows_small_effects_on_centaur() {
        // Figure 6's x-range (79-249 ns): compute-bound apps barely move.
        let model = SpecModel::default();
        let hmmer = &suite()[5];
        let d = model.degradation(hmmer, SimTime::from_ns(249), SimTime::from_ns(79));
        assert!(d < 0.01, "hmmer {d}");
    }
}
