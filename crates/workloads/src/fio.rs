//! The FIO-style IO benchmark engine (Figures 9 and 10).
//!
//! Paper §4.2: "We also evaluated these technologies as well as
//! different attach points using the FIO benchmark; the IOPS and
//! latency measurements are shown in Figure 9 and Figure 10."
//!
//! [`FioEngine`] issues 4 KiB random reads or writes at queue depth 1
//! against any [`BlockDevice`] — including the memory-bus pmem devices
//! whose per-IO time is simulated through the full DMI stack — and
//! reports IOPS and mean latency. A fixed per-op engine overhead
//! models the benchmark's own submission path.

use contutto_sim::{LatencyStats, LogHistogram, SimTime};
use contutto_storage::blockdev::{BlockDevice, BLOCK_BYTES};

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FioPattern {
    /// 4 KiB random reads.
    RandRead,
    /// 4 KiB random writes.
    RandWrite,
}

/// Results of one FIO run.
#[derive(Debug, Clone, PartialEq)]
pub struct FioResult {
    /// Device name.
    pub device: String,
    /// The pattern run.
    pub pattern: FioPattern,
    /// Operations completed.
    pub ops: u64,
    /// IOPS achieved (QD1).
    pub iops: f64,
    /// Per-op latency statistics (device time, excluding engine
    /// think-time — what Figure 10 plots).
    pub latency: LatencyStats,
    /// 99th-percentile latency from the log-bucketed histogram:
    /// nonzero whenever any IO completed, bounded relative error, no
    /// range to overflow (the old 1 µs × 1024 linear histogram
    /// silently reported p99 = 0 for any device slower than ~1 ms).
    pub p99: SimTime,
    /// The full per-op latency distribution (nanosecond samples).
    pub latency_hist: LogHistogram,
}

impl FioResult {
    /// An arbitrary quantile of the per-op latency distribution.
    pub fn latency_quantile(&self, q: f64) -> SimTime {
        SimTime::from_ns(self.latency_hist.quantile(q))
    }
}

/// The FIO engine.
///
/// # Example
///
/// ```
/// use contutto_workloads::fio::{FioEngine, FioPattern};
/// use contutto_storage::blockdev::SasSsd;
///
/// let engine = FioEngine { ops: 8, ..Default::default() };
/// let r = engine.run(&mut SasSsd::new(), FioPattern::RandWrite);
/// // Table 4's SSD row: ~15K write IOPS.
/// assert!(r.iops > 10_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioEngine {
    /// Operations per run.
    pub ops: u64,
    /// Per-op engine/submission overhead (think time between IOs).
    pub engine_overhead: SimTime,
    /// LCG seed for the address stream.
    pub seed: u64,
    /// IOs kept in flight. At 1 (the default, what Figures 9/10 plot)
    /// each op waits for the previous one; deeper queues overlap the
    /// submission overhead with device service. Devices still serialize
    /// internally through their own busy time, so queueing latency
    /// shows up in the per-op numbers at depth > 1, exactly as real
    /// FIO reports it.
    pub queue_depth: u64,
}

impl Default for FioEngine {
    fn default() -> Self {
        FioEngine {
            ops: 64,
            engine_overhead: SimTime::from_ps(1_500_000), // 1.5 us
            seed: 0x5EED,
            queue_depth: 1,
        }
    }
}

impl FioEngine {
    /// Runs one pattern against a device.
    pub fn run(&self, device: &mut dyn BlockDevice, pattern: FioPattern) -> FioResult {
        let span = device.capacity_blocks().min(1 << 20); // bounded working set
        let mut lcg = self.seed | 1;
        let mut next_lba = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg % span
        };
        let mut now = SimTime::ZERO;
        let mut latency = LatencyStats::new();
        let mut hist = LogHistogram::new(); // ns samples, no overflow
        let mut buf = [0u8; BLOCK_BYTES];
        // Touch a few blocks first so reads return written data and
        // device state (rows, maps) is warm.
        for _ in 0..4 {
            now = device.write_block(now, next_lba(), &buf);
        }
        let qd = self.queue_depth.max(1);
        let mut completed = 0;
        while completed < self.ops {
            let batch = qd.min(self.ops - completed);
            // Submissions stay serial (one engine thread); the device
            // overlaps service with later submissions up to the queue
            // depth, then the engine waits for the whole batch.
            let mut submit = now;
            let mut batch_end = now;
            for _ in 0..batch {
                let lba = next_lba();
                submit += self.engine_overhead;
                let start = submit;
                let end = match pattern {
                    FioPattern::RandRead => device.read_block(start, lba, &mut buf),
                    FioPattern::RandWrite => device.write_block(start, lba, &buf),
                };
                latency.record(end - start);
                hist.record((end - start).as_ns());
                batch_end = batch_end.max(end);
            }
            now = batch_end.max(submit);
            completed += batch;
        }
        FioResult {
            device: device.name().to_string(),
            pattern,
            ops: self.ops,
            iops: self.ops as f64 / now.as_secs_f64(),
            latency,
            p99: SimTime::from_ns(hist.quantile(0.99)),
            latency_hist: hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contutto_storage::blockdev::{mram_contutto_device, PcieCard, SasHdd, SasSsd};

    fn quick() -> FioEngine {
        FioEngine {
            ops: 24,
            ..FioEngine::default()
        }
    }

    #[test]
    fn ssd_iops_in_range() {
        let mut ssd = SasSsd::new();
        let r = quick().run(&mut ssd, FioPattern::RandWrite);
        assert!((11_000.0..16_000.0).contains(&r.iops), "{} IOPS", r.iops);
        assert_eq!(r.ops, 24);
    }

    #[test]
    fn mram_contutto_beats_every_pcie_attach_point() {
        // Figure 9/10 headline: the memory-bus attach point wins.
        let engine = quick();
        let mut ct = mram_contutto_device();
        let ct_read = engine.run(&mut ct, FioPattern::RandRead);
        for mut card in [PcieCard::mram(), PcieCard::nvram(), PcieCard::flash_x4()] {
            let pcie = engine.run(&mut card, FioPattern::RandRead);
            assert!(
                ct_read.iops > pcie.iops,
                "{}: {} !> {}",
                pcie.device,
                ct_read.iops,
                pcie.iops
            );
            assert!(ct_read.latency.mean() < pcie.latency.mean());
        }
    }

    #[test]
    fn mram_vs_nvram_ratios_have_figure9_shape() {
        // Paper: MRAM-ConTutto vs NVRAM-PCIe — 6.6x lower read
        // latency, 4.5x higher read IOPS (ratios differ because IOPS
        // includes engine think-time). We assert the shape: latency
        // ratio in a broad band around 6.6, IOPS ratio lower than the
        // latency ratio.
        let engine = quick();
        let mut ct = mram_contutto_device();
        let mut nvram = PcieCard::nvram();
        let ct_r = engine.run(&mut ct, FioPattern::RandRead);
        let nv_r = engine.run(&mut nvram, FioPattern::RandRead);
        let lat_ratio = nv_r.latency.mean().as_ns_f64() / ct_r.latency.mean().as_ns_f64();
        let iops_ratio = ct_r.iops / nv_r.iops;
        assert!((4.0..9.0).contains(&lat_ratio), "latency ratio {lat_ratio}");
        assert!(iops_ratio > 2.5, "iops ratio {iops_ratio}");
        assert!(iops_ratio < lat_ratio, "IOPS ratio dampened by think time");
    }

    #[test]
    fn writes_beat_reads_on_the_memory_bus_relative_to_pcie() {
        // Paper: the write-side gains (15x latency vs NVRAM) exceed
        // the read-side gains (6.6x) — pmem writes pipeline while
        // reads are MLP-bound; PCIe pays the full path both ways.
        let engine = quick();
        let mut ct = mram_contutto_device();
        let ct_w = engine.run(&mut ct, FioPattern::RandWrite);
        let mut ct2 = mram_contutto_device();
        let ct_r = engine.run(&mut ct2, FioPattern::RandRead);
        let mut nvram = PcieCard::nvram();
        let nv_w = engine.run(&mut nvram, FioPattern::RandWrite);
        let mut nvram2 = PcieCard::nvram();
        let nv_r = engine.run(&mut nvram2, FioPattern::RandRead);
        let read_gain = nv_r.latency.mean().as_ns_f64() / ct_r.latency.mean().as_ns_f64();
        let write_gain = nv_w.latency.mean().as_ns_f64() / ct_w.latency.mean().as_ns_f64();
        assert!(
            write_gain > read_gain,
            "write gain {write_gain} !> read gain {read_gain}"
        );
    }

    #[test]
    fn p99_bounds_the_mean() {
        let engine = quick();
        let r = engine.run(&mut SasSsd::new(), FioPattern::RandRead);
        assert!(
            r.p99 >= r.latency.mean(),
            "p99 {} < mean {}",
            r.p99,
            r.latency.mean()
        );
        assert!(r.p99 <= r.latency.max().unwrap() + contutto_sim::SimTime::from_us(1));
    }

    #[test]
    fn deeper_queue_raises_iops_without_touching_qd1_anchors() {
        // QD > 1 overlaps the 1.5 us submission overhead with device
        // service; the device itself still serializes, so the gain is
        // bounded but strictly positive — and per-op latency now
        // includes queueing delay, so the mean cannot shrink.
        let qd1 = quick().run(&mut SasSsd::new(), FioPattern::RandWrite);
        let deep = FioEngine {
            queue_depth: 8,
            ..quick()
        };
        let qd8 = deep.run(&mut SasSsd::new(), FioPattern::RandWrite);
        assert!(qd8.iops > qd1.iops, "{} !> {}", qd8.iops, qd1.iops);
        assert!(qd8.latency.mean() >= qd1.latency.mean());
    }

    #[test]
    fn p99_survives_millisecond_media() {
        // Regression: the old 1 µs × 1024-bucket linear histogram
        // overflowed on anything slower than ~1 ms and `unwrap_or(0)`
        // then reported p99 = 0 µs. A 7200 rpm disk seeks in
        // milliseconds, so every sample overflowed the old range; the
        // log histogram must report a nonzero, bounded-error tail.
        let engine = quick();
        let r = engine.run(&mut SasHdd::new(), FioPattern::RandRead);
        assert!(
            r.p99 > SimTime::from_us(1024),
            "p99 {} not past the old histogram range — regression test is toothless",
            r.p99
        );
        assert!(r.p99 >= r.latency.mean(), "p99 below the mean");
        assert!(
            r.p99 <= r.latency.max().unwrap(),
            "p99 {} above max {}",
            r.p99,
            r.latency.max().unwrap()
        );
        // p100 is exact at nanosecond granularity (histogram samples
        // truncate the sub-ns remainder LatencyStats keeps).
        let p100 = r.latency_quantile(1.0);
        let max = r.latency.max().unwrap();
        assert_eq!(
            p100,
            SimTime::from_ns(max.as_ns()),
            "p100 must be exact (clamped to recorded max)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let engine = quick();
        let a = engine.run(&mut SasSsd::new(), FioPattern::RandRead);
        let b = engine.run(&mut SasSsd::new(), FioPattern::RandRead);
        assert_eq!(a.iops, b.iops);
        assert_eq!(a.latency, b.latency);
    }
}
