//! Single-thread software baselines for Table 5.
//!
//! Paper §4.3: "Table 5 also lists the performance of software
//! implementations of the same functions executed on the POWER8 using
//! CDIMMs, with the FFT results being taken from \[17\]":
//!
//! | function | software (paper) |
//! |---|---|
//! | memory copy (1 GB) | 3.2 GB/s |
//! | min/max (256 M integers) | 0.5 GB/s |
//! | FFT (1024-point, 8 B samples) | 0.68 Gsamples/s (4 CDIMMs / 16 DIMM ports) |
//!
//! The baselines here are *functional* (they really copy / scan /
//! transform buffers, so the accelerator results can be checked
//! against them) with per-element costs from a simple core model:
//! memcpy is store-bandwidth bound, the scalar min/max loop is
//! compare/branch bound, and the software FFT cost is taken from the
//! same source the paper used.

use contutto_sim::SimTime;

use contutto_core::accel::fft::{fft_in_place, Complex32};

/// Per-128 B-line cost of single-thread software memcpy on the CDIMM
/// system (load + store micro-op streams, limited by the LSU and
/// store queue): 128 B / 40 ns = 3.2 GB/s.
pub const MEMCPY_NS_PER_LINE: f64 = 40.0;

/// Per-u32 cost of the scalar min/max loop (compare + cmov/branch +
/// loads, mispredict tax): 4 B / 8 ns = 0.5 GB/s.
pub const MINMAX_NS_PER_VALUE: f64 = 8.0;

/// Software cost of one 1024-point complex-f32 FFT, from \[17\]'s
/// measured 0.68 Gsamples/s: 1024 / 0.68e9 ≈ 1506 ns.
pub const FFT_NS_PER_BLOCK: f64 = 1024.0 / 0.68;

/// The software-baseline executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftwareBaselines;

impl SoftwareBaselines {
    /// Copies `src` into `dst`, returning (elapsed, GB/s).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn memcpy(&self, src: &[u8], dst: &mut [u8]) -> (SimTime, f64) {
        assert_eq!(src.len(), dst.len());
        dst.copy_from_slice(src);
        let lines = src.len().div_ceil(128) as f64;
        let elapsed = SimTime::from_ps((lines * MEMCPY_NS_PER_LINE * 1000.0) as u64);
        let gbps = src.len() as f64 / elapsed.as_secs_f64() / 1e9;
        (elapsed, gbps)
    }

    /// Scans for (min, max), returning (min, max, elapsed, GB/s).
    pub fn minmax(&self, values: &[u32]) -> (u32, u32, SimTime, f64) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        let elapsed = SimTime::from_ps((values.len() as f64 * MINMAX_NS_PER_VALUE * 1000.0) as u64);
        let gbps = values.len() as f64 * 4.0 / elapsed.as_secs_f64() / 1e9;
        (min, max, elapsed, gbps)
    }

    /// Transforms consecutive 1024-point blocks in place, returning
    /// (elapsed, Gsamples/s).
    ///
    /// # Panics
    ///
    /// Panics unless the sample count is a multiple of 1024.
    pub fn fft_blocks(&self, samples: &mut [Complex32]) -> (SimTime, f64) {
        assert_eq!(samples.len() % 1024, 0, "whole 1024-point blocks");
        for block in samples.chunks_exact_mut(1024) {
            fft_in_place(block);
        }
        let blocks = (samples.len() / 1024) as f64;
        let elapsed = SimTime::from_ps((blocks * FFT_NS_PER_BLOCK * 1000.0) as u64);
        let gsps = samples.len() as f64 / elapsed.as_secs_f64() / 1e9;
        (elapsed, gsps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_is_3_2_gbps_and_correct() {
        let src: Vec<u8> = (0..1_048_576u32).map(|i| (i % 251) as u8).collect();
        let mut dst = vec![0u8; src.len()];
        let (_, gbps) = SoftwareBaselines.memcpy(&src, &mut dst);
        assert_eq!(dst, src);
        assert!((3.1..3.3).contains(&gbps), "{gbps} GB/s");
    }

    #[test]
    fn minmax_is_0_5_gbps_and_correct() {
        let mut values: Vec<u32> = (0..100_000u32)
            .map(|i| i.wrapping_mul(2654435761))
            .collect();
        values[500] = 0;
        values[900] = u32::MAX;
        let (min, max, _, gbps) = SoftwareBaselines.minmax(&values);
        assert_eq!(min, 0);
        assert_eq!(max, u32::MAX);
        assert!((0.45..0.55).contains(&gbps), "{gbps} GB/s");
    }

    #[test]
    fn fft_is_0_68_gsps_and_correct() {
        let mut samples = vec![Complex32::default(); 4096];
        samples[0] = Complex32::new(1.0, 0.0); // impulse in block 0
        let (_, gsps) = SoftwareBaselines.fft_blocks(&mut samples);
        assert!((0.65..0.71).contains(&gsps), "{gsps} Gs/s");
        // Flat spectrum in block 0.
        assert!((samples[100].re - 1.0).abs() < 1e-4);
        // Untouched blocks remain zero spectra.
        assert!(samples[2048].abs() < 1e-6);
    }
}
