//! The DB2 BLU query workload (Table 2).
//!
//! Paper §4.1: "the average time for running 29 database queries in
//! DB2 BLU was measured on Centaur for the different latency settings
//! ... increasing the latency by more than 3x, from 79 ns to 249 ns,
//! resulted in less than 8% increase in query evaluation time."
//!
//! Each query is `time(L) = base · (compute_frac + mem_frac · L/L₀)`:
//! BLU's columnar scans are prefetch-friendly, so even scan-heavy
//! queries expose only a small memory-bound fraction. The per-kind
//! `mem_frac` values are normalized so the suite-level number matches
//! Table 2's anchor rows (5387 s at 79 ns → 5802 s at 249 ns).

use contutto_sim::SimTime;

/// Query archetypes with different memory-boundedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Columnar scan + predicate (prefetch-covered).
    Scan,
    /// Hash join (pointer-ish probes, more exposed).
    Join,
    /// Group-by aggregation (mostly compute).
    Aggregate,
}

impl QueryKind {
    /// Fraction of the query's baseline runtime that scales with
    /// memory latency.
    pub fn mem_frac(self) -> f64 {
        match self {
            QueryKind::Scan => 0.028,
            QueryKind::Join => 0.058,
            QueryKind::Aggregate => 0.017,
        }
    }
}

/// One BLU query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Query label (Q1..Q29).
    pub name: String,
    /// Archetype.
    pub kind: QueryKind,
    /// Runtime at the 79 ns reference latency, seconds.
    pub base_seconds: f64,
}

/// The 29-query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Db2Workload {
    queries: Vec<Query>,
    reference_latency: SimTime,
    /// Memory-level parallelism of the query engine: independent
    /// misses kept in flight per worker. 1.0 (the default) serializes
    /// the added latency exactly as the Table 2 anchors assume.
    mlp: f64,
}

impl Default for Db2Workload {
    fn default() -> Self {
        Db2Workload::paper_suite()
    }
}

impl Db2Workload {
    /// The paper's 29 queries: a deterministic mix of scans, joins and
    /// aggregates whose baseline runtimes sum to Table 2's 5387 s.
    pub fn paper_suite() -> Self {
        let kinds = [QueryKind::Scan, QueryKind::Join, QueryKind::Aggregate];
        let mut queries = Vec::with_capacity(29);
        // Deterministic base runtimes: a spread from short to long
        // queries (real BLU suites are heavy-tailed), scaled to sum to
        // 5387 s.
        let raw: Vec<f64> = (0..29).map(|i| 40.0 + 14.0 * f64::from(i)).collect();
        let raw_sum: f64 = raw.iter().sum();
        for (i, r) in raw.iter().enumerate() {
            queries.push(Query {
                name: format!("Q{}", i + 1),
                kind: kinds[i % 3],
                base_seconds: r / raw_sum * 5387.0,
            });
        }
        Db2Workload {
            queries,
            reference_latency: SimTime::from_ns(79),
            mlp: 1.0,
        }
    }

    /// The same suite with an MLP depth: overlapping `mlp` independent
    /// misses hides that fraction of any latency *increase* over the
    /// reference point (the baseline runtime already includes the
    /// reference latency, so only the delta is divided).
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        self.mlp = mlp.max(1.0);
        self
    }

    /// The queries.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Runtime of one query at a memory latency.
    pub fn query_seconds(&self, q: &Query, mem_latency: SimTime) -> f64 {
        let scale = mem_latency.as_ns_f64() / self.reference_latency.as_ns_f64();
        // MLP hides overlap in the latency delta: at depth d the
        // effective scale moves 1/d of the way to the raw scale.
        let effective = 1.0 + (scale - 1.0) / self.mlp.max(1.0);
        let mem = q.kind.mem_frac();
        q.base_seconds * ((1.0 - mem) + mem * effective)
    }

    /// Total suite runtime at a memory latency, seconds.
    pub fn total_seconds(&self, mem_latency: SimTime) -> f64 {
        self.queries
            .iter()
            .map(|q| self.query_seconds(q, mem_latency))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_29_queries_summing_to_5387() {
        let w = Db2Workload::paper_suite();
        assert_eq!(w.queries().len(), 29);
        let total = w.total_seconds(SimTime::from_ns(79));
        assert!((total - 5387.0).abs() < 0.5, "baseline total {total}");
    }

    #[test]
    fn table2_anchor_at_249ns() {
        // Paper: 5802 s at 249 ns — "less than 8% increase" over 3x+.
        let w = Db2Workload::paper_suite();
        let total = w.total_seconds(SimTime::from_ns(249));
        assert!((5750.0..5860.0).contains(&total), "total {total}");
        let increase = total / w.total_seconds(SimTime::from_ns(79)) - 1.0;
        assert!(increase < 0.08, "increase {increase}");
    }

    #[test]
    fn intermediate_rows_are_monotonic() {
        let w = Db2Workload::paper_suite();
        let t79 = w.total_seconds(SimTime::from_ns(79));
        let t83 = w.total_seconds(SimTime::from_ns(83));
        let t116 = w.total_seconds(SimTime::from_ns(116));
        let t249 = w.total_seconds(SimTime::from_ns(249));
        assert!(t79 < t83 && t83 < t116 && t116 < t249);
        // 116 ns row lands near the paper's 5484 s.
        assert!((5400.0..5520.0).contains(&t116), "t116 {t116}");
    }

    #[test]
    fn mlp_shrinks_the_latency_penalty_but_not_the_baseline() {
        let serial = Db2Workload::paper_suite();
        let deep = Db2Workload::paper_suite().with_mlp(8.0);
        let fast = SimTime::from_ns(79);
        let slow = SimTime::from_ns(249);
        // At the reference latency MLP changes nothing (delta is zero).
        assert!((serial.total_seconds(fast) - deep.total_seconds(fast)).abs() < 1e-9);
        // At 249 ns the overlapped engine hides most of the increase.
        let serial_incr = serial.total_seconds(slow) / serial.total_seconds(fast) - 1.0;
        let deep_incr = deep.total_seconds(slow) / deep.total_seconds(fast) - 1.0;
        assert!(
            deep_incr < serial_incr / 4.0,
            "{deep_incr} vs {serial_incr}"
        );
        assert!(deep_incr > 0.0);
    }

    #[test]
    fn joins_are_most_latency_sensitive() {
        let w = Db2Workload::paper_suite();
        let slow = SimTime::from_ns(249);
        let join = w
            .queries()
            .iter()
            .find(|q| q.kind == QueryKind::Join)
            .unwrap();
        let agg = w
            .queries()
            .iter()
            .find(|q| q.kind == QueryKind::Aggregate)
            .unwrap();
        let join_incr = w.query_seconds(join, slow) / join.base_seconds;
        let agg_incr = w.query_seconds(agg, slow) / agg.base_seconds;
        assert!(join_incr > agg_incr);
    }
}
