//! # contutto-workloads
//!
//! The application-level workloads of the paper's evaluation (§4),
//! each driven by latencies and devices from the simulated system:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`spec`] | SPEC CINT2006 latency-sensitivity models (Figures 6 & 7) |
//! | [`db2`] | the DB2 BLU 29-query workload (Table 2) |
//! | [`fio`] | the FIO random-IO engine over block devices (Figures 9 & 10) |
//! | [`gpfs`] | the GPFS write-cache experiment (Table 4) |
//! | [`pointer_chase`] | linked-list traversal — the worst case §4.1 warns about |
//! | [`baseline`] | single-thread software baselines for Table 5 (memcpy, min/max, FFT) |
//! | [`traffic`] | open/closed-loop service traffic with tail-latency SLOs |
//! | [`chaos_load`] | the chaos campaign's ledgered key/value load — every store remembered for the durability oracle |
//!
//! The SPEC and DB2 models are *analytic* (stall-cycle decomposition
//! per benchmark), but their memory-latency inputs come from the
//! [`contutto_power8::latency::LatencyProbe`] measurements on the
//! simulated channels — the same methodology the paper uses: measure
//! the latency knob's effect with a probe, then run applications.

pub mod baseline;
pub mod chaos_load;
pub mod db2;
pub mod fio;
pub mod gpfs;
pub mod pointer_chase;
pub mod spec;
pub mod traffic;

pub use baseline::SoftwareBaselines;
pub use chaos_load::{
    ChaosLoad, ChaosLoadConfig, ChaosLoadReport, ChaosTick, StoreEvent, StoreOutcome,
};
pub use db2::{Db2Workload, QueryKind};
pub use fio::{FioEngine, FioPattern, FioResult};
pub use gpfs::GpfsExperiment;
pub use spec::{SpecBenchmark, SpecModel};
pub use traffic::{ArrivalProcess, LoopMode, Phase, TrafficConfig, TrafficEngine, TrafficReport};
